"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works in offline environments that lack the
``wheel`` package required by PEP-660 editable installs.
"""

from setuptools import setup

setup()
