"""AP-Rad radius-LP throughput: dense tableau vs sparse revised simplex.

The radius LP is re-solved every time the attack corpus grows.  This
bench times three ways of absorbing the same evidence:

* ``dense``       — cold fit with the dense two-phase tableau solver
  (rebuilds and re-solves the full system);
* ``revised``     — cold fit with the sparse revised-simplex engine;
* ``incremental`` — the streaming path: the estimator already holds
  the pre-delta corpus and LP basis, then ``ingest`` + warm-started
  ``refit`` folds the delta in.

Sweeps AP count × observation count.  Every cell cross-checks that all
three paths land on the same radii (to 1e-6, with a tie-break making
the LP optimum unique).  Run standalone for the JSON report (the
tier-1 smoke test does)::

    PYTHONPATH=src python benchmarks/bench_aprad_lp.py \
        --aps 50,100,200 --observations 400 --json out.json

or under pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, FrozenSet, List

import numpy as np

from repro.geometry.point import Point
from repro.localization.radius_lp import RadiusEstimator
from repro.net80211.mac import MacAddress

R_MAX = 150.0
TRUE_RADIUS = 90.0
#: Density of the synthetic deployment (APs per square of this side).
AREA_PER_AP = 150.0
#: Uniqueness perturbation so "same radii" is well-defined across
#: solvers and warm starts (alternate optima are routine in this LP).
TIE_BREAK = 1e-7
#: Neighbor cap bounding the separated-pair rows, as a deployment would.
MAX_NEIGHBORS = 6
#: Fraction of the corpus treated as the streaming delta (one engine
#: re-fit interval's worth of fresh evidence).
DELTA_FRACTION = 0.05

DEFAULT_APS = (50, 100, 200)
DEFAULT_OBSERVATIONS = 400


def build_locations(ap_count: int, seed: int = 20090622
                    ) -> Dict[MacAddress, Point]:
    """A jittered-uniform deployment at constant density."""
    rng = np.random.default_rng(seed + ap_count)
    side = AREA_PER_AP * float(np.sqrt(ap_count))
    return {
        MacAddress(0x001B63000000 + i):
            Point(float(rng.uniform(0.0, side)),
                  float(rng.uniform(0.0, side)))
        for i in range(ap_count)
    }


def build_corpus(locations: Dict[MacAddress, Point], count: int,
                 seed: int = 7) -> List[FrozenSet[MacAddress]]:
    """Observation Γ sets from uniform probes with exact disc coverage."""
    rng = np.random.default_rng(seed)
    coords = np.array([[p.x, p.y] for p in locations.values()])
    macs = list(locations)
    lo = coords.min(axis=0) - 40.0
    hi = coords.max(axis=0) + 40.0
    corpus: List[FrozenSet[MacAddress]] = []
    while len(corpus) < count:
        probe = rng.uniform(lo, hi)
        dist = np.hypot(*(coords - probe).T)
        members = np.nonzero(dist <= TRUE_RADIUS)[0]
        if members.size:
            corpus.append(frozenset(macs[i] for i in members))
    return corpus


def make_estimator(locations, solver: str) -> RadiusEstimator:
    return RadiusEstimator(locations, r_max=R_MAX, solver=solver,
                           max_separated_neighbors=MAX_NEIGHBORS,
                           tie_break=TIE_BREAK)


def _best_seconds(run, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_cell(ap_count: int, observations: int, repeats: int) -> dict:
    """Time the three paths over one (AP count, corpus size) workload."""
    locations = build_locations(ap_count)
    corpus = build_corpus(locations, observations)
    delta_size = max(1, int(len(corpus) * DELTA_FRACTION))
    initial, delta = corpus[:-delta_size], corpus[-delta_size:]

    dense_est = make_estimator(locations, "simplex")
    dense_seconds = _best_seconds(lambda: dense_est.fit(corpus), repeats)
    dense = dense_est.fit(corpus)

    revised_est = make_estimator(locations, "revised")
    revised_seconds = _best_seconds(lambda: revised_est.fit(corpus),
                                    repeats)
    revised = revised_est.fit(corpus)

    # The streaming measurement: the estimator has already absorbed the
    # initial corpus; the timed unit is ingest(delta) + warm refit —
    # what one re-fit costs inside the engine loop.
    warm_est = make_estimator(locations, "revised")
    warm_est.fit(initial)
    warm_seconds = float("inf")
    for _ in range(repeats):
        cold_base = make_estimator(locations, "revised")
        cold_base.fit(initial)
        start = time.perf_counter()
        cold_base.ingest(delta)
        estimate = cold_base.refit()
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    warm = estimate

    max_diff = max(
        max(abs(revised.radii[m] - dense.radii[m]) for m in locations),
        max(abs(warm.radii[m] - dense.radii[m]) for m in locations))
    return {
        "aps": ap_count,
        "observations": observations,
        "lp_rows": revised_est.lp_rows,
        "delta_observations": delta_size,
        "dense_cold_seconds": dense_seconds,
        "revised_cold_seconds": revised_seconds,
        "incremental_seconds": warm_seconds,
        "revised_vs_dense": (dense_seconds / revised_seconds
                             if revised_seconds > 0.0 else 0.0),
        "incremental_vs_dense": (dense_seconds / warm_seconds
                                 if warm_seconds > 0.0 else 0.0),
        "warm_started": bool(warm.warm_started),
        "warm_iterations": warm.solver_iterations,
        "dense_iterations": dense.solver_iterations,
        "max_radius_diff_m": float(max_diff),
        "radii_agree": bool(max_diff <= 1e-6),
    }


def run_sweep(aps, observations: int, repeats: int = 2) -> dict:
    results = [run_cell(ap_count, observations, repeats)
               for ap_count in aps]
    # Acceptance: the largest deployment in the sweep.
    acceptance = max(results, key=lambda c: c["aps"])
    return {
        "bench": "aprad_lp",
        "config": {
            "aps": list(aps),
            "observations": observations,
            "repeats": repeats,
            "r_max": R_MAX,
            "true_radius": TRUE_RADIUS,
            "delta_fraction": DELTA_FRACTION,
            "max_separated_neighbors": MAX_NEIGHBORS,
            "tie_break": TIE_BREAK,
        },
        "results": results,
        "acceptance": {
            "aps": acceptance["aps"],
            "incremental_vs_dense": acceptance["incremental_vs_dense"],
            "revised_vs_dense": acceptance["revised_vs_dense"],
            "radii_agree": all(c["radii_agree"] for c in results),
        },
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------

def test_aprad_incremental_refit_speedup(benchmark, reporter):
    locations = build_locations(120)
    corpus = build_corpus(locations, 300)
    delta = corpus[-30:]
    estimator = make_estimator(locations, "revised")
    estimator.fit(corpus[:-30])

    def refit_delta():
        estimator.ingest(delta)
        return estimator.refit()

    benchmark(refit_delta)

    report = run_sweep(aps=(60, 120), observations=250, repeats=1)
    reporter("", "=== AP-Rad LP: dense cold vs incremental re-fit ===")
    for cell in report["results"]:
        reporter(
            f"  aps={cell['aps']:>4} rows={cell['lp_rows']:>5}: "
            f"dense {cell['dense_cold_seconds'] * 1e3:8.1f} ms | "
            f"revised {cell['revised_cold_seconds'] * 1e3:8.1f} ms | "
            f"incremental {cell['incremental_seconds'] * 1e3:7.1f} ms "
            f"({cell['incremental_vs_dense']:.1f}x)")
    assert report["acceptance"]["radii_agree"]
    assert report["acceptance"]["incremental_vs_dense"] > 1.0
    reporter("Warm-started re-fits pay for the evidence delta, not the"
             " accumulated corpus.")


# ----------------------------------------------------------------------
# Standalone JSON mode (the tier-1 smoke invocation)
# ----------------------------------------------------------------------

def _int_list(text: str):
    return tuple(int(part) for part in text.split(",") if part)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="AP-Rad radius LP: dense vs revised vs incremental")
    parser.add_argument("--aps", type=_int_list, default=DEFAULT_APS,
                        help="comma-separated AP deployment sizes")
    parser.add_argument("--observations", type=int,
                        default=DEFAULT_OBSERVATIONS,
                        help="observation corpus size per cell")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per timing (best is reported)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the sweep as JSON to FILE")
    args = parser.parse_args(argv)

    report = run_sweep(args.aps, args.observations,
                       repeats=args.repeats)
    print(f"{'aps':>5} {'rows':>6} {'dense ms':>9} {'revised ms':>10} "
          f"{'incr ms':>8} {'rx':>6} {'ix':>6} {'agree':>6}")
    for cell in report["results"]:
        print(f"{cell['aps']:>5} {cell['lp_rows']:>6} "
              f"{cell['dense_cold_seconds'] * 1e3:>9.1f} "
              f"{cell['revised_cold_seconds'] * 1e3:>10.1f} "
              f"{cell['incremental_seconds'] * 1e3:>8.1f} "
              f"{cell['revised_vs_dense']:>5.1f}x "
              f"{cell['incremental_vs_dense']:>5.1f}x "
              f"{'yes' if cell['radii_agree'] else 'NO':>6}")
    acceptance = report["acceptance"]
    print(f"acceptance cell aps={acceptance['aps']}: "
          f"incremental speedup "
          f"{acceptance['incremental_vs_dense']:.2f}x vs cold dense, "
          f"radii agree: {acceptance['radii_agree']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
