"""Figure 14: average error vs. minimum number of communicable APs.

Paper: "our approaches (particularly M-Loc) [have] average error
monotonically decreasing with the number of communicable APs, while the
average error of Centroid is increasing" — the skewed-AP-distribution
vulnerability of Centroid.
"""



K_VALUES = (1, 2, 4, 6, 8, 10, 12, 16)


def test_fig14_error_vs_min_k(benchmark, campus_reports, reporter):
    reports = campus_reports

    def slices():
        return {
            name: [rep.mean_error_vs_min_k(k) for k in K_VALUES]
            for name, rep in reports.items()
        }

    table = benchmark(slices)

    reporter("", "=== Fig 14: average error vs min #communicable APs ===",
           "min k    " + "".join(f"{k:>8d}" for k in K_VALUES))
    for name in ("m-loc", "ap-rad", "centroid"):
        cells = "".join(
            f"{value:8.1f}" if value is not None else f"{'-':>8s}"
            for value in table[name])
        reporter(f"{name:9s}{cells}")

    mloc = [v for v in table["m-loc"] if v is not None]
    centroid = [v for v in table["centroid"] if v is not None]
    # M-Loc error decreases as k grows; Centroid error does not improve
    # (it trends up into the clustered-AP regime).
    assert mloc[-1] < mloc[0] * 0.75
    assert centroid[-1] > centroid[0] * 0.9
    # Our algorithms beat Centroid at every k.
    for ours, baseline in zip(table["m-loc"], table["centroid"]):
        if ours is not None and baseline is not None:
            assert ours < baseline
    reporter("Paper: M-Loc error falls with k; Centroid's does not"
           " (skewed AP distributions).")
