"""Figure 11: percentage of probing mobiles per day.

Paper: "In each day, the percentage of probing mobiles within all found
mobiles is above 50%.  On Oct. 25, 2008, the ratio is 91.61%.  This
validates the feasibility of passive attacks."  Weekends (transient
visitors) probe more than weekday office laptops.
"""

import numpy as np

from repro.numerics.rng import make_rng
from repro.sim.population import PopulationConfig, simulate_week




def test_fig11_probing_percentage(benchmark, reporter):
    week = benchmark(
        lambda: simulate_week(PopulationConfig(), make_rng(2008)))

    reporter("", "=== Fig 11: probing percentage per day ===",
           f"{'day':8s} {'dow':4s} {'probing %':>10s}")
    for day in week:
        reporter(f"{day.label:8s} {day.weekday:4s}"
               f" {day.probing_percentage:9.1f}%")

    percentages = [d.probing_percentage for d in week]
    weekday = [d.probing_percentage for d in week if not d.is_weekend]
    weekend = [d.probing_percentage for d in week if d.is_weekend]
    reporter(f"  min {min(percentages):.1f}%  max {max(percentages):.1f}%"
           f"  (paper: all >50%, peak 91.61% on Sat Oct 25)")

    assert min(percentages) > 50.0
    assert max(percentages) > 80.0
    assert np.mean(weekend) > np.mean(weekday)
