"""Ablation: sniffer channel planning (cards vs. coverage).

Quantifies the Section III-B1 / IV-A design decision: how much of the
AP population each card budget captures, why 3 cards on 1/6/11 is the
sweet spot, and why the refuted 3/6/9 plan fails once the Fig 9 decode
reality is accounted for.
"""

from repro.numerics.rng import make_rng
from repro.sim.campus import CampusConfig, channel_histogram, generate_campus
from repro.sniffer.planning import (
    coverage_of,
    hopping_capture_probability,
    plan_channels,
)


def test_ablation_channel_planning(benchmark, reporter):
    rng = make_rng(36)
    access_points, _ = generate_campus(CampusConfig(ap_count=500), rng)
    histogram = channel_histogram(access_points)

    def sweep():
        return {cards: plan_channels(histogram, cards)
                for cards in range(1, 12)}

    plans = benchmark(sweep)

    reporter("", "=== Ablation: channel planning ===",
             f"{'cards':>6s} {'channels':24s} {'coverage':>9s}")
    for cards in (1, 2, 3, 4, 6, 11):
        plan = plans[cards]
        channel_list = ",".join(str(c) for c in plan.channels)
        reporter(f"{cards:6d} {channel_list:24s}"
                 f" {100 * plan.covered_fraction:8.1f}%")

    refuted = coverage_of(histogram, (3, 6, 9))
    reporter(f"  the refuted 3/6/9 plan: {100 * refuted:.1f}%"
             " (cross-channel decoding does not work — Fig 9)")
    hop = hopping_capture_probability(4.0, 44.0)
    reporter(f"  one hopping card (4 s dwell): {100 * hop:.1f}% of any"
             " single probe burst")

    # The paper's decision falls out automatically:
    assert plans[3].channels == (1, 6, 11)
    assert plans[3].covered_fraction > 0.9
    # Diminishing returns past three cards.
    gain_3 = (plans[3].covered_fraction - plans[2].covered_fraction)
    gain_4 = (plans[4].covered_fraction - plans[3].covered_fraction)
    assert gain_4 < gain_3
    # The refuted plan is far worse than the measured one.
    assert refuted < 0.5
    reporter("Paper: 'most APs (93.7%) use Channels 1, 6 and 11.  So we"
             " chose to use three cards.'")
