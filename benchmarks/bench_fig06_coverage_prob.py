"""Figure 6: coverage probability vs. estimated radius R < r (k=10, r=1).

Paper (Theorem 3, eq. 35): p = (R/r)^{2k} — "when r' < r, the
probability of the intersected area covering the real location quickly
becomes extremely small when k is large.  An overestimate of r is
clearly preferred over an underestimate."
"""

from repro.numerics.rng import make_rng
from repro.theory.theorem3 import (
    coverage_probability_underestimate,
    monte_carlo_overestimate,
)



K = 10
R_VALUES = (0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0)


def test_fig06_coverage_probability(benchmark, reporter):
    curve = benchmark(
        lambda: [coverage_probability_underestimate(K, 1.0, big_r)
                 for big_r in R_VALUES])

    rng = make_rng(6)
    reporter("", f"=== Fig 6: coverage probability vs R (k={K}, r=1) ===",
           f"{'R':>5s} {'p = (R/r)^2k':>14s} {'Monte Carlo':>12s}")
    for big_r, value in zip(R_VALUES, curve):
        if big_r in (0.85, 0.95):
            _, _, coverage = monte_carlo_overestimate(K, 1.0, big_r, rng,
                                                      trials=2000)
            reporter(f"{big_r:5.2f} {value:14.6f} {coverage:12.4f}")
        else:
            reporter(f"{big_r:5.2f} {value:14.6f}")

    assert all(a < b for a, b in zip(curve, curve[1:]))
    assert curve[0] < 1e-5       # R = 0.5: essentially never covers
    assert curve[-1] == 1.0      # R = r: always covers
    reporter("Paper: underestimates collapse the coverage probability;"
           " overestimates are preferred.")
