"""Capture replay throughput: columnar block store vs legacy JSONL.

The ingest hot path for every downstream consumer is capture replay.
This bench writes one synthetic campus capture (mixed probe/response/
data/beacon traffic with device locality) in *both* registered formats
and measures:

* **sequential** — records/sec through ``iter_capture`` (JSONL vs
  columnar, the record-at-a-time seam) and through
  ``iter_capture_batches`` (the zero-copy columnar batch seam);
* **selective** — one device's records only, where the columnar
  reader's per-block bloom filters skip whole blocks
  (``repro.capture.blocks_skipped``) and JSONL must decode everything;
* **engine** — ``StreamingEngine.run`` vs ``run_batches`` over the
  same capture prefix, asserting identical estimates.

Devices move through the capture with temporal locality (a device is
active in one contiguous slice of the week), so block skipping reflects
the real campaign shape rather than a best case.

Run standalone for the JSON report (the tier-1 smoke test does)::

    PYTHONPATH=src python benchmarks/bench_capture_replay.py \
        --records 20000 --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from itertools import islice
from pathlib import Path
from typing import Iterator

from repro import obs
from repro.capture import make_capture_writer
from repro.engine import StreamingEngine, make_sink
from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.localization import MLoc
from repro.net80211.frames import Dot11Frame, FrameType
from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.sniffer.replay import iter_capture, iter_capture_batches

AP_GRID = 12            # 144 APs
AP_BASE = 0x001B63000000
MOBILE_BASE = 0x020000000000
MOBILE_COUNT = 2000
RECORD_PERIOD_S = 0.02  # 50 records/sec of captured traffic


def _ap(index: int) -> MacAddress:
    return MacAddress(AP_BASE + index % (AP_GRID * AP_GRID))


def generate_stream(records: int) -> Iterator[ReceivedFrame]:
    """A deterministic campus-like stream with device locality.

    Device ``d`` is active only in slice ``d`` of the capture, cycling
    through the APs near its slice — so any single device's records
    cluster in a few columnar blocks and the rest are bloom-skippable.
    """
    for index in range(records):
        ts = index * RECORD_PERIOD_S
        mobile = MacAddress(
            MOBILE_BASE + (index * MOBILE_COUNT) // records)
        ap = _ap(index // 7)
        mix = index % 10
        if mix < 3:
            frame = Dot11Frame(
                frame_type=FrameType.PROBE_REQUEST, source=mobile,
                destination=BROADCAST_MAC, channel=6, timestamp=ts,
                ssid=Ssid("campus"), sequence=index & 0xFFF)
        elif mix < 7:
            frame = Dot11Frame(
                frame_type=FrameType.PROBE_RESPONSE, source=ap,
                destination=mobile, channel=6, timestamp=ts,
                ssid=Ssid("campus"), bssid=ap, sequence=index & 0xFFF)
        elif mix < 9:
            frame = Dot11Frame(
                frame_type=FrameType.DATA, source=mobile,
                destination=ap, channel=6, timestamp=ts,
                ssid=Ssid(""), bssid=ap, sequence=index & 0xFFF)
        else:
            frame = Dot11Frame(
                frame_type=FrameType.BEACON, source=ap,
                destination=BROADCAST_MAC, channel=6, timestamp=ts,
                ssid=Ssid("campus"), bssid=ap, sequence=index & 0xFFF)
        yield ReceivedFrame(frame=frame, rssi_dbm=-55.0, snr_db=18.0,
                            rx_channel=6, rx_timestamp=ts)


def write_corpus(records: int, jsonl_path: str, columnar_path: str,
                 block_records: int) -> dict:
    """Write the identical stream to both formats in one pass."""
    start = time.perf_counter()
    with make_capture_writer(jsonl_path, format="jsonl") as jw, \
            make_capture_writer(columnar_path, format="columnar",
                                block_records=block_records) as cw:
        for received in generate_stream(records):
            jw.write(received)
            cw.write(received)
    return {
        "records": records,
        "write_wall_s": time.perf_counter() - start,
        "jsonl_bytes": os.path.getsize(jsonl_path),
        "columnar_bytes": os.path.getsize(columnar_path),
    }


def _timed_replay(iterator: Iterator, batched: bool) -> dict:
    start = time.perf_counter()
    if batched:
        count = sum(len(batch) for batch in iterator)
    else:
        count = sum(1 for _ in iterator)
    elapsed = time.perf_counter() - start
    return {
        "records": count,
        "wall_s": elapsed,
        "records_per_sec": count / elapsed if elapsed > 0.0 else 0.0,
    }


def run_sequential(jsonl_path: str, columnar_path: str,
                   repeats: int) -> dict:
    """Full-capture replay, records/sec per seam (best of N)."""
    modes = {
        "jsonl_records": lambda: _timed_replay(
            iter_capture(jsonl_path), batched=False),
        "columnar_records": lambda: _timed_replay(
            iter_capture(columnar_path), batched=False),
        "columnar_batches": lambda: _timed_replay(
            iter_capture_batches(columnar_path), batched=True),
    }
    report = {}
    for label, run in modes.items():
        report[label] = max((run() for _ in range(repeats)),
                            key=lambda r: r["records_per_sec"])
    baseline = report["jsonl_records"]["records_per_sec"]
    for label in ("columnar_records", "columnar_batches"):
        report[f"{label}_speedup"] = (
            report[label]["records_per_sec"] / baseline
            if baseline > 0.0 else 0.0)
    return report


def run_selective(jsonl_path: str, columnar_path: str,
                  repeats: int) -> dict:
    """One device's records only: bloom-gated vs decode-everything."""
    device = str(MacAddress(MOBILE_BASE + MOBILE_COUNT // 2))
    report = {"device": device}
    for label, path in (("jsonl", jsonl_path),
                        ("columnar", columnar_path)):
        best = None
        for _ in range(repeats):
            registry = obs.MetricsRegistry()
            with obs.use_registry(registry):
                timing = _timed_replay(
                    iter_capture_batches(path, device=device),
                    batched=True)
            timing["blocks_skipped"] = int(
                registry.counter("repro.capture.blocks_skipped").value)
            timing["blocks_read"] = int(
                registry.counter("repro.capture.blocks_read").value)
            if best is None or (timing["records_per_sec"]
                                > best["records_per_sec"]):
                best = timing
        report[label] = best
    jsonl_wall = report["jsonl"]["wall_s"]
    columnar_wall = report["columnar"]["wall_s"]
    report["speedup"] = (jsonl_wall / columnar_wall
                         if columnar_wall > 0.0 else 0.0)
    assert report["jsonl"]["records"] == report["columnar"]["records"], (
        "selective replay disagrees between formats")
    return report


def build_database() -> ApDatabase:
    return ApDatabase(
        ApRecord(bssid=_ap(index), ssid=Ssid("campus"),
                 location=Point((index % AP_GRID) * 100.0,
                                (index // AP_GRID) * 100.0),
                 max_range_m=140.0)
        for index in range(AP_GRID * AP_GRID))


def run_engine_section(columnar_path: str, frames: int) -> dict:
    """Record-path vs batch-path engine ingest over the same prefix.

    The capture prefix is bounded (``frames``) so the bench's engine
    section stays a throughput probe, not a full campaign.
    """
    database = build_database()

    def fixes_of(engine):
        sink = engine.sinks[0]
        return {str(mobile): (ts, est.position.x, est.position.y)
                for mobile, (ts, est) in sink.fixes.items()}

    engine_records = StreamingEngine(
        MLoc(database), window_s=600.0, batch_size=32,
        sinks=[make_sink("latest")])
    start = time.perf_counter()
    engine_records.run(islice(iter_capture(columnar_path), frames))
    records_wall = time.perf_counter() - start

    def bounded_batches() -> Iterator:
        remaining = frames
        for batch in iter_capture_batches(columnar_path):
            if remaining <= 0:
                return
            if len(batch) > remaining:
                from repro.capture import FrameBatch
                batch = FrameBatch(batch.records[:remaining], batch.aux,
                                   batch.frame_types)
            remaining -= len(batch)
            yield batch

    engine_batches = StreamingEngine(
        MLoc(database), window_s=600.0, batch_size=32,
        sinks=[make_sink("latest")])
    start = time.perf_counter()
    engine_batches.run_batches(bounded_batches())
    batches_wall = time.perf_counter() - start

    stats_r = engine_records.stats()
    stats_b = engine_batches.stats()
    identical = (stats_r.frames_ingested == stats_b.frames_ingested
                 and stats_r.estimates_emitted == stats_b.estimates_emitted
                 and fixes_of(engine_records) == fixes_of(engine_batches))
    assert identical, "batch-path engine output diverged from record path"
    return {
        "frames": stats_r.frames_ingested,
        "estimates": stats_r.estimates_emitted,
        "record_path": {
            "wall_s": records_wall,
            "frames_per_sec": (stats_r.frames_ingested / records_wall
                               if records_wall > 0.0 else 0.0),
        },
        "batch_path": {
            "wall_s": batches_wall,
            "frames_per_sec": (stats_b.frames_ingested / batches_wall
                               if batches_wall > 0.0 else 0.0),
        },
        "speedup": (records_wall / batches_wall
                    if batches_wall > 0.0 else 0.0),
        "outputs_identical": identical,
    }


def run_bench(records: int, block_records: int, engine_frames: int,
              repeats: int, workdir: str) -> dict:
    jsonl_path = str(Path(workdir) / "bench_capture.jsonl")
    columnar_path = str(Path(workdir) / "bench_capture.cap")
    corpus = write_corpus(records, jsonl_path, columnar_path,
                          block_records)
    sequential = run_sequential(jsonl_path, columnar_path, repeats)
    selective = run_selective(jsonl_path, columnar_path, repeats)
    engine = run_engine_section(columnar_path,
                                min(engine_frames, records))
    report = {
        "bench": "capture_replay",
        "config": {
            "records": records,
            "block_records": block_records,
            "engine_frames": min(engine_frames, records),
            "repeats": repeats,
            "mobiles": MOBILE_COUNT,
            "aps": AP_GRID * AP_GRID,
            # Throughput numbers are hardware-bound; record the cores
            # the committed run actually had.
            "cpu_count": os.cpu_count(),
        },
        "corpus": corpus,
        "sequential": sequential,
        "selective": selective,
        "engine": engine,
    }
    os.unlink(jsonl_path)
    os.unlink(columnar_path)
    return report


# ----------------------------------------------------------------------
# pytest-benchmark entry point (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------

def test_capture_replay_columnar_speedup(benchmark, reporter, tmp_path):
    report = benchmark(lambda: run_bench(
        records=20000, block_records=2048, engine_frames=5000,
        repeats=1, workdir=str(tmp_path)))
    seq = report["sequential"]
    reporter("", "=== Capture replay: columnar vs JSONL ===",
             f"  jsonl records/s    : "
             f"{seq['jsonl_records']['records_per_sec']:12.0f}",
             f"  columnar records/s : "
             f"{seq['columnar_records']['records_per_sec']:12.0f} "
             f"({seq['columnar_records_speedup']:.1f}x)",
             f"  columnar batches/s : "
             f"{seq['columnar_batches']['records_per_sec']:12.0f} "
             f"({seq['columnar_batches_speedup']:.1f}x)",
             f"  selective skipped  : "
             f"{report['selective']['columnar']['blocks_skipped']} of "
             f"{report['selective']['columnar']['blocks_skipped'] + report['selective']['columnar']['blocks_read']} blocks")
    assert seq["columnar_batches_speedup"] > 1.0
    assert report["engine"]["outputs_identical"]


# ----------------------------------------------------------------------
# Standalone JSON mode (the tier-1 smoke invocation)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Capture replay throughput, columnar vs JSONL")
    parser.add_argument("--records", type=int, default=1_000_000,
                        help="capture records to generate")
    parser.add_argument("--block-records", type=int, default=65536,
                        help="rows per columnar block")
    parser.add_argument("--engine-frames", type=int, default=40_000,
                        help="capture prefix for the engine section")
    parser.add_argument("--repeats", type=int, default=1,
                        help="replays per mode (best is reported)")
    parser.add_argument("--workdir", default=None,
                        help="directory for the generated capture "
                             "files (default: a temp dir)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the report as JSON to FILE")
    args = parser.parse_args(argv)

    import tempfile
    if args.workdir is not None:
        report = run_bench(args.records, args.block_records,
                           args.engine_frames, args.repeats,
                           args.workdir)
    else:
        with tempfile.TemporaryDirectory() as workdir:
            report = run_bench(args.records, args.block_records,
                               args.engine_frames, args.repeats, workdir)

    corpus, seq = report["corpus"], report["sequential"]
    print(f"records={corpus['records']} "
          f"jsonl={corpus['jsonl_bytes'] / 1e6:.1f}MB "
          f"columnar={corpus['columnar_bytes'] / 1e6:.1f}MB")
    print(f"jsonl  records path : "
          f"{seq['jsonl_records']['records_per_sec']:12.0f} rec/s")
    print(f"columnar record path: "
          f"{seq['columnar_records']['records_per_sec']:12.0f} rec/s "
          f"({seq['columnar_records_speedup']:.1f}x)")
    print(f"columnar batch path : "
          f"{seq['columnar_batches']['records_per_sec']:12.0f} rec/s "
          f"({seq['columnar_batches_speedup']:.1f}x)")
    sel = report["selective"]
    print(f"selective replay ({sel['device']}): "
          f"{sel['speedup']:.1f}x, "
          f"{sel['columnar']['blocks_skipped']} blocks skipped / "
          f"{sel['columnar']['blocks_read']} read "
          f"({sel['columnar']['records']} records)")
    eng = report["engine"]
    print(f"engine record path  : "
          f"{eng['record_path']['frames_per_sec']:12.0f} frames/s")
    print(f"engine batch path   : "
          f"{eng['batch_path']['frames_per_sec']:12.0f} frames/s "
          f"({eng['speedup']:.1f}x, outputs identical: "
          f"{eng['outputs_identical']})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
