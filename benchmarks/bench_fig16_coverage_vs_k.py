"""Figure 16: probability the intersected area covers the true location.

Paper: "the estimation error on APs' radius leads to a lower coverage
probability for AP-Rad" (than M-Loc, whose measured radii keep the
region honest).
"""



K_VALUES = (1, 2, 4, 6, 8, 10, 12, 16)


def test_fig16_coverage_vs_min_k(benchmark, campus_reports, reporter):
    reports = campus_reports

    def slices():
        return {
            name: [reports[name].coverage_probability_vs_min_k(k)
                   for k in K_VALUES]
            for name in ("m-loc", "ap-rad")
        }

    table = benchmark(slices)

    reporter("", "=== Fig 16: coverage probability vs min #APs ===",
           "min k    " + "".join(f"{k:>8d}" for k in K_VALUES))
    for name in ("m-loc", "ap-rad"):
        cells = "".join(
            f"{value:8.2f}" if value is not None else f"{'-':>8s}"
            for value in table[name])
        reporter(f"{name:9s}{cells}")

    mloc = table["m-loc"]
    aprad = table["ap-rad"]
    # M-Loc covers more often than AP-Rad at every k.
    for m, a in zip(mloc, aprad):
        if m is not None and a is not None:
            assert m >= a
    # And M-Loc's coverage stays high overall.
    assert mloc[0] > 0.85
    reporter("Paper: AP-Rad's radius errors cost coverage probability;"
           " M-Loc stays high.")
