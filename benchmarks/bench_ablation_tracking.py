"""Ablation: temporal smoothing of Marauder's-map tracks.

The paper localizes each fix independently.  A walking victim moves
smoothly, so simple temporal filters over the track reduce the
per-fix error essentially for free — an engineering extension of the
paper's tracking scenario ("a mobile device is carried around the
campus").
"""

from repro.analysis.tracking import (
    average_track_error,
    exponential_smoothing,
    moving_average,
)
from repro.localization import MLoc
from repro.sim import build_attack_scenario
from repro.sniffer import DeviceTracker


def _victim_track():
    scenario = build_attack_scenario(seed=19, ap_count=90, area_m=500.0,
                                     bystander_count=4)
    world = scenario.world
    store = world.sniffer.store
    mloc = MLoc(scenario.truth_db)
    tracker = DeviceTracker()
    epochs = 30
    for _ in range(epochs):
        world.run(duration_s=15.0)
        gamma = store.gamma(scenario.victim.mac, at_time=world.now)
        if not gamma:
            continue
        estimate = mloc.locate(gamma)
        if estimate is not None:
            tracker.record(scenario.victim.mac, world.now, estimate)
    track = [(point.timestamp, point.estimate.position)
             for point in tracker.track_of(scenario.victim.mac)]

    def truth_at(timestamp):
        return world.truth_at(scenario.victim.mac, timestamp,
                              tolerance_s=1.0)

    return track, truth_at


def test_ablation_track_smoothing(benchmark, reporter):
    track, truth_at = _victim_track()

    def evaluate():
        return {
            "raw": average_track_error(track, truth_at),
            "exp (a=0.5)": average_track_error(
                exponential_smoothing(track, alpha=0.5), truth_at),
            "avg (w=3)": average_track_error(
                moving_average(track, window=3), truth_at),
        }

    errors = benchmark(evaluate)

    reporter("", "=== Ablation: temporal smoothing of tracks ===",
             f"  fixes in track : {len(track)}")
    for name, value in errors.items():
        reporter(f"  {name:12s}: {value:6.1f} m")

    assert len(track) >= 10
    # Some smoothing beats raw per-fix localization for a walking
    # victim (lag vs noise: at least one filter wins).
    assert min(errors["exp (a=0.5)"], errors["avg (w=3)"]) < errors["raw"]
    reporter("Extension: track-level filtering tightens the paper's"
             " per-fix estimates on moving targets.")
