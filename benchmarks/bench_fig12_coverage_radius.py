"""Figure 12: coverage radius of the four receiver chains.

Paper (UML north campus, sniffer on the CS building roof):

* "'LNA' achieves the best coverage around 1,000 meters",
* "'HG2415U' can cover as large an area as 'LNA'.  This is due to the
  geographical feature of the area.  The area is not flat and the
  sniffer is obstructed by small hills,"
* the laptop cards (SRC, DLink) cover far less.

We reproduce the experiment on the simulated campus: an urban
log-distance channel (n = 2.5) plus a ring of small hills ~1.05 km out.
The coverage radius per chain is measured by walking a transmitter
outward along several azimuths until the chain stops decoding —
exactly the paper's walk-around-with-a-tablet methodology.
"""

import math

from repro.geometry.point import Point
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.numerics.rng import make_rng
from repro.radio.propagation import LogDistanceModel, ObstructedModel
from repro.sim.terrain import Hill, Terrain
from repro.sniffer.receiver import (
    build_dlink_chain,
    build_hg2415u_chain,
    build_marauder_chain,
    build_src_chain,
)



#: Urban-campus path-loss exponent.
EXPONENT = 2.5
#: Small hills obstructing the long sight lines, ~1.05 km out.
HILL_RING_M = 1050.0
HILL_LOSS_DB = 25.0
AZIMUTHS = 12
SNIFFER = Point(0.0, 0.0)

#: Paper's measured radii, by chain name (meters, read from Fig 12).
PAPER_RADII = {"DLink": 250.0, "SRC": 400.0, "HG2415U": 950.0,
               "LNA": 1000.0}


def _terrain():
    terrain = Terrain()
    ring_count = 36
    for i in range(ring_count):
        angle = 2.0 * math.pi * i / ring_count
        center = Point(HILL_RING_M * math.cos(angle),
                       HILL_RING_M * math.sin(angle))
        terrain.add_hill(Hill(center, radius_m=120.0,
                              loss_db=HILL_LOSS_DB))
    return terrain


def _coverage_radius(chain, medium, rng):
    """Max decode distance, averaged over azimuths (mobile walks out)."""
    station = MacAddress.parse("00:1b:63:11:22:33")
    total = 0.0
    for i in range(AZIMUTHS):
        angle = 2.0 * math.pi * i / AZIMUTHS + 0.1
        direction = (math.cos(angle), math.sin(angle))

        def decodes(distance):
            frame = probe_request(station, channel=6, timestamp=0.0)
            position = Point(direction[0] * distance,
                             direction[1] * distance)
            return medium.deliver(frame, position, SNIFFER, chain, 6,
                                  rng) is not None

        low, high = 10.0, 5000.0
        if decodes(high):
            total += high
            continue
        for _ in range(30):
            mid = 0.5 * (low + high)
            if decodes(mid):
                low = mid
            else:
                high = mid
        total += low
    return total / AZIMUTHS


def test_fig12_coverage_radius(benchmark, reporter):
    terrain = _terrain()
    propagation = ObstructedModel(LogDistanceModel(exponent=EXPONENT),
                                  terrain.obstruction_db)
    medium = Medium(propagation)
    chains = [build_dlink_chain(), build_src_chain(),
              build_hg2415u_chain(), build_marauder_chain()]

    def measure_all():
        rng = make_rng(12)
        return {chain.name: _coverage_radius(chain, medium, rng)
                for chain in chains}

    radii = benchmark(measure_all)

    reporter("", "=== Fig 12: coverage radius per receiver chain ===",
           f"{'chain':10s} {'measured':>10s} {'paper':>8s}")
    for name in ("DLink", "SRC", "HG2415U", "LNA"):
        reporter(f"{name:10s} {radii[name]:8.0f} m {PAPER_RADII[name]:6.0f} m")

    # The paper's three observations:
    # (i) LNA best, around 1000 m.
    assert 800.0 <= radii["LNA"] <= 1300.0
    # (ii) HG2415U nearly as large — both are terrain-limited.
    assert radii["HG2415U"] >= 0.85 * radii["LNA"]
    # (iii) laptop cards far behind, DLink worst.
    assert radii["DLink"] < radii["SRC"] < 0.6 * radii["HG2415U"]
    reporter("Paper: LNA ~1000 m; HG2415U similar (hills limit both);"
           " laptop cards far less.")
