"""Figure 9: cross-channel packet recognition.

Paper: "when a wireless card is sending packets on Channel 11, other
cards listening on neighboring channels can recognize few or none of
those packets" — refuting the belief that three cards on channels 3/6/9
could capture the whole band.  We transmit 2000 frames on channel 11
through the medium and count decodes per listening channel.
"""

from repro.geometry.point import Point
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.numerics.rng import make_rng
from repro.radio.propagation import FreeSpaceModel
from repro.sniffer.receiver import build_marauder_chain



TX_CHANNEL = 11
RX_CHANNELS = (7, 8, 9, 10, 11)
FRAMES = 2000
DISTANCE_M = 40.0  # strong signal: failures are distortion, not range


def _decode_counts():
    medium = Medium(FreeSpaceModel())
    chain = build_marauder_chain()
    rng = make_rng(9)
    station = MacAddress.parse("00:1b:63:11:22:33")
    counts = {}
    for rx_channel in RX_CHANNELS:
        decoded = 0
        for i in range(FRAMES):
            frame = probe_request(station, channel=TX_CHANNEL,
                                  timestamp=float(i))
            received = medium.deliver(frame, Point(0.0, 0.0),
                                      Point(DISTANCE_M, 0.0), chain,
                                      rx_channel, rng)
            if received is not None:
                decoded += 1
        counts[rx_channel] = decoded
    return counts


def test_fig09_cross_channel_recognition(benchmark, reporter):
    counts = benchmark(_decode_counts)

    reporter("", f"=== Fig 9: frames decoded per listening channel"
           f" (tx on ch {TX_CHANNEL}, {FRAMES} frames, strong signal)"
           " ===")
    for rx_channel in RX_CHANNELS:
        rate = counts[rx_channel] / FRAMES
        reporter(f"  listen ch {rx_channel:2d}: {counts[rx_channel]:5d}"
               f"  ({100 * rate:5.1f}%)")

    assert counts[11] == FRAMES                    # co-channel: all
    assert counts[10] < 0.10 * FRAMES              # neighbor: few
    assert counts[9] <= 0.03 * FRAMES              # two off: almost none
    assert counts[8] == 0 and counts[7] == 0       # none
    reporter("Paper: neighboring-channel cards recognize few or none —"
           " 3 cards on 3/6/9 cannot cover the band.")
