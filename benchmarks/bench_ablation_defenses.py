"""Ablation: identity-camouflage defenses vs. the Marauder's map.

The paper's future-work direction, measured: MAC pseudonyms alone are
re-linked through directed probe requests (the Pang et al. implicit
identifier the paper cites); probe hygiene breaks the linkage; silence
and mix-zone style muting trade usability for fragmentation.
"""

from repro.defenses import (
    DefendedStation,
    ProbeHygiene,
    PseudonymPolicy,
    SilentPeriodPolicy,
    evaluate_trackability,
)
from repro.geometry.point import Point
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.net80211.station import PROFILES, MobileStation
from repro.numerics.rng import make_rng
from repro.sim import build_attack_scenario


def _victim():
    rng = make_rng(5)
    return MobileStation(
        mac=MacAddress.random_pseudonym(rng),
        position=Point(250.0, 75.0),
        profile=PROFILES["aggressive"],
        preferred_networks=[Ssid("home-net"), Ssid("office")],
    )


def _evaluate(policies):
    scenario = build_attack_scenario(seed=23, ap_count=70, area_m=500.0,
                                     bystander_count=4)
    defended = DefendedStation(inner=_victim(), seed=9, **policies)
    scenario.world.add_station(defended, scenario.victim_route)
    return evaluate_trackability(scenario.world, defended,
                                 duration_s=300.0,
                                 truth_db=scenario.truth_db)


def test_ablation_defense_ladder(benchmark, reporter):
    # Policies are stateful: build them fresh on every benchmark round.
    ladder = {
        "none": lambda: dict(),
        "pseudonyms": lambda: dict(
            pseudonyms=PseudonymPolicy(interval_s=60.0)),
        "pseudonyms+hygiene": lambda: dict(
            pseudonyms=PseudonymPolicy(interval_s=60.0),
            silence=SilentPeriodPolicy(min_s=5.0, max_s=20.0),
            hygiene=ProbeHygiene()),
    }

    def run_ladder():
        return {name: _evaluate(make_policies())
                for name, make_policies in ladder.items()}

    results = benchmark(run_ladder)

    reporter("", "=== Ablation: identity-camouflage defenses ===",
             f"{'defense':20s} {'MACs':>5s} {'linked':>7s}"
             f" {'fixes':>6s} {'muted':>6s}")
    for name, rep in results.items():
        reporter(f"{name:20s} {rep.macs_used:5d}"
                 f" {rep.linked_by_attacker:7d} {rep.located_fixes:6d}"
                 f" {100 * rep.muted_fraction:5.0f}%")

    # Static MAC: one identity, trivially tracked end to end.
    assert results["none"].macs_used == 1
    # Pseudonyms rotate but the attacker re-links most of them.
    assert results["pseudonyms"].macs_used >= 4
    assert results["pseudonyms"].linked_by_attacker >= 3
    # Hygiene breaks the linkage entirely.
    assert results["pseudonyms+hygiene"].linkage_broken
    # But every configuration still yields per-identity location fixes:
    # camouflage fragments the track, it does not hide the device.
    for rep in results.values():
        assert rep.located_fixes > 0
    reporter("Paper (conclusion/related work): pseudonyms alone are"
             " broken by probing-traffic identifiers; suppressing"
             " directed probes is required to break linkage.")
