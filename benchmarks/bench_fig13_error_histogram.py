"""Figure 13: histogram of estimation errors for M-Loc / AP-Rad / Centroid.

Paper: "the average estimation error of M-Loc and AP-Rad is only 9.41
and 13.75 meters, respectively, in comparison with an average error of
17.28 meters for the Centroid approach."  Absolute numbers depend on
the campus; the reproduced *ordering* and rough ratios are the claim.
"""

from repro.analysis.errors import histogram



PAPER_MEANS = {"m-loc": 9.41, "ap-rad": 13.75, "centroid": 17.28,
               "w-centroid": None}  # extra baseline, not in the paper
BINS = [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 60.0]


def test_fig13_error_histogram(benchmark, campus_reports, reporter):
    reports = campus_reports

    def summarize():
        return {name: rep.mean_error() for name, rep in reports.items()}

    means = benchmark(summarize)

    reporter("", "=== Fig 13: localization error histogram ===")
    for name in ("m-loc", "ap-rad", "centroid", "w-centroid"):
        errors = reports[name].errors()
        bins = histogram(errors, BINS)
        paper = PAPER_MEANS[name]
        paper_text = (f" paper {paper:.2f} m" if paper is not None
                      else " extra baseline")
        reporter(f"  {name} (mean {means[name]:.2f} m,{paper_text}):")
        peak = max(count for _, _, count in bins) or 1
        for low, high, count in bins:
            bar = "#" * int(30 * count / peak)
            reporter(f"    {low:4.0f}-{high:4.0f} m: {count:4d} {bar}")

    # The paper's ordering and scale.
    assert means["m-loc"] < means["ap-rad"] < means["centroid"]
    assert means["m-loc"] < 25.0
    assert means["centroid"] < 40.0
    # M-Loc's advantage over Centroid is substantial (~1.8x in paper).
    assert means["centroid"] / means["m-loc"] > 1.2
    reporter("Paper ordering reproduced: M-Loc < AP-Rad < Centroid.")
