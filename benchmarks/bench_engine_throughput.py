"""Streaming-engine throughput: Γ-set memoization, and sharded scaling.

A campus stream is duplicate-heavy — most devices sit in one of a few
AP neighborhoods — so the engine's Γ-set cache should collapse N
identical disc intersections into one.  This bench replays the same
synthetic stream through :class:`repro.engine.StreamingEngine` twice
(cache enabled / disabled) and reports estimates/sec for both.

The ``--sharded`` mode measures the scale-out story instead: the same
stream (cache *off*, so localization compute dominates and the scaling
is honest) through a :class:`repro.service.ShardedEngine` at 1/2/4
shards on the process transport, each shard discarding estimates into a
``null`` sink.  Reported speedups are against the single-engine
baseline on the identical workload.

Run standalone for the JSON report (the tier-1 smoke test does)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --frames 200 --json out.json

or under pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
from typing import Iterator, List

from repro.engine import StreamingEngine, make_sink
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.geometry.point import Point
from repro.localization import MLoc
from repro.net80211.frames import probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.service import ShardConfig, ShardedEngine

#: AP grid geometry: 6x6 grid, 100 m spacing, 140 m range — every
#: cell's four corner discs overlap at the cell center.
GRID = 6
SPACING_M = 100.0
RANGE_M = 140.0
APS_PER_GAMMA = 4


def build_database() -> ApDatabase:
    records = []
    for j in range(GRID):
        for i in range(GRID):
            index = j * GRID + i
            records.append(ApRecord(
                bssid=MacAddress(0x001B63000000 + index),
                ssid=Ssid(f"bench-ap-{index}"),
                location=Point(i * SPACING_M, j * SPACING_M),
                max_range_m=RANGE_M,
                channel=6))
    return ApDatabase(records)


def _pattern_bssids(pattern: int) -> List[MacAddress]:
    """The four corner APs of grid cell ``pattern`` (row-major)."""
    cells = GRID - 1
    cx, cy = pattern % cells, (pattern // cells) % cells
    return [MacAddress(0x001B63000000 + (cy + dy) * GRID + (cx + dx))
            for dy in (0, 1) for dx in (0, 1)]


def build_stream(frame_budget: int,
                 pattern_count: int) -> List[ReceivedFrame]:
    """A stream where devices share ``pattern_count`` AP neighborhoods.

    Each device contributes ``APS_PER_GAMMA`` probe responses; device i
    lives in neighborhood ``i % pattern_count``, so the duplicate-Γ
    fraction is ``1 - pattern_count / devices`` (>= 50% for the
    default shapes).
    """
    frames: List[ReceivedFrame] = []
    devices = max(1, frame_budget // APS_PER_GAMMA)
    t = 0.0
    for d in range(devices):
        mobile = MacAddress(0x020000000000 + d)
        for ap in _pattern_bssids(d % pattern_count):
            t += 0.05
            frame = probe_response(ap, mobile, 6, t,
                                   ssid=Ssid("bench"))
            frames.append(ReceivedFrame(frame, rssi_dbm=-70.0,
                                        snr_db=20.0, rx_channel=6,
                                        rx_timestamp=t))
    return frames


def run_engine(frames: List[ReceivedFrame], database: ApDatabase,
               cache_size: int, window_s: float = 600.0) -> dict:
    """One engine pass; returns the stats dict plus wall-clock numbers.

    The window is generous so a device's Γ never decays mid-stream —
    the bench measures localization throughput, not churn.
    """
    engine = StreamingEngine(MLoc(database), window_s=window_s,
                             batch_size=32, cache_size=cache_size)
    start = time.perf_counter()
    stats = engine.run(iter(frames))
    elapsed = time.perf_counter() - start
    result = stats.to_dict()
    result["wall_s"] = elapsed
    result["wall_estimates_per_sec"] = (
        stats.estimates_emitted / elapsed if elapsed > 0.0 else 0.0)
    result["metrics"] = engine.metrics_snapshot()
    return result


def run_comparison(frame_budget: int, pattern_count: int,
                   repeats: int = 3) -> dict:
    """Cache-on vs cache-off over the identical stream (best of N)."""
    database = build_database()
    frames = build_stream(frame_budget, pattern_count)
    best = {}
    for label, cache_size in (("cache_on", 4096), ("cache_off", 0)):
        runs = [run_engine(frames, database, cache_size)
                for _ in range(repeats)]
        best[label] = max(runs,
                          key=lambda r: r["wall_estimates_per_sec"])
    on, off = best["cache_on"], best["cache_off"]
    devices = max(1, len(frames) // APS_PER_GAMMA)
    return {
        "bench": "engine_throughput",
        "config": {
            "frames": len(frames),
            "devices": devices,
            "patterns": pattern_count,
            "duplicate_gamma_fraction": 1.0 - pattern_count / devices,
            "aps": GRID * GRID,
            "repeats": repeats,
        },
        "cache_on": on,
        "cache_off": off,
        "speedup": (on["wall_estimates_per_sec"]
                    / off["wall_estimates_per_sec"]
                    if off["wall_estimates_per_sec"] > 0.0 else 0.0),
    }


def run_sharded(frames: List[ReceivedFrame], database: ApDatabase,
                shards: int, transport: str = "process",
                publish_batch: int = 256) -> dict:
    """One sharded pass (cache off, null sinks); wall-clock over
    ingest + drain only — fleet spawn/teardown is not throughput.
    """
    engine = ShardedEngine(
        functools.partial(MLoc, database),
        shards=shards, transport=transport,
        config=ShardConfig(window_s=600.0, batch_size=32, cache_size=0,
                           reorder_capacity=0, sink_specs=("null",)),
        publish_batch=publish_batch)
    try:
        start = time.perf_counter()
        stats = engine.run(iter(frames))
        elapsed = time.perf_counter() - start
    finally:
        engine.stop()
    return {
        "shards": shards,
        "transport": transport,
        "wall_s": elapsed,
        "estimates_emitted": stats.estimates_emitted,
        "frames_ingested": stats.frames_ingested,
        "wall_estimates_per_sec": (stats.estimates_emitted / elapsed
                                   if elapsed > 0.0 else 0.0),
    }


def run_scaling(frame_budget: int, pattern_count: int,
                shard_counts=(1, 2, 4), repeats: int = 3,
                transport: str = "process") -> dict:
    """Sharded scaling vs the single-engine baseline (best of N each).

    Cache is off everywhere and every engine discards into a ``null``
    sink, so the comparison is pure localization throughput; the
    single-process baseline is a plain :class:`StreamingEngine`, not a
    one-shard fleet, so bus overhead counts *against* the service.
    """
    database = build_database()
    frames = build_stream(frame_budget, pattern_count)

    def baseline_once() -> dict:
        engine = StreamingEngine(MLoc(database), window_s=600.0,
                                 batch_size=32, cache_size=0,
                                 sinks=[make_sink("null")])
        start = time.perf_counter()
        stats = engine.run(iter(frames))
        elapsed = time.perf_counter() - start
        return {"wall_s": elapsed,
                "estimates_emitted": stats.estimates_emitted,
                "wall_estimates_per_sec": (
                    stats.estimates_emitted / elapsed
                    if elapsed > 0.0 else 0.0)}

    baseline = max((baseline_once() for _ in range(repeats)),
                   key=lambda r: r["wall_estimates_per_sec"])
    fleets = []
    for shards in shard_counts:
        best = max((run_sharded(frames, database, shards,
                                transport=transport)
                    for _ in range(repeats)),
                   key=lambda r: r["wall_estimates_per_sec"])
        best["speedup_vs_single"] = (
            best["wall_estimates_per_sec"]
            / baseline["wall_estimates_per_sec"]
            if baseline["wall_estimates_per_sec"] > 0.0 else 0.0)
        fleets.append(best)
    import os
    return {
        "bench": "engine_throughput_sharded",
        "config": {
            "frames": len(frames),
            "devices": max(1, len(frames) // APS_PER_GAMMA),
            "patterns": pattern_count,
            "cache": "off",
            "sink": "null",
            "transport": transport,
            "repeats": repeats,
            # Scaling is bounded by the cores actually available: on a
            # single-core box the process fleet *cannot* beat the
            # single engine, and the committed numbers say so.
            "cpu_count": os.cpu_count(),
        },
        "single_engine": baseline,
        "sharded": fleets,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------

def test_engine_throughput_cache_speedup(benchmark, reporter):
    database = build_database()
    frames = build_stream(2000, pattern_count=12)

    cached = benchmark(lambda: run_engine(frames, database, 4096))
    uncached = run_engine(frames, database, 0)

    reporter("", "=== Engine throughput: Γ-set memoization ===",
             f"  frames            : {len(frames)}",
             f"  cache-on  est/s   : "
             f"{cached['wall_estimates_per_sec']:10.0f} "
             f"(hit rate {cached['cache_hit_rate']:.1%})",
             f"  cache-off est/s   : "
             f"{uncached['wall_estimates_per_sec']:10.0f}")
    assert cached["cache_hit_rate"] > 0.5
    assert cached["estimates_emitted"] == uncached["estimates_emitted"]
    reporter("Duplicate AP neighborhoods collapse to one disc"
             " intersection each.")


def test_engine_throughput_sharded_scaling(benchmark, reporter):
    """Fleet widths agree on the work done; speedup is hardware-bound."""
    scaling = benchmark(lambda: run_scaling(800, pattern_count=12,
                                            shard_counts=(1, 2),
                                            repeats=1,
                                            transport="thread"))
    single = scaling["single_engine"]
    lines = ["", "=== Engine throughput: sharded scaling ===",
             f"  single engine     : "
             f"{single['wall_estimates_per_sec']:10.0f} est/s"]
    for fleet in scaling["sharded"]:
        lines.append(f"  {fleet['shards']} shard fleet     : "
                     f"{fleet['wall_estimates_per_sec']:10.0f} est/s "
                     f"({fleet['speedup_vs_single']:.2f}x)")
        # Same workload, same answers: the fleet emits what the
        # single engine emits, whatever the width.
        assert (fleet["estimates_emitted"]
                == single["estimates_emitted"])
    reporter(*lines)


# ----------------------------------------------------------------------
# Standalone JSON mode (the tier-1 smoke invocation)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Streaming-engine throughput, cache on vs off")
    parser.add_argument("--frames", type=int, default=4000,
                        help="approximate stream length")
    parser.add_argument("--patterns", type=int, default=12,
                        help="distinct AP neighborhoods in the stream")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per mode (best is reported)")
    parser.add_argument("--sharded", action="store_true",
                        help="also run the sharded-service scaling "
                             "comparison (process transport, null "
                             "sink, cache off)")
    parser.add_argument("--shard-counts", default="1,2,4",
                        help="comma-separated fleet widths for "
                             "--sharded (default 1,2,4)")
    parser.add_argument("--transport", choices=("thread", "process"),
                        default="process",
                        help="shard transport for --sharded")
    parser.add_argument("--json", metavar="FILE",
                        help="write the comparison as JSON to FILE")
    args = parser.parse_args(argv)

    report = run_comparison(args.frames, args.patterns,
                            repeats=args.repeats)
    if args.sharded:
        counts = tuple(int(part) for part in
                       args.shard_counts.split(",") if part.strip())
        report["sharded"] = run_scaling(
            args.frames, args.patterns, shard_counts=counts,
            repeats=args.repeats, transport=args.transport)
    on, off = report["cache_on"], report["cache_off"]
    print(f"frames={report['config']['frames']} "
          f"devices={report['config']['devices']} "
          f"duplicate Γ fraction="
          f"{report['config']['duplicate_gamma_fraction']:.0%}")
    print(f"cache on : {on['wall_estimates_per_sec']:10.0f} est/s "
          f"(hit rate {on['cache_hit_rate']:.1%})")
    print(f"cache off: {off['wall_estimates_per_sec']:10.0f} est/s")
    print(f"speedup  : {report['speedup']:.2f}x")
    if args.sharded:
        scaling = report["sharded"]
        single = scaling["single_engine"]
        print(f"--- sharded scaling ({scaling['config']['transport']} "
              f"transport, cache off, null sink) ---")
        print(f"single engine: "
              f"{single['wall_estimates_per_sec']:10.0f} est/s")
        for fleet in scaling["sharded"]:
            print(f"{fleet['shards']} shard(s)   : "
                  f"{fleet['wall_estimates_per_sec']:10.0f} est/s "
                  f"({fleet['speedup_vs_single']:.2f}x)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
