"""Ablation: what the LNA and splitter each contribute (Section III-A).

Paper claims quantified here:

* the LNA replaces the chain NF (NIC 4-6 dB) with its own 1.5 dB —
  "a noise figure improvement of 2.5 ~ 4.5 dB",
* "the low noise amplifier gain G_lna does not play a role" in the
  coverage bound — only the NF does,
* "with a 4-way splitter, each thread of signal ... still achieves
  45 - 10 log 4 = 39 dB of amplification",
* splitting *without* the LNA would instead add the splitter loss to
  the noise budget.
"""

from dataclasses import replace

from repro.radio.chain import ReceiverChain
from repro.radio.components import catalog
from repro.radio.link_budget import LinkBudget, Transmitter
from repro.sniffer.receiver import build_hg2415u_chain, build_marauder_chain



TX = Transmitter(power_dbm=15.0)


def test_ablation_lna_contribution(benchmark, reporter):
    parts = catalog()

    def build_variants():
        no_lna = build_hg2415u_chain()
        full = build_marauder_chain()
        split_no_lna = ReceiverChain(
            antenna=parts["HG2415U"], nic=parts["SRC"],
            blocks=[parts["4-way-splitter"]], name="split-no-LNA")
        # Same LNA noise figure but only 20 dB gain: NF barely moves,
        # showing the gain itself is not what buys coverage.
        weak_lna = ReceiverChain(
            antenna=parts["HG2415U"], nic=parts["SRC"],
            blocks=[replace(parts["RF-Lambda-LNA"], gain_db=20.0),
                    parts["4-way-splitter"]],
            name="weak-gain-LNA")
        return [no_lna, full, split_no_lna, weak_lna]

    chains = benchmark(build_variants)
    no_lna, full, split_no_lna, weak_lna = chains

    reporter("", "=== Ablation: LNA / splitter contributions ===",
           f"{'chain':14s} {'NF dB':>7s} {'pre-NIC dB':>11s}"
           f" {'radius m':>9s}")
    for chain in chains:
        budget = LinkBudget(TX, chain)
        reporter(f"{chain.name:14s} {chain.noise_figure_db:7.2f}"
               f" {chain.pre_nic_gain_db:11.1f}"
               f" {budget.coverage_radius_m():9.0f}")

    # NF improvement in the paper's 2.5-4.5 dB window.
    improvement = no_lna.noise_figure_db - full.noise_figure_db
    assert 2.0 <= improvement <= 4.5
    # The splitter without an LNA *degrades* the noise budget.
    assert split_no_lna.noise_figure_db > no_lna.noise_figure_db
    # A weak-gain LNA yields nearly the same coverage as the 45 dB one:
    # the coverage bound depends on the LNA's NF, not its gain.
    full_radius = LinkBudget(TX, full).coverage_radius_m()
    weak_radius = LinkBudget(TX, weak_lna).coverage_radius_m()
    assert abs(full_radius - weak_radius) / full_radius < 0.05
    # The 39 dB post-splitter amplification claim (0.5 dB excess loss).
    assert 38.0 <= full.pre_nic_gain_db <= 39.5
    reporter("Paper: LNA's NF (not gain) buys 2.5-4.5 dB; splitter costs"
           " ~6 dB which the 45 dB LNA absorbs (39 dB net).")
