"""Localization kernel throughput: scalar vs vectorized vs parallel.

The M-Loc hot loop is pairwise circle intersection + containment
filtering.  This bench times three implementations of the same batch of
Γ-set localizations:

* ``scalar``   — the reference per-pair Python path
  (``set_kernel_default(False)``, sequential ``locate`` calls);
* ``kernel``   — the batched NumPy kernels behind ``locate_batch``;
* ``parallel`` — ``locate_batch`` fanned across a ProcessPoolExecutor.

Sweeps k (discs per Γ) × batch size, reporting disc sets/sec per
implementation.  Run standalone for the JSON report (the tier-1 smoke
test does)::

    PYTHONPATH=src python benchmarks/bench_localization_kernels.py \
        --ks 3,6,10 --batches 1,64,1024 --json out.json

or under pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import FrozenSet, List

import numpy as np

from repro.geometry.point import Point
from repro.geometry.region import set_kernel_default
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.localization import MLoc
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid

#: Each cluster holds enough APs for the largest k; clusters are far
#: apart so a Γ never mixes clusters.  "Easy" clusters pack their APs
#: tightly (jitter << range) so every disc overlaps every other; "hard"
#: clusters spread them wide so the raw intersection is empty and M-Loc
#: runs its ~40-iteration feasibility bisection — the path the paper's
#: noisy-knowledge cases hit, and where most of M-Loc's time goes.
CLUSTER_SIZE = 10
CLUSTER_SPACING_M = 5000.0
EASY_JITTER_M = 60.0
HARD_JITTER_M = 400.0
RANGE_M = 150.0
#: Fraction of Γ sets drawn from hard clusters (deterministic, every
#: 1/fraction-th gamma).
DEFAULT_HARD_FRACTION = 0.25

DEFAULT_KS = (3, 6, 10)
DEFAULT_BATCHES = (1, 64, 1024)


def _ap_bssid(bank: int, cluster: int, ap: int, clusters: int) -> MacAddress:
    index = (bank * clusters + cluster) * CLUSTER_SIZE + ap
    return MacAddress(0x001B63000000 + index)


def build_database(clusters: int, seed: int = 20090622) -> ApDatabase:
    rng = np.random.default_rng(seed)
    records = []
    for bank, jitter in enumerate((EASY_JITTER_M, HARD_JITTER_M)):
        for c in range(clusters):
            cx = c * CLUSTER_SPACING_M
            cy = bank * (clusters * CLUSTER_SPACING_M)
            for a in range(CLUSTER_SIZE):
                bssid = _ap_bssid(bank, c, a, clusters)
                records.append(ApRecord(
                    bssid=bssid,
                    ssid=Ssid(f"bench-ap-{bssid.value:x}"),
                    location=Point(
                        cx + float(rng.uniform(-jitter, jitter)),
                        cy + float(rng.uniform(-jitter, jitter))),
                    max_range_m=RANGE_M + float(rng.uniform(0.0, 40.0)),
                    channel=6))
    return ApDatabase(records)


def build_gammas(k: int, batch: int, clusters: int, seed: int = 7,
                 hard_fraction: float = DEFAULT_HARD_FRACTION
                 ) -> List[FrozenSet[MacAddress]]:
    """``batch`` Γ sets of exactly ``k`` APs, spread over the clusters.

    Every ``round(1 / hard_fraction)``-th Γ comes from a hard cluster
    (empty raw intersection, feasibility bisection required); the rest
    come from easy clusters.
    """
    rng = np.random.default_rng(seed + k)
    stride = int(round(1.0 / hard_fraction)) if hard_fraction > 0.0 else 0
    gammas = []
    for i in range(batch):
        bank = 1 if stride and i % stride == stride - 1 else 0
        cluster = i % clusters
        members = rng.choice(CLUSTER_SIZE, size=k, replace=False)
        gammas.append(frozenset(
            _ap_bssid(bank, cluster, int(m), clusters) for m in members))
    return gammas


def _time_sets_per_sec(run, batch: int, repeats: int) -> float:
    """Best-of-N throughput; small batches loop to beat timer noise."""
    iters = max(1, 512 // max(1, batch))
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            run()
        elapsed = time.perf_counter() - start
        if elapsed > 0.0:
            best = max(best, batch * iters / elapsed)
    return best


def run_cell(localizer: MLoc, gammas: List[FrozenSet[MacAddress]],
             executor, repeats: int) -> dict:
    """Time the three implementations over one (k, batch) workload."""
    batch = len(gammas)

    def scalar():
        previous = set_kernel_default(False)
        try:
            for gamma in gammas:
                localizer.locate(gamma)
        finally:
            set_kernel_default(previous)

    def kernel():
        localizer.locate_batch(gammas)

    def parallel():
        localizer.locate_batch(gammas, executor=executor)

    scalar_rate = _time_sets_per_sec(scalar, batch, repeats)
    kernel_rate = _time_sets_per_sec(kernel, batch, repeats)
    parallel_rate = (_time_sets_per_sec(parallel, batch, repeats)
                     if executor is not None else None)
    cell = {
        "scalar_sets_per_sec": scalar_rate,
        "kernel_sets_per_sec": kernel_rate,
        "kernel_speedup": (kernel_rate / scalar_rate
                           if scalar_rate > 0.0 else 0.0),
    }
    if parallel_rate is not None:
        cell["parallel_sets_per_sec"] = parallel_rate
        cell["parallel_speedup"] = (parallel_rate / scalar_rate
                                    if scalar_rate > 0.0 else 0.0)
    return cell


def run_sweep(ks, batches, repeats: int = 3, workers: int = 4,
              clusters: int = 64,
              hard_fraction: float = DEFAULT_HARD_FRACTION) -> dict:
    database = build_database(clusters)
    localizer = MLoc(database)
    executor = (ProcessPoolExecutor(max_workers=workers)
                if workers > 1 else None)
    results = []
    try:
        for k in ks:
            if k > CLUSTER_SIZE:
                raise ValueError(f"k={k} exceeds cluster size "
                                 f"{CLUSTER_SIZE}")
            for batch in batches:
                gammas = build_gammas(k, batch, clusters,
                                      hard_fraction=hard_fraction)
                cell = run_cell(localizer, gammas, executor, repeats)
                cell.update({"k": k, "batch": batch})
                results.append(cell)
    finally:
        if executor is not None:
            executor.shutdown()
    # The acceptance cell: the largest workload in the sweep.
    acceptance = max(results, key=lambda c: (c["k"], c["batch"]))
    return {
        "bench": "localization_kernels",
        "config": {
            "ks": list(ks),
            "batches": list(batches),
            "repeats": repeats,
            "workers": workers,
            "clusters": clusters,
            "hard_fraction": hard_fraction,
            # Parallel rows only mean something when the host can
            # actually run the workers side by side.
            "cpus": os.cpu_count(),
        },
        "results": results,
        "acceptance": {
            "k": acceptance["k"],
            "batch": acceptance["batch"],
            "kernel_speedup": acceptance["kernel_speedup"],
            "parallel_speedup": acceptance.get("parallel_speedup"),
        },
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------

def test_localization_kernel_speedup(benchmark, reporter):
    database = build_database(clusters=16)
    localizer = MLoc(database)
    gammas = build_gammas(10, 256, clusters=16)

    benchmark(lambda: localizer.locate_batch(gammas))

    report = run_sweep(ks=(10,), batches=(256,), repeats=2, workers=2,
                       clusters=16)
    cell = report["results"][0]
    reporter("", "=== Localization kernels: scalar vs vectorized ===",
             f"  k=10 batch=256 scalar : "
             f"{cell['scalar_sets_per_sec']:10.0f} sets/s",
             f"  k=10 batch=256 kernel : "
             f"{cell['kernel_sets_per_sec']:10.0f} sets/s "
             f"({cell['kernel_speedup']:.1f}x)")
    assert cell["kernel_speedup"] > 1.0
    reporter("Batched complex128 kernels amortize NumPy dispatch over"
             " the whole micro-batch.")


# ----------------------------------------------------------------------
# Standalone JSON mode (the tier-1 smoke invocation)
# ----------------------------------------------------------------------

def _int_list(text: str):
    return tuple(int(part) for part in text.split(",") if part)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Localization throughput: scalar vs kernel vs parallel")
    parser.add_argument("--ks", type=_int_list, default=DEFAULT_KS,
                        help="comma-separated discs-per-Γ sizes")
    parser.add_argument("--batches", type=_int_list,
                        default=DEFAULT_BATCHES,
                        help="comma-separated batch sizes")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per cell (best is reported)")
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool width for the parallel rows"
                             " (1 disables the parallel column)")
    parser.add_argument("--clusters", type=int, default=64,
                        help="AP clusters backing the synthetic Γ sets")
    parser.add_argument("--hard-fraction", type=float,
                        default=DEFAULT_HARD_FRACTION,
                        help="fraction of Γ sets with an empty raw"
                             " intersection (triggers the feasibility"
                             " bisection)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the sweep as JSON to FILE")
    args = parser.parse_args(argv)

    report = run_sweep(args.ks, args.batches, repeats=args.repeats,
                       workers=args.workers, clusters=args.clusters,
                       hard_fraction=args.hard_fraction)
    header = f"{'k':>3} {'batch':>6} {'scalar/s':>10} {'kernel/s':>10} "
    header += f"{'kx':>6}"
    if args.workers > 1:
        header += f" {'parallel/s':>11} {'px':>6}"
    print(header)
    for cell in report["results"]:
        line = (f"{cell['k']:>3} {cell['batch']:>6} "
                f"{cell['scalar_sets_per_sec']:>10.0f} "
                f"{cell['kernel_sets_per_sec']:>10.0f} "
                f"{cell['kernel_speedup']:>5.1f}x")
        if "parallel_sets_per_sec" in cell:
            line += (f" {cell['parallel_sets_per_sec']:>11.0f} "
                     f"{cell['parallel_speedup']:>5.1f}x")
        print(line)
    acceptance = report["acceptance"]
    print(f"acceptance cell k={acceptance['k']} "
          f"batch={acceptance['batch']}: "
          f"kernel speedup {acceptance['kernel_speedup']:.2f}x")
    cpus = report["config"]["cpus"]
    if args.workers > 1 and cpus is not None and cpus < args.workers:
        print(f"note: host has {cpus} CPU(s) < {args.workers} workers —"
              f" the parallel column measures IPC overhead, not scaling")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
