"""Figure 17: AP-Loc average error vs. number of training tuples.

Paper: "AP-Loc achieves much better accuracy than the Centroid approach
even when the number of training tuples is fairly small.  For example,
given 19 training tuples, AP-Loc can achieve an average error of only
12.21 meters."  The error falls as the wardriving route densifies.
"""

import numpy as np

from repro.analysis.experiments import run_localization_experiment
from repro.knowledge.wardrive import Wardriver
from repro.localization import APLoc, CentroidLocalizer
from repro.sim.mobility import grid_route



#: Our campus is far denser than the paper's neighborhood (420 APs with
#: 25-60 m ranges), so the sweep extends past the paper's 19 tuples; the
#: 19-tuple point is still reported for the paper comparison.
TUPLE_COUNTS = (19, 63, 120, 208)
#: Training sweeps extend past the AP area so every AP is surrounded by
#: observing tuples (otherwise disc-intersection placement is biased).
ROUTE_MARGIN_M = 40.0


def _route(tuple_count, area_m):
    rows = max(2, int(np.sqrt(tuple_count)))
    per_row = max(2, int(np.ceil(tuple_count / rows)))
    return grid_route(-ROUTE_MARGIN_M, -ROUTE_MARGIN_M,
                      area_m + ROUTE_MARGIN_M, area_m + ROUTE_MARGIN_M,
                      rows, per_row)[:tuple_count]


def test_fig17_aploc_vs_training_tuples(benchmark, campus_experiment, reporter):
    exp = campus_experiment
    oracle = exp.truth_db.observable_from
    wardriver = Wardriver(oracle)

    def evaluate(tuple_count):
        training = wardriver.collect(_route(tuple_count, exp.area_m))
        # Region mode (exact intersection centroid) is the robust M-Loc
        # variant; with estimated AP positions its stability matters.
        aploc = APLoc(training, training_radius_m=exp.r_max,
                      r_max=exp.r_max, solver="scipy",
                      min_evidence=exp.aprad_min_evidence,
                      overestimate_factor=exp.aprad_overestimate,
                      mloc_mode="region")
        aploc.fit(exp.corpus)
        rep = run_localization_experiment({"ap-loc": aploc},
                                          exp.cases)["ap-loc"]
        mean = rep.mean_error() if rep.results else float("nan")
        return mean, rep.skipped

    def sweep():
        return {count: evaluate(count) for count in TUPLE_COUNTS}

    results = benchmark(sweep)

    centroid = run_localization_experiment(
        {"centroid": CentroidLocalizer(exp.location_db)},
        exp.cases)["centroid"].mean_error()

    reporter("", "=== Fig 17: AP-Loc error vs #training tuples ===",
           f"{'tuples':>7s} {'mean error':>11s} {'unlocatable':>12s}")
    for count in TUPLE_COUNTS:
        mean, skipped = results[count]
        reporter(f"{count:7d} {mean:9.1f} m {skipped:12d}")
    reporter(f"  Centroid baseline: {centroid:.1f} m"
           f"  (paper: AP-Loc 12.21 m at 19 tuples, beating Centroid"
           f" 17.28 m)")

    errors = [results[count][0] for count in TUPLE_COUNTS]
    # Error decreases as training densifies.
    assert errors[-1] < errors[0]
    # With a moderately dense sweep, AP-Loc beats the Centroid baseline
    # despite starting from zero AP knowledge.
    assert errors[-1] < centroid
