"""Figure 4: disc-intersection vs. Centroid under biased AP placement.

Paper: 5 APs uniform plus 10 APs clustered in a small gray area — "the
estimation of centroid approach given A1..A10 is much less accurate than
given A1..A5 only ... our approach can only become more accurate when
the number of base stations increases because the intersected area can
only shrink instead of grow."
"""

import numpy as np

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.localization import CentroidLocalizer, MLoc
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.numerics.rng import make_rng



TRIALS = 60


def _record(index, x, y, radius):
    return ApRecord(bssid=MacAddress(index + 1), ssid=Ssid(f"a{index}"),
                    location=Point(x, y), max_range_m=radius)


def _one_trial(rng):
    """Returns (centroid_uniform, centroid_biased, mloc_uniform,
    mloc_biased) errors for one random Fig-4 layout."""
    truth = Point(0.0, 0.0)
    records = []
    # 5 APs uniform around the mobile, each covering it.
    for i in range(5):
        angle = rng.uniform(0.0, 2.0 * np.pi)
        distance = rng.uniform(20.0, 70.0)
        records.append(_record(i, distance * np.cos(angle),
                               distance * np.sin(angle), 90.0))
    uniform_db = ApDatabase(records)
    # 10 more APs clustered in a small area off to one side, with big
    # enough radii to still cover the mobile.
    clustered = list(records)
    for i in range(10):
        x = rng.normal(95.0, 8.0)
        y = rng.normal(95.0, 8.0)
        clustered.append(_record(5 + i, x, y, 180.0))
    biased_db = ApDatabase(clustered)

    centroid_uniform = CentroidLocalizer(uniform_db).locate(
        uniform_db.bssids).error_to(truth)
    centroid_biased = CentroidLocalizer(biased_db).locate(
        biased_db.bssids).error_to(truth)
    mloc_uniform = MLoc(uniform_db).locate(uniform_db.bssids)
    mloc_biased = MLoc(biased_db).locate(biased_db.bssids)
    return (centroid_uniform, centroid_biased,
            mloc_uniform.error_to(truth), mloc_biased.error_to(truth),
            mloc_uniform.area_m2, mloc_biased.area_m2)


def test_fig04_biased_distribution(benchmark, reporter):
    def run_all():
        rng = make_rng(4)
        return np.array([_one_trial(rng) for _ in range(TRIALS)])

    results = benchmark(run_all)
    means = results.mean(axis=0)
    (centroid_uniform, centroid_biased, mloc_uniform, mloc_biased,
     area_uniform, area_biased) = means

    reporter("", "=== Fig 4: biased AP distribution (mean of"
           f" {TRIALS} layouts) ===",
           f"{'':12s} {'5 uniform APs':>14s} {'+10 clustered':>14s}",
           f"{'Centroid':12s} {centroid_uniform:12.1f} m "
           f"{centroid_biased:12.1f} m",
           f"{'M-Loc':12s} {mloc_uniform:12.1f} m {mloc_biased:12.1f} m",
           f"{'M-Loc area':12s} {area_uniform:10.0f} m2 "
           f"{area_biased:10.0f} m2")

    # The paper's claims: bias hurts Centroid badly, while the
    # disc-intersection area can only shrink.
    assert centroid_biased > 1.5 * centroid_uniform
    assert mloc_biased < centroid_biased
    assert area_biased <= area_uniform
    reporter("Paper: clustered APs drag the Centroid estimate away; the"
           " intersected area only shrinks.")
