"""Ablation: the active (deauth) attack vs. passive monitoring.

Paper: "such percentage can be further improved by the active attack" —
probing coverage with and without spoofed deauthentications, on both
the 7-day population model and the live event-loop world.
"""

import numpy as np

from repro.geometry.point import Point
from repro.net80211.mac import MacAddress
from repro.net80211.station import PROFILES, MobileStation
from repro.numerics.rng import make_rng
from repro.sim import build_attack_scenario
from repro.sim.population import PopulationConfig, simulate_week
from repro.sniffer.active import ActiveAttacker




def test_ablation_week_with_active_attack(benchmark, reporter):
    config = PopulationConfig()

    def both():
        passive = simulate_week(config, make_rng(2008))
        active = simulate_week(config, make_rng(2008), active_attack=True)
        return passive, active

    passive, active = benchmark(both)
    passive_mean = np.mean([d.probing_percentage for d in passive])
    active_mean = np.mean([d.probing_percentage for d in active])

    reporter("", "=== Ablation: active attack, 7-day population ===",
           f"  passive probing coverage : {passive_mean:5.1f}%",
           f"  active probing coverage  : {active_mean:5.1f}%")
    assert active_mean > passive_mean + 5.0
    assert all(a.probing_mobiles >= p.probing_mobiles
               for a, p in zip(active, passive))


def test_ablation_live_world_deauth(benchmark, reporter):
    def run_world(arm):
        scenario = build_attack_scenario(seed=41, ap_count=50,
                                         area_m=400.0, bystander_count=4)
        world = scenario.world
        # Add passive victims associated to their nearest APs.
        rng = make_rng(77)
        silent = []
        for i in range(5):
            station = MobileStation(
                mac=MacAddress.random(rng),
                position=Point(float(rng.uniform(100, 300)),
                               float(rng.uniform(100, 300))),
                profile=PROFILES["passive"])
            nearest = min(scenario.access_points,
                          key=lambda ap: ap.position.distance_to(
                              station.position))
            station.associate(nearest.bssid)
            world.add_station(station)
            silent.append(station)
        if arm:
            world.arm_attacker(
                ActiveAttacker(position=world.sniffer.position),
                interval_s=30.0)
        world.run(duration_s=120.0)
        probing = world.sniffer.store.probing_mobiles
        return sum(1 for s in silent if s.mac in probing)

    flushed_active = benchmark(lambda: run_world(arm=True))
    flushed_passive = run_world(arm=False)

    reporter("", "=== Ablation: live-world deauth attack ===",
           f"  silent victims made to probe (passive) : "
           f"{flushed_passive}/5",
           f"  silent victims made to probe (active)  : "
           f"{flushed_active}/5")
    assert flushed_passive == 0
    assert flushed_active >= 3
    reporter("Paper: the active attack makes otherwise-silent devices"
           " observable.")
