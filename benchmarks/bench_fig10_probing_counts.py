"""Figure 10: found vs. probing mobiles per day over the 7-day study.

Paper (Oct 24-30, 2008, UML office): "There are more mobiles in
weekdays than in weekends ... students bring their mobile laptops to
school in weekdays."
"""

import numpy as np

from repro.numerics.rng import make_rng
from repro.sim.population import (
    PopulationConfig,
    simulate_week,
    weekly_summary,
)




def test_fig10_daily_mobile_counts(benchmark, reporter):
    week = benchmark(
        lambda: simulate_week(PopulationConfig(), make_rng(2008)))

    reporter("", "=== Fig 10: mobiles found / probing per day ===",
           f"{'day':8s} {'dow':4s} {'found':>6s} {'probing':>8s}")
    for day in week:
        reporter(f"{day.label:8s} {day.weekday:4s} {day.found_mobiles:6d}"
               f" {day.probing_mobiles:8d}")

    summary = weekly_summary(week)
    reporter(f"  mean weekday mobiles: {summary['mean_weekday_mobiles']:.1f}"
           f"   mean weekend mobiles: {summary['mean_weekend_mobiles']:.1f}")
    assert (summary["mean_weekday_mobiles"]
            > 2.0 * summary["mean_weekend_mobiles"])
    reporter("Paper: clearly more mobiles on weekdays (campus office).")
