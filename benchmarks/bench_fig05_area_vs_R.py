"""Figure 5: intersected area vs. estimated radius R >= r (k=10, r=1).

Paper (Theorem 3): "when r' > r, the expected size of the intersected
area grows rapidly with r'.  Thus, a theoretical upper bound also does
not suffice for the estimation."
"""

from repro.numerics.rng import make_rng
from repro.theory.theorem3 import (
    expected_area_overestimate,
    monte_carlo_overestimate,
)



K = 10
R_VALUES = (1.0, 1.1, 1.2, 1.3, 1.4, 1.6, 1.8, 2.0)


def test_fig05_area_vs_estimated_radius(benchmark, reporter):
    curve = benchmark(
        lambda: [expected_area_overestimate(K, 1.0, big_r)
                 for big_r in R_VALUES])

    rng = make_rng(5)
    reporter("", f"=== Fig 5: intersected area vs R (k={K}, r=1) ===",
           f"{'R':>5s} {'CA (Theorem 3)':>15s} {'Monte Carlo':>14s}")
    for big_r, value in zip(R_VALUES, curve):
        if big_r in (1.2, 1.6):
            mc, stderr, _ = monte_carlo_overestimate(K, 1.0, big_r, rng,
                                                     trials=200)
            reporter(f"{big_r:5.2f} {value:15.4f} {mc:10.4f}±{stderr:.4f}")
        else:
            reporter(f"{big_r:5.2f} {value:15.4f}")

    assert all(a < b for a, b in zip(curve, curve[1:]))
    assert curve[-1] > 5.0 * curve[0]  # "grows rapidly"
    reporter("Paper: area grows rapidly with the overestimate R"
           " (a loose upper bound is costly).")
