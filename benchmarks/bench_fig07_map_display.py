"""Figure 7: the digital Marauder's-map display.

Paper: "a simple web interface is then used to display the locations of
all mobile devices in the monitored area ... the location of APs, the
real mobile location in red tags and estimated mobile location in blue
tags."  We run the live attack and regenerate the display as a
self-contained HTML page (Google Maps replaced by an offline SVG map).
"""

from repro.display import MapRenderer, render_html_map
from repro.localization import MLoc
from repro.sim import build_attack_scenario




def _build_map(tmp_path):
    scenario = build_attack_scenario(seed=7, ap_count=60, area_m=500.0,
                                     bystander_count=8)
    scenario.world.run(duration_s=150.0)
    store = scenario.world.sniffer.store
    renderer = MapRenderer(width_m=500.0, height_m=500.0)
    for record in scenario.truth_db:
        renderer.add_access_point(record.location, label=str(record.ssid))
    renderer.add_sniffer(scenario.world.sniffer.position)
    mloc = MLoc(scenario.truth_db)
    located = 0
    for mobile in store.seen_mobiles:
        gamma = store.gamma(mobile, at_time=scenario.world.now)
        if not gamma:
            continue
        estimate = mloc.locate(gamma)
        if estimate is None:
            continue
        renderer.add_estimate(estimate.position, label=str(mobile))
        located += 1
    for station in scenario.world.stations:
        renderer.add_true_position(station.position)
    page = render_html_map(renderer,
                           caption=f"{located} mobiles located",
                           output_path=tmp_path / "marauders_map.html")
    return located, page


def test_fig07_map_display(benchmark, tmp_path, reporter):
    located, page = benchmark(lambda: _build_map(tmp_path))

    reporter("", "=== Fig 7: the digital Marauder's map display ===",
           f"  mobiles located and tagged : {located}",
           f"  page size                  : {len(page)} bytes",
           "  red tags (true) and blue tags (estimated) rendered, AP"
           " dots overlaid — the paper's Google-Maps view, offline.")
    assert located >= 3
    assert "real mobile" in page
    assert page.count("<circle") > 60  # AP dots + tag heads
