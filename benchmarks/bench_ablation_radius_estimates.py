"""Ablation: fixed over/underestimated radii vs. the LP estimation.

Paper Section III-C2: "A simple approach is to set the maximum
transmission distance to a pre-determined value ... if the value is set
too high, the intersected area may become extremely large.  If the
value is set too low, the mobile device's real location might not be
covered."  The LP sits between the two failure modes.
"""

from repro.analysis.experiments import run_localization_experiment
from repro.localization import MLoc




def _fixed_radius_localizer(exp, radius):
    db = exp.location_db
    localizer = MLoc(db, fallback_range_m=radius)
    localizer.name = f"fixed-{radius:.0f}m"
    return localizer


def test_ablation_fixed_vs_lp_radii(benchmark, campus_experiment,
                                    campus_reports, reporter):
    exp = campus_experiment
    true_mean = sum(r.max_range_m for r in exp.truth_db) / len(exp.truth_db)

    def run():
        localizers = {
            "under (0.5x)": _fixed_radius_localizer(exp, 0.5 * true_mean),
            "exact-mean": _fixed_radius_localizer(exp, true_mean),
            "over (2.0x)": _fixed_radius_localizer(exp, 2.0 * true_mean),
        }
        return run_localization_experiment(localizers, exp.cases)

    fixed_reports = benchmark(run)
    lp_report = campus_reports["ap-rad"]

    reporter("", "=== Ablation: radius choices (location-only knowledge)"
           " ===",
           f"{'radii':14s} {'mean err':>9s} {'area':>9s}"
           f" {'coverage':>9s}")
    rows = list(fixed_reports.items()) + [("LP (AP-Rad)", lp_report)]
    for name, rep in rows:
        reporter(f"{name:14s} {rep.mean_error():7.1f} m"
               f" {rep.mean_area_vs_min_k(1):7.0f} m2"
               f" {rep.coverage_probability_vs_min_k(1):9.2f}")

    under = fixed_reports["under (0.5x)"]
    over = fixed_reports["over (2.0x)"]
    # Underestimates destroy coverage (Theorem 3's p = (R/r)^2k).
    assert (under.coverage_probability_vs_min_k(1)
            < 0.5 * lp_report.coverage_probability_vs_min_k(1))
    # Overestimates blow up the intersected area.
    assert (over.mean_area_vs_min_k(1)
            > 2.0 * lp_report.mean_area_vs_min_k(1))
    # The LP is at least as accurate as either fixed guess.
    assert lp_report.mean_error() <= min(under.mean_error(),
                                         over.mean_error()) + 1.0
    reporter("Paper: too low -> coverage collapses; too high -> huge"
           " areas; the LP threads the needle.")
