"""Figure 8: 802.11 channel distribution around the campus.

Paper: Kismet data from the UML north campus — "most APs (93.7%) use
Channels 1, 6 and 11.  So we chose to use three cards ... to monitor
these three channels."
"""

from repro.numerics.rng import make_rng
from repro.sim.campus import (
    CampusConfig,
    channel_histogram,
    generate_campus,
    non_overlapping_share,
)



AP_COUNT = 500


def test_fig08_channel_distribution(benchmark, reporter):
    def build():
        rng = make_rng(8)
        access_points, _ = generate_campus(
            CampusConfig(ap_count=AP_COUNT), rng)
        return access_points

    access_points = benchmark(build)
    histogram = channel_histogram(access_points)
    share = non_overlapping_share(access_points)

    reporter("", "=== Fig 8: channel distribution"
           f" ({AP_COUNT} simulated campus APs) ===")
    peak = max(histogram.values())
    for channel in range(1, 12):
        count = histogram.get(channel, 0)
        bar = "#" * max(1, int(40 * count / peak)) if count else ""
        reporter(f"  ch {channel:2d}: {count:4d} {bar}")
    reporter(f"  share on channels 1/6/11: {100 * share:.1f}%"
           f"  (paper: 93.7%)")

    assert 0.90 <= share <= 0.97
    assert histogram[6] == peak  # channel 6 dominates, as measured
