"""Figure 3: intersected area vs. maximum transmission distance.

Paper (Corollary 1): at fixed AP density, the intersected area
*decreases* as the maximum transmission range r grows — "the
disc-intersection approach ... generates a smaller estimated area when
the transmission range [increases]" (more APs become communicable and
each adds a constraint).
"""

from repro.theory.theorem2 import expected_area_at_density



DENSITY = 2.0  # APs per unit area
RADII = (0.6, 0.8, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0)


def test_fig03_area_vs_radius(benchmark, reporter):
    curve = benchmark(
        lambda: [expected_area_at_density(DENSITY, r) for r in RADII])

    reporter("", f"=== Fig 3: intersected area vs r (density {DENSITY}) ===",
           f"{'r':>5s} {'expected k':>11s} {'CA':>10s}")
    import math
    for r, value in zip(RADII, curve):
        expected_k = math.pi * r * r * DENSITY
        reporter(f"{r:5.2f} {expected_k:11.1f} {value:10.4f}")

    assert all(a > b for a, b in zip(curve, curve[1:]))
    reporter("Paper: CA monotonically decreasing in r at fixed density"
           " (Corollary 1).")


def test_fig03_area_vs_density(benchmark, reporter):
    densities = (0.5, 1.0, 2.0, 4.0, 8.0)
    curve = benchmark(
        lambda: [expected_area_at_density(d, 1.0) for d in densities])
    reporter("", "=== Fig 3 companion: CA vs density (r = 1) ===")
    for density, value in zip(densities, curve):
        reporter(f"  density={density:4.1f}  CA={value:8.4f}")
    assert all(a > b for a, b in zip(curve, curve[1:]))
