"""Figure 2: expected intersected area vs. number of communicable APs.

Paper: Theorem 2 evaluated numerically for r = 1; "the intersected area
is roughly inversely proportional with the number of communicable APs."
We regenerate the curve from our quadrature and validate three points
against Monte-Carlo simulation of the actual disc geometry.
"""

import numpy as np

from repro.numerics.rng import make_rng
from repro.theory.theorem2 import (
    expected_intersected_area,
    monte_carlo_intersected_area,
)




def test_fig02_expected_area_curve(benchmark, reporter):
    curve = benchmark(
        lambda: [expected_intersected_area(k, 1.0) for k in range(1, 21)])

    rng = make_rng(2)
    reporter("", "=== Fig 2: intersected area vs k (r = 1) ===",
           f"{'k':>3s} {'CA (Theorem 2)':>15s} {'Monte Carlo':>14s}")
    mc_points = {2, 5, 10, 15}
    for k, value in zip(range(1, 21), curve):
        if k in mc_points:
            mc, stderr = monte_carlo_intersected_area(k, 1.0, rng,
                                                      trials=300)
            reporter(f"{k:3d} {value:15.4f} {mc:10.4f}±{stderr:.4f}")
        else:
            reporter(f"{k:3d} {value:15.4f}")

    # Shape checks (the paper's reading of the figure).
    assert abs(curve[0] - np.pi) < 1e-6  # k=1: the full disc
    assert all(a > b for a, b in zip(curve, curve[1:]))  # monotone
    assert curve[9] < 0.15  # k=10 area is a small fraction of the disc
    reporter("Paper: curve monotonically decreasing, ~1/k shape;"
           " k=1 gives the full disc pi*r^2.")
