"""Ablation: disc-intersection vs. the Nearest/Closest-AP baseline.

Paper: "as long as the APs' locations and maximum transmission
distances are accurate ... the disc-intersection approach always
outperforms the nearest AP approach unless k = 1, when both approaches
are essentially the same."
"""

from repro.analysis.experiments import run_localization_experiment
from repro.localization import MLoc, NearestApLocalizer




def test_ablation_nearest_ap(benchmark, campus_experiment, reporter):
    exp = campus_experiment

    def run():
        localizers = {
            "m-loc": MLoc(exp.mloc_db),
            "nearest-ap": NearestApLocalizer(exp.mloc_db),
        }
        return run_localization_experiment(localizers, exp.cases)

    reports = benchmark(run)

    mloc = reports["m-loc"]
    nearest = reports["nearest-ap"]
    reporter("", "=== Ablation: disc-intersection vs nearest AP ===",
           f"{'':12s} {'mean err':>9s} {'area@k>=2':>11s}")
    reporter(f"{'m-loc':12s} {mloc.mean_error():7.1f} m"
           f" {mloc.mean_area_vs_min_k(2):9.0f} m2")
    reporter(f"{'nearest-ap':12s} {nearest.mean_error():7.1f} m"
           f" {nearest.mean_area_vs_min_k(2):9.0f} m2")

    assert mloc.mean_error() < nearest.mean_error()
    # The intersected region is far tighter than one coverage disc.
    assert mloc.mean_area_vs_min_k(2) < 0.5 * nearest.mean_area_vs_min_k(2)

    # And at k = 1 the two coincide (checked per-case).
    singles = [case for case in exp.cases if len(case.observed) == 1]
    for case in singles:
        a = MLoc(exp.mloc_db).locate(case.observed)
        b = NearestApLocalizer(exp.mloc_db).locate(case.observed)
        assert a.position.distance_to(b.position) < 1e-9
    reporter(f"  k=1 cases where both coincide: {len(singles)}"
           " (paper: 'essentially the same' at k=1)")
