"""Bus transport throughput: in-process queues vs mp queues vs TCP.

The SocketBus buys network reach with framing, CRC, credits, and
heartbeats on every message — this bench prices that overhead against
the queue transports so the transport choice is a measured trade, not
a guess.  Three sections:

* **raw** — messages/sec through the bare Bus seam (publish →
  endpoint.get → credit) per transport, one producer, one consumer;
* **fleet** — ShardedEngine frames/sec over the thread vs the socket
  transport on the same synthetic stream, with an output-identity
  assertion between the two;
* **gateway** — frames/sec streaming a capture through the TCP ingest
  gateway (:func:`stream_capture_to`) into a fleet, against the same
  fleet ingesting the file locally, again output-identical.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_service_bus.py \
        --messages 20000 --frames 4000 --json BENCH_service_bus.json
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Iterator, List

from repro.capture import make_capture_writer
from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.localization import MLoc
from repro.net80211.frames import probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.service import (FrameIngestServer, MpQueueBus, QueueBus,
                           ShardConfig, ShardedEngine, SocketBus,
                           stream_capture_to)

AP_GRID = 4             # 16 APs on an 80 m lattice
AP_BASE = 0x001B63000000
MOBILE_BASE = 0x020000000000
MOBILE_COUNT = 24
BUS_CAPACITY = 256


def build_database() -> ApDatabase:
    return ApDatabase(
        ApRecord(bssid=MacAddress(AP_BASE + i), ssid=Ssid("campus"),
                 location=Point((i % AP_GRID) * 80.0,
                                (i // AP_GRID) * 80.0),
                 max_range_m=120.0)
        for i in range(AP_GRID * AP_GRID))


def generate_stream(frames: int) -> Iterator[ReceivedFrame]:
    """Mobiles cycling through the AP lattice, several sightings each."""
    for index in range(frames):
        ts = index * 0.02
        mobile = MacAddress(MOBILE_BASE + index % MOBILE_COUNT)
        ap = MacAddress(AP_BASE + (index // MOBILE_COUNT)
                        % (AP_GRID * AP_GRID))
        frame = probe_response(ap, mobile, 6, ts, ssid=Ssid("campus"))
        yield ReceivedFrame(frame, rssi_dbm=-60.0 - index % 15,
                            snr_db=20.0, rx_channel=6, rx_timestamp=ts)


# ----------------------------------------------------------------------
# Section 1: the raw Bus seam
# ----------------------------------------------------------------------

def make_bus(transport: str):
    if transport == "thread":
        return QueueBus(1, capacity=BUS_CAPACITY)
    if transport == "process":
        return MpQueueBus(1, capacity=BUS_CAPACITY)
    return SocketBus(1, capacity=BUS_CAPACITY)


def bench_raw(transport: str, messages: int, repeats: int) -> dict:
    payload = ("frames", [float(i) for i in range(8)])
    best = None
    for _ in range(repeats):
        bus = make_bus(transport)
        inbox, _ = bus.endpoints(0)
        done = threading.Event()

        def consume():
            for _ in range(messages):
                inbox.get(timeout=60.0)
            done.set()

        consumer = threading.Thread(target=consume, daemon=True)
        start = time.perf_counter()
        consumer.start()
        for _ in range(messages):
            bus.publish(0, payload, timeout=60.0)
        if not done.wait(timeout=120.0):
            raise RuntimeError(f"{transport} consumer never finished")
        wall = time.perf_counter() - start
        consumer.join()
        close = getattr(inbox, "close", None)
        if close is not None:
            close()
        bus.close()
        best = wall if best is None else min(best, wall)
    return {
        "wall_s": best,
        "messages_per_sec": messages / best if best > 0.0 else 0.0,
    }


# ----------------------------------------------------------------------
# Section 2: fleet throughput per transport
# ----------------------------------------------------------------------

def fleet_fixes(engine: ShardedEngine) -> dict:
    return {str(mobile): (ts, estimate.position.x, estimate.position.y)
            for mobile, (ts, estimate) in engine.snapshot().items()}


def bench_fleet(transport: str, frames: List[ReceivedFrame],
                database: ApDatabase, shards: int) -> dict:
    engine = ShardedEngine(
        functools.partial(MLoc, database), shards=shards,
        transport=transport,
        config=ShardConfig(window_s=60.0, batch_size=32),
        publish_batch=64)
    try:
        start = time.perf_counter()
        stats = engine.run(iter(frames))
        wall = time.perf_counter() - start
        fixes = fleet_fixes(engine)
    finally:
        engine.stop()
    return {
        "wall_s": wall,
        "frames_per_sec": (stats.frames_ingested / wall
                           if wall > 0.0 else 0.0),
        "fixes": fixes,
    }


def run_fleet_section(frames: List[ReceivedFrame],
                      database: ApDatabase, shards: int) -> dict:
    thread = bench_fleet("thread", frames, database, shards)
    sock = bench_fleet("socket", frames, database, shards)
    identical = thread.pop("fixes") == sock.pop("fixes")
    return {
        "shards": shards,
        "thread": thread,
        "socket": sock,
        "socket_overhead": (thread["frames_per_sec"]
                            / sock["frames_per_sec"]
                            if sock["frames_per_sec"] > 0.0 else 0.0),
        "outputs_identical": identical,
    }


# ----------------------------------------------------------------------
# Section 3: the TCP ingest gateway vs local file ingest
# ----------------------------------------------------------------------

def run_gateway_section(frames: List[ReceivedFrame],
                        database: ApDatabase, shards: int,
                        workdir: str) -> dict:
    capture_path = Path(workdir) / "bench_service_bus.cap"
    with make_capture_writer(capture_path, format="columnar",
                             block_records=1024) as writer:
        for received in frames:
            writer.write(received)

    local = ShardedEngine(
        functools.partial(MLoc, database), shards=shards,
        config=ShardConfig(window_s=60.0, batch_size=32),
        publish_batch=64)
    try:
        start = time.perf_counter()
        stats = local.run(iter(frames))
        local_wall = time.perf_counter() - start
        local_fixes = fleet_fixes(local)
    finally:
        local.stop()

    remote = ShardedEngine(
        functools.partial(MLoc, database), shards=shards,
        config=ShardConfig(window_s=60.0, batch_size=32),
        publish_batch=64)
    try:
        with FrameIngestServer(remote) as gateway:
            start = time.perf_counter()
            ingest = stream_capture_to(capture_path, gateway.address,
                                       batch_records=128)
            remote_wall = time.perf_counter() - start
        remote_fixes = fleet_fixes(remote)
    finally:
        remote.stop()
    os.unlink(capture_path)
    return {
        "frames": stats.frames_ingested,
        "local": {
            "wall_s": local_wall,
            "frames_per_sec": (stats.frames_ingested / local_wall
                               if local_wall > 0.0 else 0.0),
        },
        "gateway": {
            "wall_s": remote_wall,
            "frames_per_sec": (ingest.frames / remote_wall
                               if remote_wall > 0.0 else 0.0),
            "batches": ingest.batches,
            "reconnects": ingest.reconnects,
        },
        "outputs_identical": local_fixes == remote_fixes,
    }


def run_bench(messages: int, frames: int, shards: int, repeats: int,
              workdir: str) -> dict:
    database = build_database()
    stream = list(generate_stream(frames))
    raw = {transport: bench_raw(transport, messages, repeats)
           for transport in ("thread", "process", "socket")}
    fleet = run_fleet_section(stream, database, shards)
    gateway = run_gateway_section(stream, database, shards, workdir)
    return {
        "bench": "service_bus",
        "config": {
            "messages": messages,
            "frames": frames,
            "shards": shards,
            "repeats": repeats,
            "bus_capacity": BUS_CAPACITY,
            # Throughput numbers are hardware-bound; record the cores
            # the committed run actually had.
            "cpu_count": os.cpu_count(),
        },
        "raw": raw,
        "fleet": fleet,
        "gateway": gateway,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------

def test_service_bus_transports(benchmark, reporter, tmp_path):
    report = benchmark(lambda: run_bench(
        messages=5000, frames=2000, shards=2, repeats=1,
        workdir=str(tmp_path)))
    raw = report["raw"]
    reporter("", "=== Bus transports: queue vs mp vs TCP ===",
             f"  thread msgs/s : "
             f"{raw['thread']['messages_per_sec']:12.0f}",
             f"  process msgs/s: "
             f"{raw['process']['messages_per_sec']:12.0f}",
             f"  socket msgs/s : "
             f"{raw['socket']['messages_per_sec']:12.0f}",
             f"  fleet identical: {report['fleet']['outputs_identical']}",
             f"  gateway identical: "
             f"{report['gateway']['outputs_identical']}")
    assert report["fleet"]["outputs_identical"]
    assert report["gateway"]["outputs_identical"]


# ----------------------------------------------------------------------
# Standalone JSON mode
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Bus transport throughput: queues vs TCP sockets")
    parser.add_argument("--messages", type=int, default=20000,
                        help="messages for the raw bus section")
    parser.add_argument("--frames", type=int, default=4000,
                        help="frames for the fleet/gateway sections")
    parser.add_argument("--shards", type=int, default=2,
                        help="fleet width")
    parser.add_argument("--repeats", type=int, default=2,
                        help="raw-section repeats (best is reported)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the report as JSON to FILE")
    args = parser.parse_args(argv)

    import tempfile
    with tempfile.TemporaryDirectory() as workdir:
        report = run_bench(args.messages, args.frames, args.shards,
                           args.repeats, workdir)

    raw = report["raw"]
    for transport in ("thread", "process", "socket"):
        print(f"raw {transport:7s}: "
              f"{raw[transport]['messages_per_sec']:12.0f} msgs/s")
    fleet = report["fleet"]
    print(f"fleet thread : {fleet['thread']['frames_per_sec']:12.0f} "
          f"frames/s")
    print(f"fleet socket : {fleet['socket']['frames_per_sec']:12.0f} "
          f"frames/s ({fleet['socket_overhead']:.2f}x overhead, "
          f"outputs identical: {fleet['outputs_identical']})")
    gateway = report["gateway"]
    print(f"local ingest : {gateway['local']['frames_per_sec']:12.0f} "
          f"frames/s")
    print(f"gateway      : {gateway['gateway']['frames_per_sec']:12.0f} "
          f"frames/s over TCP in {gateway['gateway']['batches']} "
          f"batches (outputs identical: "
          f"{gateway['outputs_identical']})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
