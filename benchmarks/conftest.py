"""Shared fixtures for the figure-reproduction benches.

The Fig 13–17 benches all consume the same campus experiment; building
it once per session keeps the whole bench suite fast.  Every bench
prints a paper-vs-measured table through ``report`` so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the reproduced series alongside the timing table.
"""

import sys

import pytest

from repro.analysis.experiments import run_localization_experiment
from repro.localization import (
    CentroidLocalizer,
    MLoc,
    WeightedCentroidLocalizer,
)
from repro.sim.scenarios import build_disc_model_experiment

#: Seed used by every bench (reproducible end to end).
BENCH_SEED = 11


@pytest.fixture
def reporter(capsys):
    """Print reproduction tables past pytest's output capture.

    The reproduced series must land in ``bench_output.txt`` (via tee)
    even for passing benches, which the default capture would swallow —
    each call temporarily disables capture.
    """
    def _report(*lines):
        with capsys.disabled():
            for line in lines:
                print(line)
            sys.stdout.flush()

    return _report


@pytest.fixture(scope="session")
def campus_experiment():
    """The Fig 13–16 campus (420 APs, 120 test points, full corpus)."""
    return build_disc_model_experiment(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def campus_reports(campus_experiment):
    """Localization reports for M-Loc / AP-Rad / Centroid on the campus."""
    exp = campus_experiment
    aprad = exp.make_aprad()
    aprad.fit(exp.corpus)
    localizers = {
        "m-loc": MLoc(exp.mloc_db),
        "ap-rad": aprad,
        "centroid": CentroidLocalizer(exp.location_db),
        "w-centroid": WeightedCentroidLocalizer(exp.mloc_db),
    }
    return run_localization_experiment(localizers, exp.cases)
