"""Figure 15: intersected area vs. minimum number of communicable APs.

Paper: "AP-Rad generates a larger intersected area than M-Loc.  This is
due to the error on the estimation of APs' radius in AP-Rad" — and both
shrink as k grows (Theorem 2).
"""



K_VALUES = (1, 2, 4, 6, 8, 10, 12, 16)


def test_fig15_area_vs_min_k(benchmark, campus_reports, reporter):
    reports = campus_reports

    def slices():
        return {
            name: [reports[name].mean_area_vs_min_k(k) for k in K_VALUES]
            for name in ("m-loc", "ap-rad")
        }

    table = benchmark(slices)

    reporter("", "=== Fig 15: intersected area (m^2) vs min #APs ===",
           "min k    " + "".join(f"{k:>9d}" for k in K_VALUES))
    for name in ("m-loc", "ap-rad"):
        cells = "".join(
            f"{value:9.0f}" if value is not None else f"{'-':>9s}"
            for value in table[name])
        reporter(f"{name:9s}{cells}")

    mloc = table["m-loc"]
    aprad = table["ap-rad"]
    # AP-Rad's area exceeds M-Loc's at every k (radius-estimation error).
    larger = sum(1 for m, a in zip(mloc, aprad)
                 if m is not None and a is not None and a > m)
    assert larger >= len(K_VALUES) - 1
    # Both curves decrease with k (Theorem 2's shape, on real data).
    valid_mloc = [v for v in mloc if v is not None]
    assert valid_mloc[-1] < valid_mloc[0] * 0.5
    reporter("Paper: AP-Rad area > M-Loc area; both fall steeply with k.")
