"""Ablation: the attack in a dense-urban (GWU-style) environment.

The paper's motivation for the disc-model attack is that urban clutter
breaks signal-strength/AOA positioning ("obstructing buildings often
prevent the signal strength and AOA from being accurately measured")
while mere *reachability* survives.  We run the identical attack on the
open campus and on a Manhattan grid of buildings and compare what the
sniffer captures and how well M-Loc localizes the victim.
"""

from repro.localization import MLoc
from repro.sim import build_attack_scenario, build_urban_scenario


def _run(scenario, duration_s=240.0):
    scenario.world.run(duration_s=duration_s)
    store = scenario.world.sniffer.store
    gamma = store.gamma(scenario.victim.mac, at_time=scenario.world.now)
    estimate = MLoc(scenario.truth_db).locate(gamma) if gamma else None
    error = (estimate.error_to(scenario.victim.position)
             if estimate is not None else None)
    return {
        "frames": store.frame_count,
        "mobiles": len(store.seen_mobiles),
        "victim_k": len(gamma),
        "victim_error_m": error,
    }


def test_ablation_urban_environment(benchmark, reporter):
    def run_both():
        open_campus = _run(build_attack_scenario(
            seed=38, ap_count=70, area_m=400.0, bystander_count=4))
        urban = _run(build_urban_scenario(
            seed=38, ap_count=70, area_m=400.0, bystander_count=4))
        return open_campus, urban

    open_campus, urban = benchmark(run_both)

    reporter("", "=== Ablation: open campus vs urban canyon ===",
             f"{'':14s} {'frames':>8s} {'mobiles':>8s} {'victim k':>9s}"
             f" {'error':>8s}")
    for name, row in (("open", open_campus), ("urban", urban)):
        error = (f"{row['victim_error_m']:6.1f} m"
                 if row["victim_error_m"] is not None else "      -")
        reporter(f"{name:14s} {row['frames']:8d} {row['mobiles']:8d}"
                 f" {row['victim_k']:9d} {error}")

    # Urban blockage costs frames...
    assert urban["frames"] < open_campus["frames"]
    # ... but the attack still observes and localizes the victim.
    assert urban["victim_k"] >= 1
    assert urban["victim_error_m"] is not None
    assert urban["victim_error_m"] < 150.0
    reporter("Paper: urban clutter breaks RSSI/AOA positioning; the"
             " reachability-based disc attack keeps working.")
