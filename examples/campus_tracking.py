"""Campus tracking: the full Marauder's-map experience.

Tracks every mobile on the simulated campus over ten minutes, keeping a
per-device track of M-Loc estimates, then renders the map display —
AP dots, red tags for true positions, blue tags for estimates, and the
victim's estimated path — to ``marauders_map.html``.

Run:  python examples/campus_tracking.py
"""

from repro.display import MapRenderer, render_html_map
from repro.localization import MLoc
from repro.sim import build_attack_scenario
from repro.sniffer import DeviceTracker


def main() -> None:
    scenario = build_attack_scenario(seed=21, ap_count=90, area_m=600.0,
                                     bystander_count=14)
    world = scenario.world
    store = world.sniffer.store
    mloc = MLoc(scenario.truth_db)
    tracker = DeviceTracker()

    # Run in 30-second epochs; after each, localize everyone visible.
    epochs = 20
    for _ in range(epochs):
        world.run(duration_s=30.0)
        for mobile in store.seen_mobiles:
            gamma = store.gamma(mobile, at_time=world.now)
            if not gamma:
                continue
            estimate = mloc.locate(gamma)
            if estimate is not None:
                tracker.record(mobile, world.now, estimate)

    print(f"Tracked {len(tracker.devices())} devices, "
          f"{tracker.total_estimates()} estimates over "
          f"{epochs * 30} seconds.")

    # Accuracy of the victim's track against the recorded ground truth.
    errors = []
    for point in tracker.track_of(scenario.victim.mac):
        truth = world.truth_at(scenario.victim.mac, point.timestamp,
                               tolerance_s=1.0)
        if truth is not None:
            errors.append(point.estimate.error_to(truth))
    if errors:
        print(f"Victim track: {len(errors)} fixes, "
              f"mean error {sum(errors) / len(errors):.1f} m")

    # Render the display, including the victim's current uncertainty
    # region (the intersected area) and its 50% confidence radius.
    renderer = MapRenderer(width_m=600.0, height_m=600.0)
    for record in scenario.truth_db:
        renderer.add_access_point(record.location, label=str(record.ssid))
    renderer.add_sniffer(world.sniffer.position, "Marauder's-map sniffer")
    renderer.add_track(tracker.path_of(scenario.victim.mac))
    for station in world.stations:
        renderer.add_true_position(station.position, label=str(station.mac))
    for mobile in tracker.devices():
        latest = tracker.latest(mobile)
        renderer.add_estimate(latest.estimate.position, label=str(mobile))
    victim_latest = tracker.latest(scenario.victim.mac)
    if victim_latest is not None:
        estimate = victim_latest.estimate
        if estimate.region is not None and not estimate.region_empty:
            renderer.add_region(estimate.region)
        cep = estimate.confidence_radius_m(0.5)
        if cep is not None:
            print(f"Victim 50% confidence radius: {cep:.1f} m "
                  f"(region area {estimate.area_m2:.0f} m²)")

    render_html_map(
        renderer,
        caption="Red: true positions.  Blue: Marauder's-map estimates.  "
                "Line: the victim's estimated path.",
        output_path="marauders_map.html")
    print("Wrote marauders_map.html")


if __name__ == "__main__":
    main()
