"""Coverage planning: choosing the receiver chain with Theorem 1.

Walks through the paper's Section III-A analysis with concrete
hardware: how antenna gain, NIC sensitivity, and the LNA each move the
coverage radius, why the LNA's *gain* doesn't appear in the bound (only
its noise figure does), and what the 4-way splitter costs.

Run:  python examples/coverage_planning.py
"""

from repro.radio.chain import ReceiverChain
from repro.radio.components import catalog
from repro.radio.link_budget import LinkBudget, Transmitter
from repro.sniffer.receiver import (
    build_dlink_chain,
    build_hg2415u_chain,
    build_marauder_chain,
    build_src_chain,
)
from repro.theory import (
    coverage_improvement_factor,
    lna_noise_figure_improvement_db,
)


def main() -> None:
    mobile = Transmitter(power_dbm=15.0, antenna_gain_dbi=0.0)

    print("=== Receiver chains (paper Fig 12 hardware) ===\n")
    chains = [build_dlink_chain(), build_src_chain(),
              build_hg2415u_chain(), build_marauder_chain()]
    for chain in chains:
        budget = LinkBudget(mobile, chain)
        print(chain.describe())
        print(f"  free-space radius: {budget.coverage_radius_m():8.1f} m\n")

    print("=== The LNA's contribution ===\n")
    improvement = lna_noise_figure_improvement_db(
        nic_noise_figure_db=4.0, lna_noise_figure_db=1.5)
    print(f"NF improvement over the bare SRC card: {improvement:.1f} dB")
    print(f"-> coverage radius multiplier: "
          f"{coverage_improvement_factor(improvement):.2f}x")
    print("(the paper: 'a noise figure improvement of 2.5 ~ 4.5 dB')\n")

    print("=== Why not skip the LNA and just split? ===\n")
    parts = catalog()
    no_lna_split = ReceiverChain(
        antenna=parts["HG2415U"], nic=parts["SRC"],
        blocks=[parts["4-way-splitter"]], name="HG2415U+splitter-no-LNA")
    print(f"Without the LNA, the splitter loss "
          f"({-no_lna_split.pre_nic_gain_db:.1f} dB) lands straight on "
          f"the noise budget:")
    print(f"  chain NF {no_lna_split.noise_figure_db:.2f} dB vs "
          f"{build_marauder_chain().noise_figure_db:.2f} dB with the LNA")
    budget = LinkBudget(mobile, no_lna_split)
    print(f"  radius {budget.coverage_radius_m():.1f} m vs "
          f"{LinkBudget(mobile, build_marauder_chain()).coverage_radius_m():.1f} m")
    print("\nWith the 45 dB LNA in front, each splitter output still sees "
          f"{build_marauder_chain().pre_nic_gain_db:.1f} dB of net "
          "amplification ('45 - 10 log 4 = 39 dB').")


if __name__ == "__main__":
    main()
