"""Full reproduction in one run: a scaled-down pass over every claim.

Walks the paper's evaluation top to bottom on small workloads (seconds,
not the benches' minutes) and prints a single summary table.  For the
publication-scale versions run ``pytest benchmarks/ --benchmark-only``.

Run:  python examples/full_reproduction.py
"""

import numpy as np

from repro.analysis import run_localization_experiment
from repro.localization import CentroidLocalizer, MLoc
from repro.numerics import make_rng
from repro.radio.link_budget import LinkBudget, Transmitter
from repro.sim.campus import CampusConfig, generate_campus, non_overlapping_share
from repro.sim.population import PopulationConfig, simulate_week
from repro.sim.scenarios import build_disc_model_experiment
from repro.sniffer.receiver import build_marauder_chain, build_src_chain
from repro.theory import (
    coverage_probability_underestimate,
    expected_area_overestimate,
    expected_intersected_area,
)


def check(label, claim, ok):
    status = "ok " if ok else "FAIL"
    print(f"  [{status}] {label:34s} {claim}")
    return ok


def main() -> None:
    print("The Digital Marauder's Map — one-shot reproduction summary\n")
    results = []

    # --- Theory -------------------------------------------------------
    print("Theory (Theorems 1-3):")
    ca = [expected_intersected_area(k) for k in (1, 5, 10, 20)]
    results.append(check(
        "Thm 2 / Fig 2", f"CA falls {ca[0]:.2f} -> {ca[-1]:.3f} over k",
        all(a > b for a, b in zip(ca, ca[1:]))))
    grow = expected_area_overestimate(10, 1.0, 2.0) / \
        expected_area_overestimate(10, 1.0, 1.0)
    results.append(check(
        "Thm 3 / Fig 5", f"2x radius overestimate -> {grow:.0f}x area",
        grow > 10))
    p = coverage_probability_underestimate(10, 1.0, 0.8)
    results.append(check(
        "Thm 3 / Fig 6", f"20% underestimate -> coverage {p:.3f}",
        p < 0.05))
    src = LinkBudget(Transmitter(15.0), build_src_chain())
    lna = LinkBudget(Transmitter(15.0), build_marauder_chain())
    ratio = lna.coverage_radius_m() / src.coverage_radius_m()
    results.append(check(
        "Thm 1 / Fig 12", f"LNA chain out-ranges SRC card {ratio:.1f}x",
        ratio > 3.0))

    # --- Feasibility ----------------------------------------------------
    print("Feasibility (Figs 8, 10, 11):")
    aps, _ = generate_campus(CampusConfig(ap_count=400), make_rng(8))
    share = non_overlapping_share(aps)
    results.append(check(
        "Fig 8", f"{100 * share:.1f}% of APs on ch 1/6/11 (paper 93.7%)",
        share > 0.88))
    week = simulate_week(PopulationConfig(), make_rng(2008))
    minimum = min(d.probing_percentage for d in week)
    results.append(check(
        "Figs 10-11", f"probing >50% daily (min {minimum:.1f}%)",
        minimum > 50.0))

    # --- Localization accuracy -----------------------------------------
    print("Localization (Figs 13-16):")
    exp = build_disc_model_experiment(seed=11, ap_count=250,
                                      area_m=400.0, case_count=60,
                                      extra_corpus=400)
    aprad = exp.make_aprad()
    aprad.fit(exp.corpus)
    reports = run_localization_experiment(
        {"m-loc": MLoc(exp.mloc_db), "ap-rad": aprad,
         "centroid": CentroidLocalizer(exp.location_db)},
        exp.cases)
    mloc = reports["m-loc"].mean_error()
    rad = reports["ap-rad"].mean_error()
    cen = reports["centroid"].mean_error()
    results.append(check(
        "Fig 13", f"errors {mloc:.1f} < {rad:.1f} < {cen:.1f} m "
        "(paper 9.4 < 13.8 < 17.3)",
        mloc < rad < cen))
    k_lo = reports["m-loc"].mean_error_vs_min_k(1)
    k_hi = reports["m-loc"].mean_error_vs_min_k(8)
    results.append(check(
        "Fig 14", f"M-Loc error falls with k ({k_lo:.1f} -> {k_hi:.1f})",
        k_hi < k_lo))
    area_gap = (reports["ap-rad"].mean_area_vs_min_k(2)
                > reports["m-loc"].mean_area_vs_min_k(2))
    results.append(check("Fig 15", "AP-Rad area > M-Loc area", area_gap))
    cov_gap = (reports["ap-rad"].coverage_probability_vs_min_k(1)
               < reports["m-loc"].coverage_probability_vs_min_k(1))
    results.append(check("Fig 16", "AP-Rad coverage < M-Loc coverage",
                         cov_gap))

    passed = sum(results)
    print(f"\n{passed}/{len(results)} claims reproduced.  Full-scale"
          " versions: pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
