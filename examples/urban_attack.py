"""Urban attack: the Marauder's map in a downtown (GWU-style) grid.

The paper deployed its second system on GWU's downtown campus.  Urban
clutter is exactly why it rejects signal-strength/AOA localization —
and why the disc-model attack, which only needs *whether* frames
arrive, is dangerous: buildings cost the sniffer frames, not the
attack its validity.

This example runs the identical attack on an open campus and a
Manhattan grid of buildings and prints the side-by-side outcome.

Run:  python examples/urban_attack.py
"""

from repro.localization import MLoc
from repro.sim import build_attack_scenario, build_urban_scenario


def run(label, scenario, duration_s=240.0):
    scenario.world.run(duration_s=duration_s)
    store = scenario.world.sniffer.store
    gamma = store.gamma(scenario.victim.mac, at_time=scenario.world.now)
    estimate = MLoc(scenario.truth_db).locate(gamma) if gamma else None
    error = (f"{estimate.error_to(scenario.victim.position):6.1f} m"
             if estimate is not None else "      -")
    print(f"{label:12s} frames={store.frame_count:5d}  "
          f"mobiles={len(store.seen_mobiles):2d}  "
          f"victim k={len(gamma):2d}  error={error}")


def main() -> None:
    print("Same attack, two environments (seed 38, 70 APs, 400 m):\n")
    run("open campus", build_attack_scenario(
        seed=38, ap_count=70, area_m=400.0, bystander_count=4))
    run("urban grid", build_urban_scenario(
        seed=38, ap_count=70, area_m=400.0, bystander_count=4))
    print("\nBuildings absorb frames (the sniffer hears less) but the"
          " reachability evidence that does arrive still pins the"
          " victim — the paper's case against RSSI/AOA methods.")


if __name__ == "__main__":
    main()
