"""Defense evaluation: camouflage protocols vs. the Marauder's map.

The paper's conclusion calls for "mobile identity camouflaging
protocols".  This example pits four defense configurations against the
full attack and reports what the adversary still recovers:

  1. no defense (static MAC),
  2. MAC pseudonyms only (rotation every 60 s),
  3. pseudonyms + random silent periods,
  4. pseudonyms + silence + probe hygiene (no directed probes).

The headline: pseudonyms alone are *re-linked* through the directed
probe requests (the Pang et al. implicit identifier cited in the
paper); only probe hygiene actually breaks the linkage — at the cost of
slower network discovery.

Run:  python examples/defenses_evaluation.py
"""

from repro.defenses import (
    DefendedStation,
    ProbeHygiene,
    PseudonymPolicy,
    SilentPeriodPolicy,
    evaluate_trackability,
)
from repro.geometry import Point
from repro.net80211 import MobileStation, Ssid
from repro.net80211.mac import MacAddress
from repro.net80211.station import PROFILES
from repro.numerics import make_rng
from repro.sim import build_attack_scenario

CONFIGS = [
    ("no defense", dict()),
    ("pseudonyms", dict(pseudonyms=PseudonymPolicy(interval_s=60.0))),
    ("+ silence", dict(pseudonyms=PseudonymPolicy(interval_s=60.0),
                       silence=SilentPeriodPolicy(min_s=5.0, max_s=20.0))),
    ("+ hygiene", dict(pseudonyms=PseudonymPolicy(interval_s=60.0),
                       silence=SilentPeriodPolicy(min_s=5.0, max_s=20.0),
                       hygiene=ProbeHygiene())),
]


def make_victim():
    rng = make_rng(5)
    return MobileStation(
        mac=MacAddress.random_pseudonym(rng),
        position=Point(250.0, 75.0),
        profile=PROFILES["aggressive"],
        preferred_networks=[Ssid("home-net"), Ssid("office-eduroam")],
    )


def main() -> None:
    print(f"{'defense':14s} {'MACs':>5s} {'linked':>7s} {'fixes':>6s}"
          f" {'err (m)':>8s} {'muted':>6s}")
    for name, policies in CONFIGS:
        scenario = build_attack_scenario(seed=23, ap_count=70,
                                         area_m=500.0,
                                         bystander_count=4)
        defended = DefendedStation(inner=make_victim(), seed=9,
                                   **policies)
        scenario.world.add_station(defended, scenario.victim_route)
        report = evaluate_trackability(scenario.world, defended,
                                       duration_s=300.0,
                                       truth_db=scenario.truth_db)
        error = (f"{report.mean_error_m:8.1f}"
                 if report.mean_error_m is not None else f"{'-':>8s}")
        print(f"{name:14s} {report.macs_used:5d}"
              f" {report.linked_by_attacker:7d}"
              f" {report.located_fixes:6d} {error}"
              f" {100 * report.muted_fraction:5.0f}%")
    print("\n'linked' = pseudonyms the attacker re-identified as one"
          " device via the preferred-network fingerprint.")
    print("Only probe hygiene (no directed probes) breaks the linkage;"
          " each pseudonym remains individually locatable while it"
          " transmits.")


if __name__ == "__main__":
    main()
