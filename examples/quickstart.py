"""Quickstart: locate one WiFi device with the digital Marauder's map.

Builds a simulated campus, runs the sniffing system for four minutes,
and localizes the victim three ways (M-Loc / AP-Rad / Centroid) from
exactly the evidence a real deployment would have: the set of APs the
victim was observed communicating with.

Run:  python examples/quickstart.py
"""

from repro.localization import APRad, CentroidLocalizer, MLoc
from repro.sim import build_attack_scenario


def main() -> None:
    # 1. The world: a 600 m campus, 90 APs, a victim walking a loop,
    #    and the paper's receiver chain (15 dBi antenna + LNA + 4-way
    #    splitter + three cards on channels 1/6/11) on the "roof".
    scenario = build_attack_scenario(seed=7)
    world = scenario.world

    # 2. Monitor for four minutes.
    world.run(duration_s=240.0)
    store = world.sniffer.store
    print(f"Captured {store.frame_count} frames; "
          f"{len(store.seen_mobiles)} mobiles observed, "
          f"{len(store.probing_mobiles)} probing.")

    # 3. The attack evidence: Γ = the APs the victim communicated with
    #    in the last observation window.
    gamma = store.gamma(scenario.victim.mac, at_time=world.now)
    print(f"Victim {scenario.victim.mac}: "
          f"communicable with {len(gamma)} APs right now.")

    truth = scenario.victim.position

    # 4a. M-Loc: AP locations and radii known (ground-truth database).
    mloc_estimate = MLoc(scenario.truth_db).locate(gamma)
    print(f"M-Loc    : {_fmt(mloc_estimate.position)}  "
          f"error {mloc_estimate.error_to(truth):5.1f} m")

    # 4b. AP-Rad: only locations known; radii estimated by linear
    #     programming over everything the sniffer saw.
    aprad = APRad(scenario.truth_db.without_ranges(), r_max=150.0,
                  solver="scipy", min_evidence=2, overestimate_factor=1.2)
    aprad.fit(store.corpus())
    aprad_estimate = aprad.locate(gamma)
    print(f"AP-Rad   : {_fmt(aprad_estimate.position)}  "
          f"error {aprad_estimate.error_to(truth):5.1f} m")

    # 4c. Centroid baseline.
    centroid_estimate = CentroidLocalizer(
        scenario.truth_db.without_ranges()).locate(gamma)
    print(f"Centroid : {_fmt(centroid_estimate.position)}  "
          f"error {centroid_estimate.error_to(truth):5.1f} m")

    print(f"Truth    : {_fmt(truth)}")


def _fmt(point) -> str:
    return f"({point.x:6.1f}, {point.y:6.1f})"


if __name__ == "__main__":
    main()
