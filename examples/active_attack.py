"""The active attack: making a silent device visible.

A passive-scanning victim never sends probe requests, so the passive
Marauder's map cannot build its communicable-AP set.  The active
attacker spoofs deauthentication frames in the name of the victim's AP;
the victim falls off its association, rescans (emitting probes on every
channel), and the sniffer captures the resulting probe responses — at
which point M-Loc pins it down.

Run:  python examples/active_attack.py
"""

from repro.geometry import Point
from repro.localization import MLoc
from repro.net80211 import MobileStation
from repro.net80211.mac import MacAddress
from repro.net80211.station import PROFILES
from repro.numerics import make_rng
from repro.sim import build_attack_scenario
from repro.sniffer import ActiveAttacker


def main() -> None:
    scenario = build_attack_scenario(seed=13, bystander_count=6)
    world = scenario.world
    store = world.sniffer.store
    rng = make_rng(99)

    # A victim that never scans on its own, parked in a quiet corner
    # and associated to the nearest AP.
    silent = MobileStation(
        mac=MacAddress.random(rng),
        position=Point(150.0, 450.0),
        profile=PROFILES["passive"],
    )
    nearest_ap = min(scenario.access_points,
                     key=lambda ap: ap.position.distance_to(silent.position))
    silent.associate(nearest_ap.bssid)
    world.add_station(silent)

    # --- Phase 1: passive monitoring only -----------------------------
    world.run(duration_s=180.0)
    print("After 3 min of passive monitoring:")
    print(f"  victim observed : {silent.mac in store.seen_mobiles}")
    print(f"  victim probing  : {silent.mac in store.probing_mobiles}")

    # --- Phase 2: arm the active attack --------------------------------
    attacker = ActiveAttacker(position=world.sniffer.position)
    world.arm_attacker(attacker, interval_s=30.0)
    world.run(duration_s=120.0)
    print("\nAfter 2 more min with the active (deauth) attack:")
    print(f"  deauths sent    : {attacker.frames_sent}")
    print(f"  victim observed : {silent.mac in store.seen_mobiles}")
    print(f"  victim probing  : {silent.mac in store.probing_mobiles}")

    gamma = store.gamma(silent.mac)
    if gamma:
        estimate = MLoc(scenario.truth_db).locate(gamma)
        error = estimate.error_to(silent.position)
        print(f"  located via {len(gamma)} APs, error {error:.1f} m")
    else:
        print("  victim still invisible (try a longer attack window)")


if __name__ == "__main__":
    main()
