"""Wardriving + AP-Loc: attacking with *no* prior AP knowledge.

The adversary first warwalks a lawnmower route through the campus,
collecting training tuples (GPS fix + observed AP set).  AP-Loc then
(1) places every AP by intersecting training-location discs, (2)
estimates radii with the AP-Rad linear program, and (3) localizes the
monitored mobiles — all without ever touching WiGLE or the ground-truth
database.

Run:  python examples/wardriving_aploc.py
"""

import numpy as np

from repro.analysis import run_localization_experiment
from repro.knowledge.wardrive import Wardriver
from repro.localization import APLoc, CentroidLocalizer, MLoc
from repro.sim import grid_route
from repro.sim.scenarios import build_disc_model_experiment


def main() -> None:
    # A denser, smaller neighborhood (the paper's training experiments
    # covered "the neighborhood of the monitoring system").
    exp = build_disc_model_experiment(seed=31, ap_count=160, area_m=320.0,
                                      case_count=80, extra_corpus=500)

    # --- Training phase: warwalk a grid route -------------------------
    oracle = exp.truth_db.observable_from  # what the sniffing tool sees
    wardriver = Wardriver(oracle)

    for tuple_count in (9, 19, 35, 63):
        rows = max(2, int(np.sqrt(tuple_count)))
        per_row = max(2, int(np.ceil(tuple_count / rows)))
        route = grid_route(10.0, 10.0, exp.area_m - 10.0,
                           exp.area_m - 10.0, rows, per_row)[:tuple_count]
        training = wardriver.collect(route)

        # --- Attack phase: AP-Loc end to end -------------------------
        aploc = APLoc(training, training_radius_m=exp.r_max,
                      r_max=exp.r_max, solver="scipy",
                      min_evidence=exp.aprad_min_evidence,
                      overestimate_factor=exp.aprad_overestimate)
        aploc.fit(exp.corpus)

        # How well did AP-Loc place the APs themselves?
        placements = aploc.estimate_ap_locations()
        placement_errors = [
            exp.truth_db.get(bssid).location.distance_to(location)
            for bssid, location in placements.items()
        ]
        report = run_localization_experiment({"ap-loc": aploc},
                                             exp.cases)["ap-loc"]
        print(f"{tuple_count:3d} training tuples: "
              f"{len(placements):3d} APs placed "
              f"(median placement error "
              f"{np.median(placement_errors):5.1f} m) -> "
              f"mobile error {report.mean_error():6.2f} m "
              f"({report.skipped} unlocatable)")

    # Reference: the knowledge-rich algorithms on the same cases.
    reports = run_localization_experiment(
        {"m-loc": MLoc(exp.mloc_db),
         "centroid": CentroidLocalizer(exp.location_db)},
        exp.cases)
    print(f"\nReference: M-Loc {reports['m-loc'].mean_error():.2f} m, "
          f"Centroid {reports['centroid'].mean_error():.2f} m")
    print("Paper: AP-Loc reaches 12.21 m with only 19 training tuples, "
          "already beating Centroid.")


if __name__ == "__main__":
    main()
