"""Weighted-centroid baseline.

A standard refinement of the centroid approach from the range-free
localization literature the paper cites (e.g. Bulusu et al. [26]):
weight each AP's location by the inverse of its coverage radius, since
being heard by a *short-range* AP says more about where the device is
than being heard by a long-range one.

It needs radii (known or estimated), so it sits between plain Centroid
(locations only) and M-Loc (full disc intersection) — a useful extra
comparison point for the Fig 13 analysis: it beats Centroid but not the
disc intersection, because averaging still ignores the geometry of the
constraint regions.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase
from repro.localization.base import (
    LocalizationEstimate,
    Localizer,
    known_records,
)
from repro.net80211.mac import MacAddress


class WeightedCentroidLocalizer(Localizer):
    """Centroid of AP locations weighted by ``1 / radius**power``."""

    name = "weighted-centroid"

    def __init__(self, database: ApDatabase, power: float = 1.0,
                 fallback_range_m: Optional[float] = None):
        if power < 0.0:
            raise ValueError(f"power must be >= 0, got {power}")
        self.database = database
        self.power = power
        self.fallback_range_m = fallback_range_m

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        records = known_records(self.database, observed)
        weighted = []
        for record in records:
            radius = record.max_range_m
            if radius is None:
                radius = self.fallback_range_m
            if radius is None or radius <= 0.0:
                continue
            weighted.append((record.location, radius ** -self.power))
        if not weighted:
            return None
        total = sum(weight for _, weight in weighted)
        x = sum(location.x * weight for location, weight in weighted)
        y = sum(location.y * weight for location, weight in weighted)
        return LocalizationEstimate(
            position=Point(x / total, y / total),
            algorithm=self.name,
            region=None,
            used_ap_count=len(weighted),
        )
