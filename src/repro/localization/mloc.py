"""M-Loc: localization from AP locations and maximum transmission distances.

The paper's pseudocode (Section III-D):

    1. For each pair of APs in Γ, compute the intersection points of
       their coverage circles.
    2. Keep the points that lie inside *every* AP's disc — the set Δ.
    3. Return AVG(Δ), the centroid of the surviving vertices.

That is ``mode="vertex"`` here.  The pseudocode is undefined when Δ is
empty — which happens for k = 1 (no pairs), nested discs, and noisy
knowledge that makes the intersection empty.  ``mode="region"`` computes
the exact area centroid of the intersection region instead (identical in
spirit, defined whenever the region is non-empty).  Both modes share the
documented fallback chain for empty intersections: optionally inflate
all radii by the smallest factor that makes the region non-empty
(bisection), else fall back to the mean of the AP locations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.geometry import kernels
from repro.geometry.circle import Circle
from repro.geometry.point import Point, mean_point
from repro.geometry.region import (
    KERNEL_MIN_DISCS,
    DiscIntersection,
    kernel_default,
)
from repro.knowledge.apdb import ApDatabase
from repro.localization.base import (
    LocalizationEstimate,
    Localizer,
    known_records,
)
from repro.net80211.mac import MacAddress

#: Largest radius inflation tried before giving up on a non-empty region.
_MAX_INFLATION = 16.0


class MLoc(Localizer):
    """The paper's M-Loc algorithm.

    Parameters
    ----------
    database:
        AP knowledge with locations *and* ``max_range_m`` set (records
        without a range use ``fallback_range_m``; if neither is
        available the record is skipped).
    mode:
        ``"vertex"`` — the paper's AVG(Δ) over intersection vertices;
        ``"region"`` — exact centroid of the intersection region.
    inflate_to_feasible:
        When the raw intersection is empty (noisy knowledge), scale all
        radii by the smallest factor in ``[1, 16]`` that yields a
        non-empty region and estimate from that.  The reported region
        and ``covers``/area metrics still refer to the *raw* discs.
    """

    name = "m-loc"

    def __init__(self, database: ApDatabase, mode: str = "vertex",
                 fallback_range_m: Optional[float] = None,
                 inflate_to_feasible: bool = True):
        if mode not in ("vertex", "region"):
            raise ValueError(f"mode must be 'vertex' or 'region', got {mode!r}")
        self.database = database
        self.mode = mode
        self.fallback_range_m = fallback_range_m
        self.inflate_to_feasible = inflate_to_feasible

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        discs = self._discs_for(observed)
        if not discs:
            return None
        return self.locate_discs(discs)

    def _discs_for(self, observed: Iterable[MacAddress]) -> List[Circle]:
        discs: List[Circle] = []
        for record in known_records(self.database, observed):
            radius = record.max_range_m
            if radius is None:
                radius = self.fallback_range_m
            if radius is None:
                continue
            discs.append(Circle(record.location, radius))
        return discs

    def locate_discs(self, discs: List[Circle],
                     region: Optional[DiscIntersection] = None
                     ) -> LocalizationEstimate:
        """Run the disc-intersection estimate on explicit discs.

        Exposed separately so AP-Loc can reuse the machinery with
        training-location discs.  ``region`` lets the batch path inject
        an intersection whose vertices the batched kernel already
        computed.
        """
        if region is None:
            region = DiscIntersection(discs)
        position = self._estimate_from_region(region)
        inflation = 1.0
        region_empty = region.is_empty
        if position is None:
            position, inflation = self._fallback(discs)
        return LocalizationEstimate(
            position=position,
            algorithm=self.name,
            region=region,
            used_ap_count=len(discs),
            region_empty=region_empty,
            inflation_factor=inflation,
        )

    def _locate_batch_local(self, gammas: List[List[MacAddress]]
                            ) -> List[Optional[LocalizationEstimate]]:
        """Vectorized batch localization through the geometry kernels.

        Disc sets of equal size are stacked into one
        :func:`repro.geometry.kernels.batch_intersection_vertices` call
        — a micro-batch of dirty devices costs one dispatch sequence
        per distinct k instead of one per device.  Falls back to the
        sequential reference when the kernel layer is disabled.
        """
        if not kernel_default():
            return [self.locate(gamma) for gamma in gammas]
        disc_sets = [self._discs_for(gamma) for gamma in gammas]
        estimates: List[Optional[LocalizationEstimate]] = [None] * len(gammas)
        by_size: Dict[int, List[int]] = {}
        for index, discs in enumerate(disc_sets):
            if len(discs) < 2:
                # Unlocatable (k=0) or a single full disc: no pairwise
                # geometry to batch.
                if discs:
                    estimates[index] = self.locate_discs(discs)
                continue
            by_size.setdefault(len(discs), []).append(index)
        for size, indices in by_size.items():
            centers = np.empty((len(indices), size, 2), dtype=np.float64)
            radii = np.empty((len(indices), size), dtype=np.float64)
            for row, index in enumerate(indices):
                centers[row], radii[row] = kernels.discs_as_arrays(
                    disc_sets[index])
            vertex_sets = kernels.batch_intersection_vertices(centers, radii)
            for index, coords in zip(indices, vertex_sets):
                discs = disc_sets[index]
                region = DiscIntersection(
                    discs,
                    precomputed_vertices=kernels.array_as_points(coords))
                estimates[index] = self.locate_discs(discs, region=region)
        return estimates

    def _estimate_from_region(self,
                              region: DiscIntersection) -> Optional[Point]:
        if region.is_empty:
            return None
        if self.mode == "vertex":
            vertex_estimate = region.vertex_centroid()
            if vertex_estimate is not None:
                return vertex_estimate
            # Δ is empty but the region is not (k = 1 or nested discs):
            # the paper's AVG(Δ) is undefined, so use the region
            # centroid, which equals the disc center in those cases.
        return region.centroid()

    def _fallback(self, discs: List[Circle]) -> tuple:
        """Empty raw intersection: inflate radii or take the AP mean."""
        centers = [disc.center for disc in discs]
        if not self.inflate_to_feasible:
            return mean_point(centers), 1.0
        factor = self._smallest_feasible_inflation(discs)
        if factor is None:
            return mean_point(centers), _MAX_INFLATION
        inflated = [Circle(d.center, d.radius * factor) for d in discs]
        region = DiscIntersection(inflated)
        position = self._estimate_from_region(region)
        if position is None:
            position = mean_point(centers)
        return position, factor

    @staticmethod
    def _smallest_feasible_inflation(discs: List[Circle]) -> Optional[float]:
        """Bisect for the smallest radius scale giving a non-empty region.

        Non-emptiness is monotone in the scale factor, so bisection on
        ``[1, 16]`` converges; returns ``None`` when even 16x fails.

        The pairwise center geometry is computed once and every probed
        scale is evaluated against it as pure array arithmetic
        (:func:`repro.geometry.kernels.nonempty_at_scale`) — inflating
        radii never moves the centers, so there is nothing to rebuild
        between bisection steps.  Below ``KERNEL_MIN_DISCS`` the scalar
        probe wins (NumPy dispatch dominates tiny pair counts), same
        crossover as :class:`DiscIntersection`.
        """
        if kernel_default() and len(discs) >= KERNEL_MIN_DISCS:
            centers, radii = kernels.discs_as_arrays(discs)
            geom = kernels.pair_geometry(centers, radii)

            def non_empty(scale: float) -> bool:
                return kernels.nonempty_at_scale(geom, scale)
        else:
            def non_empty(scale: float) -> bool:
                scaled = [Circle(d.center, d.radius * scale) for d in discs]
                return not DiscIntersection(scaled).is_empty

        low, high = 1.0, _MAX_INFLATION
        if not non_empty(high):
            return None
        for _ in range(40):
            mid = 0.5 * (low + high)
            if non_empty(mid):
                high = mid
            else:
                low = mid
            if high - low < 1e-3:
                break
        return high
