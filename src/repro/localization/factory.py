"""Spec-string construction of localizers (``make_localizer``).

The CLI, the experiment harness, and tests all need "give me algorithm
X configured with Y" without each growing its own constructor wiring.
A spec is the algorithm name, optionally followed by ``:`` and
comma-separated ``key=value`` overrides::

    make_localizer("m-loc", database=db)
    make_localizer("m-loc:fallback_range_m=120", database=db)
    make_localizer("ap-rad:r_max=150,solver=revised,min_evidence=2",
                   database=db)
    make_localizer("ap-loc:training_radius_m=90,r_max=150",
                   training=tuples)

Values are coerced ``int`` → ``float`` → ``bool`` → ``str`` in that
order, so ``solver=revised`` stays a string while ``r_max=150`` becomes
a number.  Keyword arguments to :func:`make_localizer` are defaults the
spec can override — the CLI passes its flag values that way.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.localization.aploc import APLoc
from repro.localization.aprad import APRad
from repro.localization.base import Localizer
from repro.localization.centroid import CentroidLocalizer
from repro.localization.fallback import FallbackLocalizer
from repro.localization.mloc import MLoc
from repro.localization.nearest import NearestApLocalizer
from repro.localization.weighted import WeightedCentroidLocalizer

#: spec name → (class, needs_database, needs_training)
_LOCALIZERS = {
    "m-loc": (MLoc, True, False),
    "ap-rad": (APRad, True, False),
    "ap-loc": (APLoc, False, True),
    "centroid": (CentroidLocalizer, True, False),
    "nearest-ap": (NearestApLocalizer, True, False),
    "weighted-centroid": (WeightedCentroidLocalizer, True, False),
}

_BOOL_WORDS = {"true": True, "false": False, "yes": True, "no": False}


def localizer_names() -> Sequence[str]:
    """The spec names :func:`make_localizer` accepts, stable order."""
    return tuple(_LOCALIZERS)


def _coerce(text: str):
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in _BOOL_WORDS:
        return _BOOL_WORDS[lowered]
    return text


def parse_spec(spec: str) -> "tuple[str, Dict[str, object]]":
    """Split ``name:key=value,...`` into the name and override dict."""
    name, _, tail = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"empty localizer name in spec {spec!r}")
    overrides: Dict[str, object] = {}
    if tail.strip():
        for part in tail.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"malformed option {part!r} in spec {spec!r} "
                    "(expected key=value)")
            overrides[key.strip()] = _coerce(value.strip())
    return name, overrides


def make_localizer(spec: str, database=None, training=None,
                   **defaults) -> Localizer:
    """Build any :class:`Localizer` from a spec string.

    Parameters
    ----------
    spec:
        ``name`` or ``name:key=value,...`` — see the module docstring.
    database:
        The :class:`~repro.knowledge.apdb.ApDatabase` for algorithms
        that take AP knowledge (all but ``ap-loc``).
    training:
        Wardriving :class:`~repro.knowledge.wardrive.TrainingTuple`
        sequence, required by ``ap-loc`` only.
    defaults:
        Constructor keyword defaults; spec overrides win.

    A ``+fallback:`` suffix builds a graceful-degradation chain: the
    spec before the suffix is the primary tier, and the comma-separated
    *names* after it are tried in order when the primary is unfitted,
    raises a solver error, or answers ``None`` —
    ``"ap-rad:r_max=150+fallback:m-loc,centroid"`` yields a
    :class:`FallbackLocalizer` over three tiers.  (Fallback tiers take
    no per-tier options, and keyword ``defaults`` bind to the primary
    tier only — they are usually algorithm-specific.)
    """
    head, fallback_sep, fallback_tail = spec.partition("+fallback:")
    if fallback_sep:
        tier_names = [part.strip() for part in fallback_tail.split(",")
                      if part.strip()]
        if not tier_names:
            raise ValueError(
                f"empty fallback chain in spec {spec!r}")
        tiers = [make_localizer(head, database=database,
                                training=training, **defaults)]
        for tier_name in tier_names:
            tiers.append(make_localizer(tier_name, database=database,
                                        training=training))
        return FallbackLocalizer(tiers)
    name, overrides = parse_spec(spec)
    try:
        cls, needs_db, needs_training = _LOCALIZERS[name]
    except KeyError:
        known = ", ".join(_LOCALIZERS)
        raise ValueError(
            f"unknown localizer {name!r}; expected one of: {known}"
        ) from None
    kwargs = dict(defaults)
    kwargs.update(overrides)
    if needs_db:
        if database is None:
            raise ValueError(f"localizer {name!r} requires a database")
        args = (database,)
    elif needs_training:
        if training is None:
            raise ValueError(
                f"localizer {name!r} requires wardriving training tuples")
        args = (training,)
    else:  # pragma: no cover - every current entry needs one or the other
        args = ()
    try:
        return cls(*args, **kwargs)
    except TypeError as error:
        raise ValueError(
            f"bad options for localizer {name!r}: {error}") from None


def make_localizers(specs: Sequence[str], database=None, training=None,
                    shared: Optional[Dict[str, object]] = None
                    ) -> "list[Localizer]":
    """Vector convenience: one :func:`make_localizer` call per spec."""
    shared = shared or {}
    return [make_localizer(spec, database=database, training=training,
                           **shared)
            for spec in specs]
