"""AP-Rad: localization when only AP locations are known.

Paper Section III-D: "Algorithm AP-Rad estimates the APs' maximum
transmission distances based on their locations, and then calls M-Loc to
locate a mobile device."  The radius estimation is the LP of
:mod:`repro.localization.radius_lp`; the observation corpus (one Γ per
monitored mobile) doubles as both the LP evidence and the localization
targets.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.knowledge.apdb import ApDatabase
from repro.localization.base import LocalizationEstimate, Localizer
from repro.localization.mloc import MLoc
from repro.localization.radius_lp import RadiusEstimate, RadiusEstimator
from repro.net80211.mac import MacAddress


class APRad(Localizer):
    """The paper's AP-Rad algorithm.

    Typical use::

        aprad = APRad(location_only_db, r_max=150.0)
        aprad.fit(all_observed_sets)        # the LP over co-observations
        estimate = aprad.locate(gamma_k)    # M-Loc with estimated radii

    ``locate`` raises if called before ``fit`` — AP-Rad has no radii
    until the LP has run.
    """

    name = "ap-rad"
    supports_partial_fit = True

    def __init__(self, database: ApDatabase, r_max: float,
                 r_min: float = 1.0, solver: str = "simplex",
                 mloc_mode: str = "vertex",
                 max_separated_neighbors: Optional[int] = None,
                 min_evidence: int = 1,
                 overestimate_factor: float = 1.0,
                 tie_break: float = 0.0):
        self.database = database
        self.r_max = r_max
        self.r_min = r_min
        self.solver = solver
        self.mloc_mode = mloc_mode
        self.max_separated_neighbors = max_separated_neighbors
        self.min_evidence = min_evidence
        self.overestimate_factor = overestimate_factor
        self.tie_break = tie_break
        self._estimator: Optional[RadiusEstimator] = None
        self._fitted_db: Optional[ApDatabase] = None
        self._mloc: Optional[MLoc] = None
        self._last_fit: Optional[RadiusEstimate] = None
        self._fit_generation = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _make_estimator(self) -> RadiusEstimator:
        locations = {record.bssid: record.location
                     for record in self.database}
        return RadiusEstimator(
            locations, r_max=self.r_max, r_min=self.r_min,
            solver=self.solver,
            max_separated_neighbors=self.max_separated_neighbors,
            min_evidence=self.min_evidence,
            overestimate_factor=self.overestimate_factor,
            tie_break=self.tie_break)

    def _apply_fit(self, estimate: RadiusEstimate) -> RadiusEstimate:
        fitted = ApDatabase(
            replace(record, max_range_m=estimate.radii[record.bssid])
            for record in self.database
        )
        self._fitted_db = fitted
        self._mloc = MLoc(fitted, mode=self.mloc_mode)
        self._last_fit = estimate
        self._fit_generation += 1
        return estimate

    def fit(self, observations: Sequence[Iterable[MacAddress]]
            ) -> RadiusEstimate:
        """Run the radius LP over the observation corpus (cold)."""
        self._estimator = self._make_estimator()
        return self._apply_fit(self._estimator.fit(observations))

    def partial_fit(self, observations: Sequence[Iterable[MacAddress]]
                    ) -> RadiusEstimate:
        """Fold new observations in and re-solve incrementally.

        The estimator (and with ``solver="revised"`` its LP basis)
        persists across calls, so each re-fit costs roughly the
        evidence delta instead of the accumulated corpus.  The first
        call on an unfitted instance is equivalent to :meth:`fit`.
        """
        if self._estimator is None:
            return self.fit(observations)
        self._estimator.ingest(observations)
        return self._apply_fit(self._estimator.refit())

    @property
    def is_fitted(self) -> bool:
        """Whether the radius LP has run (``locate`` is usable)."""
        return self._mloc is not None

    @property
    def last_fit(self) -> Optional[RadiusEstimate]:
        """Metadata from the most recent (re-)fit, if any."""
        return self._last_fit

    def cache_key(self) -> str:
        """Re-fitting changes every radius, so it bumps the cache key."""
        return f"{self.name}#fit{self._fit_generation}"

    @property
    def fitted_database(self) -> ApDatabase:
        """The knowledge base with LP-estimated radii filled in."""
        self._require_fit()
        return self._fitted_db

    @property
    def estimated_radii(self) -> Dict[MacAddress, float]:
        self._require_fit()
        return dict(self._last_fit.radii)

    # ------------------------------------------------------------------
    # Localization
    # ------------------------------------------------------------------

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        self._require_fit()
        estimate = self._mloc.locate(observed)
        if estimate is not None:
            estimate.algorithm = self.name
        return estimate

    def fit_and_locate_all(
        self, observations: Sequence[Iterable[MacAddress]]
    ) -> List[Optional[LocalizationEstimate]]:
        """The paper's full AP-Rad flow: one fit, then locate every Γ."""
        self.fit(observations)
        return [self.locate(observed) for observed in observations]

    def _require_fit(self) -> None:
        if self._mloc is None:
            raise RuntimeError(
                "APRad.locate called before fit(); run the radius LP "
                "over the observation corpus first")
