"""Shared localization interfaces and the estimate result type."""

from __future__ import annotations

import abc
import pickle
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro import faults, obs
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection
from repro.knowledge.apdb import ApRecord
from repro.net80211.mac import MacAddress


@dataclass
class LocalizationEstimate:
    """The outcome of localizing one mobile device.

    Attributes
    ----------
    position:
        The estimated location in the planar frame.
    algorithm:
        Which localizer produced this ("m-loc", "ap-rad", ...).
    region:
        The intersected region (when the algorithm is disc-based); this
        is what the paper's "intersected area" and "coverage
        probability" metrics are computed from.
    used_ap_count:
        |Γ ∩ knowledge| — how many known APs constrained the estimate.
    region_empty:
        True when the raw disc intersection was empty (possible with
        noisy knowledge) and a fallback produced the position.
    inflation_factor:
        When radii had to be inflated to make the intersection
        non-empty, the factor used (1.0 = no inflation).
    """

    position: Point
    algorithm: str
    region: Optional[DiscIntersection] = None
    used_ap_count: int = 0
    region_empty: bool = False
    inflation_factor: float = 1.0

    @property
    def area_m2(self) -> float:
        """Area of the intersected region (0 when empty / not disc-based)."""
        if self.region is None:
            return 0.0
        return self.region.area

    def covers(self, truth: Point) -> bool:
        """Whether the intersected region contains the true location.

        This is the paper's coverage-probability event (Fig 16); it is
        evaluated on the *raw* region, so an empty region never covers.
        """
        if self.region is None or self.region_empty:
            return False
        return self.region.contains(truth)

    def error_to(self, truth: Point) -> float:
        """Estimation error in meters."""
        return self.position.distance_to(truth)

    def confidence_radius_m(self, fraction: float = 0.5,
                            samples: int = 4000,
                            seed: int = 0) -> Optional[float]:
        """The radius around the estimate containing ``fraction`` of the
        intersected region's area (a CEP-style uncertainty figure).

        Assumes the device is uniformly distributed over the region —
        the honest prior given only communicability evidence.  Returns
        ``None`` for empty / non-disc-based estimates.  Estimated by
        rejection sampling, deterministic for a given ``seed``.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self.region is None or self.region_empty:
            return None
        min_x, min_y, max_x, max_y = self.region.bounding_box()
        if min_x >= max_x or min_y >= max_y:
            return 0.0
        rng = np.random.default_rng(seed)
        xs = rng.uniform(min_x, max_x, samples)
        ys = rng.uniform(min_y, max_y, samples)
        distances = [
            self.position.distance_to(Point(x, y))
            for x, y in zip(xs, ys)
            if self.region.contains(Point(x, y), tol=0.0)
        ]
        if not distances:
            return 0.0
        return float(np.quantile(distances, fraction))


class Localizer(abc.ABC):
    """The localization protocol every algorithm implements uniformly.

    The full surface (``make_localizer`` constructs any of them from a
    spec string; the engine and experiments program against this
    alone):

    * :meth:`fit` / :meth:`partial_fit` — model estimation over an
      observation corpus.  Stateless algorithms (M-Loc, Centroid,
      Nearest-AP, Weighted-Centroid) inherit no-op defaults and are
      always fitted; AP-Rad / AP-Loc run their radius LP here and set
      :attr:`supports_partial_fit` so the streaming engine knows a
      re-fit schedule is meaningful.
    * :attr:`is_fitted` — whether :meth:`locate` is usable.
    * :meth:`locate` / :meth:`locate_batch` — Γ → estimate, single and
      micro-batch (batch results always match per-Γ ``locate``).
    * :attr:`name` / :meth:`cache_key` — stable identity for reports
      and for the engine's Γ-set memoization.
    """

    #: Short algorithm name used in reports.
    name: str = "localizer"

    #: Whether :meth:`partial_fit` folds evidence into a live model
    #: (AP-Rad / AP-Loc).  The streaming engine only schedules re-fits
    #: for localizers that declare support.
    supports_partial_fit: bool = False

    def fit(self, observations) -> None:
        """Estimate model state from an observation corpus.

        The default is a no-op: stateless localizers need no model.
        Fitted algorithms (AP-Rad, AP-Loc) override this and return
        their fit metadata.
        """
        return None

    def partial_fit(self, observations) -> None:
        """Fold new observations into the model incrementally.

        Default: a no-op, mirroring :meth:`fit`.  Localizers that
        support true incremental re-fitting override this and set
        :attr:`supports_partial_fit`.
        """
        return None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`locate` may be called (default: always)."""
        return True

    def cache_key(self) -> str:
        """Stable identity for Γ-set memoization (``repro.engine``).

        Two localizers may share a key only if they answer identically
        for every Γ.  Anything that changes the Γ → estimate mapping
        in place (a re-fit, a knowledge-base swap) must change the key
        — AP-Rad bumps a fit generation — or the cache holding old
        entries must be invalidated explicitly.
        """
        return self.name

    @abc.abstractmethod
    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        """Estimate a device's location from its communicable-AP set Γ.

        Returns ``None`` when no known AP appears in Γ — the device is
        outside the adversary's knowledge and cannot be positioned.
        """

    def locate_many(self, observations: Iterable[Iterable[MacAddress]]
                    ) -> List[Optional[LocalizationEstimate]]:
        """Vector convenience over :meth:`locate`."""
        return [self.locate(observed) for observed in observations]

    def locate_batch(self, observations: Iterable[Iterable[MacAddress]],
                     executor=None, supervisor=None
                     ) -> List[Optional[LocalizationEstimate]]:
        """Localize a micro-batch of Γ sets in one shot.

        Results are returned in submission order regardless of how the
        work is scheduled, so callers (the streaming engine's batch
        flush) stay deterministic.

        Parameters
        ----------
        observations:
            One Γ per device.
        executor:
            An optional ``concurrent.futures`` executor (typically a
            ``ProcessPoolExecutor``) to fan the batch across.  The
            batch is split into one contiguous chunk per worker — each
            chunk ships a single pickled copy of the localizer — and
            chunk results are concatenated in submission order.
        supervisor:
            An optional :class:`repro.faults.WorkerSupervisor`.  With
            one, chunk futures are collected under its per-chunk
            timeout and bounded re-dispatch policy (consulting its
            ``current_executor`` after a pool replacement); without
            one, a lost worker blocks forever — acceptable for batch
            scripts, not for a streaming campaign.

        Subclasses that can vectorize across a batch override
        :meth:`_locate_batch_local` (M-Loc batches the disc-set
        geometry through the NumPy kernels); the fan-out logic here is
        shared.
        """
        gammas = [list(observed) for observed in observations]
        if executor is None or len(gammas) <= 1:
            faults.hook("worker.chunk")
            results = self._locate_batch_local(gammas)
            _count_batch(self.name, results)
            return results
        workers = max(1, int(getattr(executor, "_max_workers", 1)))
        chunk = -(-len(gammas) // workers)  # ceil division
        chunks = [gammas[s:s + chunk]
                  for s in range(0, len(gammas), chunk)]
        # One localizer pickle per call, not per chunk: submit() copies
        # the bytes instead of re-walking the AP database N times, and
        # worker processes memoize the decode across calls (the engine
        # sends the same localizer every micro-batch).
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

        def submit(chunk_gammas):
            faults.hook("worker.chunk")
            pool = executor
            if supervisor is not None \
                    and supervisor.current_executor is not None:
                pool = supervisor.current_executor() or executor
            return pool.submit(_locate_batch_chunk, payload, chunk_gammas)

        if supervisor is not None:
            outcomes = supervisor.run(submit, chunks)
        else:
            futures = [submit(chunk_gammas) for chunk_gammas in chunks]
            outcomes = [future.result() for future in futures]
        results: List[Optional[LocalizationEstimate]] = []
        registry = obs.current_registry()
        for chunk_results, worker_metrics in outcomes:
            results.extend(chunk_results)
            # Chunks run against worker-local registries; folding their
            # snapshots back in *submission order* keeps the merged
            # totals deterministic whatever the pool's scheduling was.
            registry.merge(worker_metrics)
        return results

    def _locate_batch_local(self, gammas: List[List[MacAddress]]
                            ) -> List[Optional[LocalizationEstimate]]:
        """In-process batch localization; the override point."""
        return [self.locate(gamma) for gamma in gammas]


def _count_batch(algorithm: str,
                 results: List[Optional[LocalizationEstimate]]) -> None:
    """The shared instrumentation seam for every localizer's batch path."""
    registry = obs.current_registry()
    located = sum(1 for estimate in results if estimate is not None)
    if located:
        registry.counter("repro.localization.located",
                         algorithm=algorithm).inc(located)
    missed = len(results) - located
    if missed:
        registry.counter("repro.localization.unlocatable",
                         algorithm=algorithm).inc(missed)


#: Single-entry per-process cache of the last decoded localizer.  Keyed
#: by the exact payload bytes, so a changed localizer (re-fit, new
#: knowledge base) can never be served stale.
_chunk_localizer: List[Optional[tuple]] = [None]


def _locate_batch_chunk(payload: bytes,
                        gammas: List[List[MacAddress]]
                        ) -> Tuple[List[Optional[LocalizationEstimate]],
                                   dict]:
    """Module-level trampoline so executor tasks pickle cleanly.

    Returns ``(estimates, metrics_snapshot)``: the chunk runs against a
    fresh worker-local registry whose snapshot the parent merges, so
    instrumentation deep in the geometry/LP layers survives the process
    boundary without any shared state.
    """
    cached = _chunk_localizer[0]
    if cached is None or cached[0] != payload:
        cached = (payload, pickle.loads(payload))
        _chunk_localizer[0] = cached
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        results = cached[1]._locate_batch_local(gammas)
        _count_batch(cached[1].name, results)
    return results, registry.snapshot()


def known_records(database, observed: Iterable[MacAddress]) -> List[ApRecord]:
    """Γ restricted to APs present in the knowledge base, stable order."""
    return database.records_for(observed, skip_unknown=True)
