"""Shared localization interfaces and the estimate result type."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection
from repro.knowledge.apdb import ApRecord
from repro.net80211.mac import MacAddress


@dataclass
class LocalizationEstimate:
    """The outcome of localizing one mobile device.

    Attributes
    ----------
    position:
        The estimated location in the planar frame.
    algorithm:
        Which localizer produced this ("m-loc", "ap-rad", ...).
    region:
        The intersected region (when the algorithm is disc-based); this
        is what the paper's "intersected area" and "coverage
        probability" metrics are computed from.
    used_ap_count:
        |Γ ∩ knowledge| — how many known APs constrained the estimate.
    region_empty:
        True when the raw disc intersection was empty (possible with
        noisy knowledge) and a fallback produced the position.
    inflation_factor:
        When radii had to be inflated to make the intersection
        non-empty, the factor used (1.0 = no inflation).
    """

    position: Point
    algorithm: str
    region: Optional[DiscIntersection] = None
    used_ap_count: int = 0
    region_empty: bool = False
    inflation_factor: float = 1.0

    @property
    def area_m2(self) -> float:
        """Area of the intersected region (0 when empty / not disc-based)."""
        if self.region is None:
            return 0.0
        return self.region.area

    def covers(self, truth: Point) -> bool:
        """Whether the intersected region contains the true location.

        This is the paper's coverage-probability event (Fig 16); it is
        evaluated on the *raw* region, so an empty region never covers.
        """
        if self.region is None or self.region_empty:
            return False
        return self.region.contains(truth)

    def error_to(self, truth: Point) -> float:
        """Estimation error in meters."""
        return self.position.distance_to(truth)

    def confidence_radius_m(self, fraction: float = 0.5,
                            samples: int = 4000,
                            seed: int = 0) -> Optional[float]:
        """The radius around the estimate containing ``fraction`` of the
        intersected region's area (a CEP-style uncertainty figure).

        Assumes the device is uniformly distributed over the region —
        the honest prior given only communicability evidence.  Returns
        ``None`` for empty / non-disc-based estimates.  Estimated by
        rejection sampling, deterministic for a given ``seed``.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self.region is None or self.region_empty:
            return None
        min_x, min_y, max_x, max_y = self.region.bounding_box()
        if min_x >= max_x or min_y >= max_y:
            return 0.0
        rng = np.random.default_rng(seed)
        xs = rng.uniform(min_x, max_x, samples)
        ys = rng.uniform(min_y, max_y, samples)
        distances = [
            self.position.distance_to(Point(x, y))
            for x, y in zip(xs, ys)
            if self.region.contains(Point(x, y), tol=0.0)
        ]
        if not distances:
            return 0.0
        return float(np.quantile(distances, fraction))


class Localizer(abc.ABC):
    """Interface all localization algorithms implement."""

    #: Short algorithm name used in reports.
    name: str = "localizer"

    def cache_key(self) -> str:
        """Stable identity for Γ-set memoization (``repro.engine``).

        Two localizers may share a key only if they answer identically
        for every Γ.  Anything that changes the Γ → estimate mapping
        in place (a re-fit, a knowledge-base swap) must change the key
        — AP-Rad bumps a fit generation — or the cache holding old
        entries must be invalidated explicitly.
        """
        return self.name

    @abc.abstractmethod
    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        """Estimate a device's location from its communicable-AP set Γ.

        Returns ``None`` when no known AP appears in Γ — the device is
        outside the adversary's knowledge and cannot be positioned.
        """

    def locate_many(self, observations: Iterable[Iterable[MacAddress]]
                    ) -> List[Optional[LocalizationEstimate]]:
        """Vector convenience over :meth:`locate`."""
        return [self.locate(observed) for observed in observations]


def known_records(database, observed: Iterable[MacAddress]) -> List[ApRecord]:
    """Γ restricted to APs present in the knowledge base, stable order."""
    return database.records_for(observed, skip_unknown=True)
