"""Graceful degradation: a chain of localizers tried in order.

A long-running campaign must keep answering even when the preferred
algorithm cannot: AP-Rad's radius LP may be mid-re-fit (unfitted), a
poisoned Γ may make its solve blow up, noisy knowledge may leave no
known AP in Γ.  :class:`FallbackLocalizer` wraps an ordered tier list
(e.g. AP-Rad → M-Loc → Centroid) and answers from the first tier that

* is fitted,
* does not raise a typed :class:`~repro.faults.SolverError`
  (which covers ``InfeasibleError``/``UnboundedError``), and
* returns a non-``None`` estimate (an empty Γ∩knowledge intersection
  yields ``None``, the "empty intersection" degradation trigger).

Which tier answered is recorded per call (:attr:`last_tier`) and
counted in the current metrics registry under
``repro.localization.fallback.answered{tier=...,rank=...}`` — plus
``...fallback.degraded`` whenever a non-primary tier had to answer —
so a run's degradation history shows up in ``marauder metrics``.

Construction composes through :func:`make_localizer` specs with the
``+fallback:`` suffix: ``"ap-rad+fallback:m-loc,centroid"``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro import obs
from repro.faults import SolverError
from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.mac import MacAddress


class FallbackLocalizer(Localizer):
    """Answer from the first healthy tier of an ordered localizer chain."""

    def __init__(self, tiers: Sequence[Localizer]):
        tiers = list(tiers)
        if not tiers:
            raise ValueError("fallback chain needs at least one tier")
        self.tiers: List[Localizer] = tiers
        self.name = "fallback(" + ">".join(t.name for t in tiers) + ")"
        self.supports_partial_fit = any(t.supports_partial_fit
                                        for t in tiers)
        #: Name of the tier that produced the most recent estimate
        #: (``None`` before the first answer or when all tiers passed).
        self.last_tier: Optional[str] = None

    @property
    def primary(self) -> Localizer:
        return self.tiers[0]

    # ------------------------------------------------------------------
    # Model estimation: delegated to every tier that has a model.
    # ------------------------------------------------------------------

    def fit(self, observations):
        outcome = None
        for tier in self.tiers:
            result = tier.fit(observations)
            if outcome is None:
                outcome = result
        return outcome

    def partial_fit(self, observations):
        outcome = None
        for tier in self.tiers:
            if not tier.supports_partial_fit:
                continue
            result = tier.partial_fit(observations)
            if outcome is None:
                outcome = result
        return outcome

    @property
    def is_fitted(self) -> bool:
        """Usable as soon as *any* tier can answer."""
        return any(tier.is_fitted for tier in self.tiers)

    def cache_key(self) -> str:
        """Composite of the tier keys: a re-fit anywhere in the chain
        must invalidate memoized chain answers."""
        return "|".join(tier.cache_key() for tier in self.tiers)

    # ------------------------------------------------------------------
    # Localization
    # ------------------------------------------------------------------

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        gamma = list(observed)
        registry = obs.current_registry()
        for rank, tier in enumerate(self.tiers):
            if not tier.is_fitted:
                registry.counter("repro.localization.fallback.unfitted",
                                 tier=tier.name).inc()
                continue
            try:
                estimate = tier.locate(gamma)
            except SolverError as error:
                registry.counter("repro.localization.fallback.errors",
                                 tier=tier.name,
                                 error=type(error).__name__).inc()
                continue
            if estimate is None:
                registry.counter("repro.localization.fallback.empty",
                                 tier=tier.name).inc()
                continue
            self.last_tier = tier.name
            registry.counter("repro.localization.fallback.answered",
                             tier=tier.name, rank=rank).inc()
            if rank > 0:
                registry.counter(
                    "repro.localization.fallback.degraded").inc()
            return estimate
        self.last_tier = None
        registry.counter("repro.localization.fallback.exhausted").inc()
        return None
