"""AP-Loc: localization with no prior AP knowledge.

Paper Section III-C3 / III-D: when no AP information is available, the
adversary first collects training tuples by wardriving, then

    1. locates each AP "by using, again, the disc-intersection
       approach": intersect discs centered at the *training locations*
       that observed the AP, using "a theoretical upper bound as the
       radius", and take the centroid of the intersected area;
    2. estimates radii with the AP-Rad linear program;
    3. calls M-Loc.

The training-disc radius upper bound plays the role of Theorem 3's
``R >= r``: overestimation keeps the true AP inside the intersection at
the cost of a larger region, which shrinks as tuples accumulate — the
paper's Fig 17 (error vs. number of training tuples).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.geometry.circle import Circle
from repro.geometry.point import Point, mean_point
from repro.geometry.region import DiscIntersection
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.knowledge.wardrive import (
    TrainingTuple,
    aps_in_training_data,
    tuples_observing,
)
from repro.localization.aprad import APRad
from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid


class APLoc(Localizer):
    """The paper's AP-Loc algorithm.

    Parameters
    ----------
    training:
        The wardriving tuples (location, observed AP set).
    training_radius_m:
        The "theoretical upper bound" used as the disc radius around
        each training location when placing APs.
    r_max / r_min / solver:
        Passed through to the AP-Rad radius LP.
    refine_iterations:
        Extension beyond the paper: after the radius LP, re-place each
        AP using its *estimated* radius as the training-disc radius
        (instead of the loose theoretical upper bound) and re-run the
        LP.  A tighter radius shrinks the placement intersection, so
        placement and radii improve together; an AP whose refined
        intersection comes up empty keeps its previous placement.

    Call :meth:`fit` with the attack-phase observation corpus before
    :meth:`locate`.
    """

    name = "ap-loc"

    def __init__(self, training: Sequence[TrainingTuple],
                 training_radius_m: float, r_max: float,
                 r_min: float = 1.0, solver: str = "simplex",
                 mloc_mode: str = "vertex",
                 max_separated_neighbors: Optional[int] = None,
                 min_evidence: int = 1,
                 overestimate_factor: float = 1.0,
                 refine_iterations: int = 0):
        if training_radius_m <= 0.0:
            raise ValueError(
                f"training radius must be > 0, got {training_radius_m}")
        self.training = list(training)
        self.training_radius_m = training_radius_m
        self._aprad = None  # built lazily in fit()
        self._r_max = r_max
        self._r_min = r_min
        self._solver = solver
        self._mloc_mode = mloc_mode
        self._max_separated_neighbors = max_separated_neighbors
        self._min_evidence = min_evidence
        self._overestimate_factor = overestimate_factor
        if refine_iterations < 0:
            raise ValueError(
                f"refine_iterations must be >= 0, got {refine_iterations}")
        self.refine_iterations = refine_iterations
        self._estimated_locations: Optional[Dict[MacAddress, Point]] = None

    # ------------------------------------------------------------------
    # Step 1: AP placement from training tuples
    # ------------------------------------------------------------------

    def estimate_ap_locations(self) -> Dict[MacAddress, Point]:
        """Place every AP seen in training by disc intersection.

        For each AP: intersect discs of radius ``training_radius_m``
        centered at the training locations that observed it, and take
        the centroid of the intersected area.  If the intersection is
        empty (an over-tight radius bound), fall back to the mean of the
        observing training locations.
        """
        if self._estimated_locations is not None:
            return dict(self._estimated_locations)
        locations: Dict[MacAddress, Point] = {}
        for bssid in sorted(aps_in_training_data(self.training)):
            observers = tuples_observing(self.training, bssid)
            discs = [Circle(entry.location, self.training_radius_m)
                     for entry in observers]
            region = DiscIntersection(discs)
            centroid = region.centroid()
            if centroid is None:
                centroid = mean_point(e.location for e in observers)
            locations[bssid] = centroid
        self._estimated_locations = locations
        return dict(locations)

    # ------------------------------------------------------------------
    # Steps 2–3: AP-Rad then M-Loc
    # ------------------------------------------------------------------

    def fit(self, observations: Sequence[Iterable[MacAddress]]):
        """Build the estimated AP database and run the radius LP.

        With ``refine_iterations > 0``, placement and radius estimation
        alternate: LP radii → tighter placement discs → better
        locations → re-run the LP.
        """
        locations = self.estimate_ap_locations()
        estimate = None
        for iteration in range(self.refine_iterations + 1):
            database = ApDatabase(
                ApRecord(bssid=bssid, ssid=Ssid(""), location=location)
                for bssid, location in locations.items()
            )
            self._aprad = APRad(
                database, r_max=self._r_max, r_min=self._r_min,
                solver=self._solver, mloc_mode=self._mloc_mode,
                max_separated_neighbors=self._max_separated_neighbors,
                min_evidence=self._min_evidence,
                overestimate_factor=self._overestimate_factor)
            estimate = self._aprad.fit(observations)
            if iteration < self.refine_iterations:
                locations = self._refine_locations(locations,
                                                   estimate.radii)
        self._estimated_locations = locations
        self._fit_generation = getattr(self, "_fit_generation", 0) + 1
        return estimate

    def cache_key(self) -> str:
        """Re-fitting moves APs and radii, so it bumps the cache key."""
        return f"{self.name}#fit{getattr(self, '_fit_generation', 0)}"

    def _refine_locations(self, previous: Dict[MacAddress, Point],
                          radii: Dict[MacAddress, float]
                          ) -> Dict[MacAddress, Point]:
        """Re-place APs with their estimated radii as disc radii."""
        refined: Dict[MacAddress, Point] = {}
        for bssid, location in previous.items():
            radius = radii.get(bssid)
            if radius is None or radius >= self.training_radius_m:
                refined[bssid] = location
                continue
            observers = tuples_observing(self.training, bssid)
            discs = [Circle(entry.location, radius)
                     for entry in observers]
            region = DiscIntersection(discs)
            centroid = region.centroid()
            refined[bssid] = centroid if centroid is not None else location
        return refined

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        if self._aprad is None:
            raise RuntimeError(
                "APLoc.locate called before fit(); run fit() with the "
                "attack-phase observations first")
        estimate = self._aprad.locate(observed)
        if estimate is not None:
            estimate.algorithm = self.name
        return estimate

    def fit_and_locate_all(
        self, observations: Sequence[Iterable[MacAddress]]
    ) -> List[Optional[LocalizationEstimate]]:
        """Full AP-Loc flow over an observation corpus."""
        self.fit(observations)
        return [self.locate(observed) for observed in observations]
