"""AP-Loc: localization with no prior AP knowledge.

Paper Section III-C3 / III-D: when no AP information is available, the
adversary first collects training tuples by wardriving, then

    1. locates each AP "by using, again, the disc-intersection
       approach": intersect discs centered at the *training locations*
       that observed the AP, using "a theoretical upper bound as the
       radius", and take the centroid of the intersected area;
    2. estimates radii with the AP-Rad linear program;
    3. calls M-Loc.

The training-disc radius upper bound plays the role of Theorem 3's
``R >= r``: overestimation keeps the true AP inside the intersection at
the cost of a larger region, which shrinks as tuples accumulate — the
paper's Fig 17 (error vs. number of training tuples).

Placement cost: a single pass builds an inverted index (BSSID → the
training locations that observed it), replacing the previous per-AP
scan over the whole corpus, and each AP's disc intersection prunes its
candidate pairs through a :class:`~repro.geometry.grid.SpatialGrid` —
pairs of training discs farther apart than the radius sum cannot
intersect, so skipping them yields exactly the same vertex set Δ.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.geometry import kernels
from repro.geometry.circle import Circle
from repro.geometry.grid import SpatialGrid
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.knowledge.wardrive import TrainingTuple
from repro.localization.aprad import APRad
from repro.localization.base import LocalizationEstimate, Localizer
from repro.localization.radius_lp import RadiusEstimate
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid


class APLoc(Localizer):
    """The paper's AP-Loc algorithm.

    Parameters
    ----------
    training:
        The wardriving tuples (location, observed AP set).
    training_radius_m:
        The "theoretical upper bound" used as the disc radius around
        each training location when placing APs.
    r_max / r_min / solver:
        Passed through to the AP-Rad radius LP.
    refine_iterations:
        Extension beyond the paper: after the radius LP, re-place each
        AP using its *estimated* radius as the training-disc radius
        (instead of the loose theoretical upper bound) and re-run the
        LP.  A tighter radius shrinks the placement intersection, so
        placement and radii improve together; an AP whose refined
        intersection comes up empty keeps its previous placement.

    Call :meth:`fit` with the attack-phase observation corpus before
    :meth:`locate`.
    """

    name = "ap-loc"
    supports_partial_fit = True

    def __init__(self, training: Sequence[TrainingTuple],
                 training_radius_m: float, r_max: float,
                 r_min: float = 1.0, solver: str = "simplex",
                 mloc_mode: str = "vertex",
                 max_separated_neighbors: Optional[int] = None,
                 min_evidence: int = 1,
                 overestimate_factor: float = 1.0,
                 refine_iterations: int = 0,
                 tie_break: float = 0.0):
        if training_radius_m <= 0.0:
            raise ValueError(
                f"training radius must be > 0, got {training_radius_m}")
        self.training = list(training)
        self.training_radius_m = training_radius_m
        self._aprad: Optional[APRad] = None  # built lazily in fit()
        self._r_max = r_max
        self._r_min = r_min
        self._solver = solver
        self._mloc_mode = mloc_mode
        self._max_separated_neighbors = max_separated_neighbors
        self._min_evidence = min_evidence
        self._overestimate_factor = overestimate_factor
        self._tie_break = tie_break
        if refine_iterations < 0:
            raise ValueError(
                f"refine_iterations must be >= 0, got {refine_iterations}")
        self.refine_iterations = refine_iterations
        self._estimated_locations: Optional[Dict[MacAddress, Point]] = None
        self._training_coords = np.array(
            [entry.location.as_tuple() for entry in self.training],
            dtype=np.float64).reshape(len(self.training), 2)
        self._observer_index: Optional[Dict[MacAddress, np.ndarray]] = None
        self._fit_generation = 0

    # ------------------------------------------------------------------
    # Step 1: AP placement from training tuples
    # ------------------------------------------------------------------

    def _observers_of(self) -> Dict[MacAddress, np.ndarray]:
        """BSSID → indices of the training tuples that observed it.

        Built in one pass over the corpus; the previous implementation
        re-scanned all T tuples for each of the A APs (O(A·T)).
        """
        if self._observer_index is None:
            collected: Dict[MacAddress, List[int]] = {}
            for index, entry in enumerate(self.training):
                for bssid in entry.observed:
                    collected.setdefault(bssid, []).append(index)
            self._observer_index = {
                bssid: np.array(indices, dtype=np.int64)
                for bssid, indices in collected.items()
            }
        return self._observer_index

    def _place_ap(self, observer_rows: np.ndarray,
                  radius: float) -> Optional[Point]:
        """Centroid of the observing discs' intersection, or None.

        Equal-radius discs at the observing training locations.  The
        candidate vertex pairs are pruned through a spatial grid:
        discs farther apart than ``2 * radius`` (the radius sum)
        intersect nowhere, so only in-range pairs are handed to the
        geometry kernel — the resulting Δ is identical to the all-pairs
        computation.  A bounding-box check catches provably-empty
        regions (two observers farther apart than any shared point
        allows) before any pair work.
        """
        points = self._training_coords[observer_rows]
        count = len(points)
        discs = [Circle(Point(x, y), radius) for x, y in points]
        if count == 1:
            return DiscIntersection(discs).centroid()
        # Tolerances exactly as DiscIntersection derives them, so the
        # precomputed Δ matches what the region would compute itself.
        tol = 1e-9 * max(1.0, radius)
        spans = points.max(axis=0) - points.min(axis=0)
        if float(spans.max()) > 2.0 * radius + 10.0 * tol:
            # The two extreme observers are farther apart than 2r even
            # after every tolerance: their discs are disjoint, the
            # intersection is empty, and the caller's fallback applies.
            return None
        cutoff = 2.0 * radius + tol
        grid = SpatialGrid(points, cell_size=cutoff)
        pair_i, pair_j, _ = grid.pairs_within(cutoff, strict=False)
        radii = np.full(count, radius, dtype=np.float64)
        vertices = kernels.intersection_vertices_pruned(
            points, radii, pair_i, pair_j,
            contain_slack=tol, dedupe_tol=tol * 10.0)
        region = DiscIntersection(
            discs, precomputed_vertices=kernels.array_as_points(vertices))
        return region.centroid()

    def estimate_ap_locations(self) -> Dict[MacAddress, Point]:
        """Place every AP seen in training by disc intersection.

        For each AP: intersect discs of radius ``training_radius_m``
        centered at the training locations that observed it, and take
        the centroid of the intersected area.  If the intersection is
        empty (an over-tight radius bound), fall back to the mean of the
        observing training locations.
        """
        if self._estimated_locations is not None:
            return dict(self._estimated_locations)
        observers = self._observers_of()
        locations: Dict[MacAddress, Point] = {}
        for bssid in sorted(observers):
            rows = observers[bssid]
            centroid = self._place_ap(rows, self.training_radius_m)
            if centroid is None:
                mean = self._training_coords[rows].mean(axis=0)
                centroid = Point(float(mean[0]), float(mean[1]))
            locations[bssid] = centroid
        self._estimated_locations = locations
        return dict(locations)

    # ------------------------------------------------------------------
    # Steps 2–3: AP-Rad then M-Loc
    # ------------------------------------------------------------------

    def fit(self, observations: Sequence[Iterable[MacAddress]]):
        """Build the estimated AP database and run the radius LP.

        With ``refine_iterations > 0``, placement and radius estimation
        alternate: LP radii → tighter placement discs → better
        locations → re-run the LP.
        """
        locations = self.estimate_ap_locations()
        estimate = None
        for iteration in range(self.refine_iterations + 1):
            database = ApDatabase(
                ApRecord(bssid=bssid, ssid=Ssid(""), location=location)
                for bssid, location in locations.items()
            )
            self._aprad = APRad(
                database, r_max=self._r_max, r_min=self._r_min,
                solver=self._solver, mloc_mode=self._mloc_mode,
                max_separated_neighbors=self._max_separated_neighbors,
                min_evidence=self._min_evidence,
                overestimate_factor=self._overestimate_factor,
                tie_break=self._tie_break)
            estimate = self._aprad.fit(observations)
            if iteration < self.refine_iterations:
                locations = self._refine_locations(locations,
                                                   estimate.radii)
        self._estimated_locations = locations
        self._fit_generation += 1
        return estimate

    def partial_fit(self, observations: Sequence[Iterable[MacAddress]]
                    ) -> RadiusEstimate:
        """Fold new attack-phase observations into the radius LP.

        AP placements stay as fitted (they derive from the training
        corpus, which does not grow here); the inner AP-Rad re-fit is
        incremental, warm-starting from its previous basis when the
        solver supports it.  Raises if :meth:`fit` has not run.
        """
        if self._aprad is None:
            raise RuntimeError(
                "APLoc.partial_fit called before fit(); run fit() with "
                "the initial observation corpus first")
        estimate = self._aprad.partial_fit(observations)
        self._fit_generation += 1
        return estimate

    @property
    def is_fitted(self) -> bool:
        return self._aprad is not None and self._aprad.is_fitted

    def cache_key(self) -> str:
        """Re-fitting moves APs and radii, so it bumps the cache key."""
        return f"{self.name}#fit{self._fit_generation}"

    def _refine_locations(self, previous: Dict[MacAddress, Point],
                          radii: Dict[MacAddress, float]
                          ) -> Dict[MacAddress, Point]:
        """Re-place APs with their estimated radii as disc radii."""
        observers = self._observers_of()
        refined: Dict[MacAddress, Point] = {}
        for bssid, location in previous.items():
            radius = radii.get(bssid)
            if radius is None or radius >= self.training_radius_m:
                refined[bssid] = location
                continue
            centroid = self._place_ap(observers[bssid], radius)
            refined[bssid] = centroid if centroid is not None else location
        return refined

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        if self._aprad is None:
            raise RuntimeError(
                "APLoc.locate called before fit(); run fit() with the "
                "attack-phase observations first")
        estimate = self._aprad.locate(observed)
        if estimate is not None:
            estimate.algorithm = self.name
        return estimate

    def fit_and_locate_all(
        self, observations: Sequence[Iterable[MacAddress]]
    ) -> List[Optional[LocalizationEstimate]]:
        """Full AP-Loc flow over an observation corpus."""
        self.fit(observations)
        return [self.locate(observed) for observed in observations]
