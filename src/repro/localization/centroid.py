"""The Centroid baseline (the paper's existing comparison approach).

"the previous approach of estimating a mobile device's location as the
centroid of communicable APs (i.e., x = Σx_i/n, y = Σy_i/n)".  The paper
shows this is vulnerable to biased AP distributions (Fig 4), where extra
clustered APs *increase* its error while disc-intersection can only
improve.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.geometry.point import mean_point
from repro.knowledge.apdb import ApDatabase
from repro.localization.base import (
    LocalizationEstimate,
    Localizer,
    known_records,
)
from repro.net80211.mac import MacAddress


class CentroidLocalizer(Localizer):
    """Estimate a mobile's location as the mean of its APs' locations."""

    name = "centroid"

    def __init__(self, database: ApDatabase):
        self.database = database

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        records = known_records(self.database, observed)
        if not records:
            return None
        position = mean_point(record.location for record in records)
        return LocalizationEstimate(
            position=position,
            algorithm=self.name,
            region=None,
            used_ap_count=len(records),
        )
