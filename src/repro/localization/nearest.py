"""The Closest-AP baseline.

The paper's category (iv): "directly using the location of APs or
sensors with the strongest signal strength", which it criticizes for
"poor localization accuracy due to the large coverage area of an AP".
Without per-mobile signal strength (the whole point of the attack is not
needing it), the best single-AP proxy is the *most constraining* AP —
the one with the smallest known coverage radius among Γ.  When no radii
are known at all, any member of Γ is as good as another and we take the
first in stable order.

The paper notes the disc-intersection approach degenerates to this when
k = 1: "the intersected area is the maximum coverage area of the AP, and
the disc-intersection approach is essentially reduced to the nearest AP
approach."
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.geometry.region import DiscIntersection
from repro.knowledge.apdb import ApDatabase
from repro.localization.base import (
    LocalizationEstimate,
    Localizer,
    known_records,
)
from repro.net80211.mac import MacAddress


class NearestApLocalizer(Localizer):
    """Estimate a mobile's location as one AP's location."""

    name = "nearest-ap"

    def __init__(self, database: ApDatabase):
        self.database = database

    def locate(self, observed: Iterable[MacAddress]
               ) -> Optional[LocalizationEstimate]:
        records = known_records(self.database, observed)
        if not records:
            return None
        with_range = [r for r in records if r.max_range_m is not None]
        if with_range:
            chosen = min(with_range, key=lambda r: r.max_range_m)
            region = DiscIntersection([chosen.coverage_disc()])
        else:
            chosen = records[0]
            region = None
        return LocalizationEstimate(
            position=chosen.location,
            algorithm=self.name,
            region=region,
            used_ap_count=len(records),
        )
