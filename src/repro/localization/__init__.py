"""Malicious localization — the paper's primary contribution.

Given the set Γ of APs a mobile device was observed communicating with,
estimate the device's location:

* :class:`MLoc` — AP locations and maximum transmission distances known
  (disc intersection, centroid of the intersection vertices),
* :class:`APRad` — only AP locations known; estimates every AP's radius
  by linear programming over co-observation constraints, then M-Loc,
* :class:`APLoc` — no AP knowledge; estimates AP locations from
  wardriving training tuples by disc intersection, then AP-Rad,
* :class:`CentroidLocalizer` / :class:`NearestApLocalizer` — the prior
  approaches the paper compares against.

All localizers share the :class:`LocalizationEstimate` result type,
which carries the estimated point, the intersected region (for the
area / coverage-probability metrics of Figs 15–16), and diagnostics —
and the uniform :class:`Localizer` protocol (fit / partial_fit /
is_fitted / locate / locate_batch / name / cache_key), so
:func:`make_localizer` can build any of them from a spec string.
"""

from repro.localization.base import LocalizationEstimate, Localizer
from repro.localization.mloc import MLoc
from repro.localization.radius_lp import RadiusEstimator
from repro.localization.aprad import APRad
from repro.localization.aploc import APLoc
from repro.localization.centroid import CentroidLocalizer
from repro.localization.fallback import FallbackLocalizer
from repro.localization.nearest import NearestApLocalizer
from repro.localization.weighted import WeightedCentroidLocalizer
from repro.localization.factory import (
    localizer_names,
    make_localizer,
    make_localizers,
)

__all__ = [
    "Localizer",
    "LocalizationEstimate",
    "MLoc",
    "APRad",
    "APLoc",
    "RadiusEstimator",
    "CentroidLocalizer",
    "FallbackLocalizer",
    "NearestApLocalizer",
    "WeightedCentroidLocalizer",
    "make_localizer",
    "make_localizers",
    "localizer_names",
]
