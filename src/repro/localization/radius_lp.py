"""LP-based estimation of AP maximum transmission distances (AP-Rad core).

Paper Section III-C2: "if a mobile device can observe two APs within a
short period of time, then the maximum transmission distances of the two
APs, r1 and r2, must satisfy r1 + r2 >= d12 ... if over a sufficient
amount of time, the two APs have never been observed by the same mobile
device, then it is highly likely that r1 + r2 < d12. ... we would like
to find a solution in the feasibility region which maximizes Σ r_j".

Practical deviations (documented in DESIGN.md):

* Strict inequalities are not expressible in an LP; the never-co-observed
  constraints become ``r_i + r_j <= d_ij - margin`` with a small margin.
* Never-co-observed constraints are only *likely* true, and real
  observation sets can make the program infeasible.  We keep the
  co-observation constraints hard (they are direct evidence) and soften
  the never-co-observed ones with penalized slack variables, so the
  program is always feasible and slack is only used where the evidence
  conflicts.
* Pairs farther apart than ``2 * r_max`` are skipped: with radii bounded
  by ``r_max`` their "<" constraints can never bind, and skipping them
  keeps the LP at a few thousand rows for campus-scale AP counts.
* A co-observed pair with ``d_ij > 2 * r_max`` (possible with noisy
  locations) has its ">=" right-hand side clamped to ``2 * r_max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry import kernels
from repro.geometry.point import Point
from repro.lp.problem import LpProblem
from repro.net80211.mac import MacAddress

#: Objective weight penalizing slack on never-co-observed constraints.
_SLACK_PENALTY = 10.0
#: Margin standing in for the strict "<" of the paper.
_STRICT_MARGIN_M = 1e-6


@dataclass
class RadiusEstimate:
    """The result of an LP radius fit."""

    radii: Dict[MacAddress, float]
    co_observed_pairs: int
    separated_pairs: int
    total_slack: float

    def radius_of(self, bssid: MacAddress) -> float:
        return self.radii[bssid]


class RadiusEstimator:
    """Estimates every AP's maximum transmission distance by LP.

    Parameters
    ----------
    locations:
        Known AP locations (the AP-Rad input).
    r_max:
        Upper bound on any radius — the theoretical maximum transmission
        distance (Theorem 1 provides one; 802.11g APs rarely exceed a
        few hundred meters outdoors).
    r_min:
        Lower bound; a working AP has some nonzero range.
    solver:
        ``"simplex"`` (our solver) or ``"scipy"``.
    """

    def __init__(self, locations: Dict[MacAddress, Point], r_max: float,
                 r_min: float = 1.0, solver: str = "simplex",
                 max_separated_neighbors: Optional[int] = None,
                 min_evidence: int = 1,
                 overestimate_factor: float = 1.0):
        if r_max <= 0.0:
            raise ValueError(f"r_max must be > 0, got {r_max}")
        if not 0.0 <= r_min <= r_max:
            raise ValueError(
                f"need 0 <= r_min <= r_max, got r_min={r_min}, r_max={r_max}")
        if max_separated_neighbors is not None and max_separated_neighbors < 1:
            raise ValueError("max_separated_neighbors must be >= 1")
        self.locations = dict(locations)
        self.r_max = r_max
        self.r_min = r_min
        if min_evidence < 1:
            raise ValueError(f"min_evidence must be >= 1, got {min_evidence}")
        self.solver = solver
        self.max_separated_neighbors = max_separated_neighbors
        #: "if over a *sufficient amount of time*, the two APs have
        #: never been observed by the same mobile device" — a
        #: never-co-observed "<" constraint is only added when both APs
        #: individually appeared in at least ``min_evidence``
        #: observations, i.e. absence of co-observation is meaningful.
        self.min_evidence = min_evidence
        if overestimate_factor < 1.0:
            raise ValueError(
                f"overestimate_factor must be >= 1, got {overestimate_factor}")
        #: Safety margin applied to the solved radii (capped at r_max).
        #: "an overestimate of r is clearly preferred over an
        #: underestimate" (Theorem 3): a modest inflation protects the
        #: intersection from per-AP estimation scatter.
        self.overestimate_factor = overestimate_factor

    def fit(self, observations: Sequence[Iterable[MacAddress]]
            ) -> RadiusEstimate:
        """Solve the radius LP from a corpus of observed Γ sets.

        ``observations`` is one Γ (AP set) per monitored mobile device
        (or per mobile per observation window).
        """
        bssids = sorted(self.locations.keys())
        index_of = {bssid: i for i, bssid in enumerate(bssids)}
        co_observed = self._co_observed_pairs(observations, index_of)
        appearances = self._appearance_counts(observations, index_of)
        # One vectorized pairwise-distance matrix, shared by the
        # co-observation constraints, the separated-pair scan, and the
        # final constraint ordering — previously each recomputed its
        # own O(n²) scalar distance_to calls.
        coords = np.array([self.locations[b].as_tuple() for b in bssids],
                          dtype=np.float64).reshape(len(bssids), 2)
        distances = kernels.pairwise_distance_matrix(coords)

        problem = LpProblem(maximize=True)
        radius_vars = [
            problem.add_variable(f"r_{bssid}", low=self.r_min, up=self.r_max)
            for bssid in bssids
        ]
        objective: Dict[int, float] = {v: 1.0 for v in radius_vars}

        co_count = 0
        sep_count = 0
        slack_vars: List[int] = []
        separated = self._separated_pairs(bssids, co_observed, appearances,
                                          distances)
        for i, j in sorted(co_observed):
            distance = float(distances[i, j])
            co_count += 1
            rhs = min(distance, 2.0 * self.r_max)
            problem.add_constraint(
                {radius_vars[i]: 1.0, radius_vars[j]: 1.0}, ">=", rhs)
        for i, j, distance in separated:
            sep_count += 1
            slack = problem.add_variable(f"s_{i}_{j}", low=0.0, up=None)
            slack_vars.append(slack)
            objective[slack] = -_SLACK_PENALTY
            problem.add_constraint(
                {radius_vars[i]: 1.0, radius_vars[j]: 1.0, slack: -1.0},
                "<=", max(self.r_min * 2.0, distance - _STRICT_MARGIN_M))

        problem.set_objective(objective)
        result = problem.solve(solver=self.solver)
        if not result.is_optimal:
            raise RuntimeError(
                f"radius LP did not solve: status={result.status}")
        radii = {
            bssid: min(self.r_max,
                       float(result.x[index_of[bssid]])
                       * self.overestimate_factor)
            for bssid in bssids
        }
        total_slack = float(sum(result.x[v] for v in slack_vars))
        return RadiusEstimate(radii=radii, co_observed_pairs=co_count,
                              separated_pairs=sep_count,
                              total_slack=total_slack)

    def _appearance_counts(
        self,
        observations: Sequence[Iterable[MacAddress]],
        index_of: Dict[MacAddress, int],
    ) -> Dict[int, int]:
        """How many observations each known AP appeared in."""
        counts: Dict[int, int] = {i: 0 for i in index_of.values()}
        for observed in observations:
            for bssid in observed:
                index = index_of.get(bssid)
                if index is not None:
                    counts[index] += 1
        return counts

    def _separated_pairs(
        self,
        bssids: List[MacAddress],
        co_observed: Set[Tuple[int, int]],
        appearances: Dict[int, int],
        distances: np.ndarray,
    ) -> List[Tuple[int, int, float]]:
        """Never-co-observed pairs whose "<" constraint can bind.

        Pairs at distance >= ``2 * r_max`` are skipped (never binding
        under the radius bounds).  With ``max_separated_neighbors`` set,
        each AP keeps only its nearest ``m`` separated partners — the
        closest pairs give the tightest (near-dominating) upper bounds,
        so this is a good approximation that keeps the from-scratch
        simplex tractable on dense campuses.

        ``distances`` is the precomputed pairwise matrix from
        :meth:`fit`; candidate filtering reads it instead of
        recomputing scalar distances pair by pair.
        """
        n = len(bssids)
        evidenced = np.array(
            [appearances.get(i, 0) >= self.min_evidence for i in range(n)],
            dtype=bool)
        candidates: Dict[int, List[Tuple[float, int]]] = {
            i: [] for i in range(n)}
        for i in range(n):
            if not evidenced[i]:
                continue
            row = distances[i]
            for j in range(i + 1, n):
                if not evidenced[j]:
                    continue
                if (i, j) in co_observed:
                    continue
                distance = float(row[j])
                if distance >= 2.0 * self.r_max:
                    continue
                candidates[i].append((distance, j))
                candidates[j].append((distance, i))
        kept: Set[Tuple[int, int]] = set()
        limit = self.max_separated_neighbors
        for i, neighbors in candidates.items():
            neighbors.sort()
            selected = neighbors if limit is None else neighbors[:limit]
            for distance, j in selected:
                kept.add((min(i, j), max(i, j)))
        return sorted(
            (i, j, float(distances[i, j])) for i, j in kept
        )

    def _co_observed_pairs(
        self,
        observations: Sequence[Iterable[MacAddress]],
        index_of: Dict[MacAddress, int],
    ) -> Set[Tuple[int, int]]:
        """Index pairs of APs seen together in at least one Γ."""
        pairs: Set[Tuple[int, int]] = set()
        for observed in observations:
            indices = sorted(index_of[b] for b in observed if b in index_of)
            for a_pos in range(len(indices)):
                for b_pos in range(a_pos + 1, len(indices)):
                    pairs.add((indices[a_pos], indices[b_pos]))
        return pairs
