"""LP-based estimation of AP maximum transmission distances (AP-Rad core).

Paper Section III-C2: "if a mobile device can observe two APs within a
short period of time, then the maximum transmission distances of the two
APs, r1 and r2, must satisfy r1 + r2 >= d12 ... if over a sufficient
amount of time, the two APs have never been observed by the same mobile
device, then it is highly likely that r1 + r2 < d12. ... we would like
to find a solution in the feasibility region which maximizes Σ r_j".

Practical deviations (documented in DESIGN.md):

* Strict inequalities are not expressible in an LP; the never-co-observed
  constraints become ``r_i + r_j <= d_ij - margin`` with a small margin.
* Never-co-observed constraints are only *likely* true, and real
  observation sets can make the program infeasible.  We keep the
  co-observation constraints hard (they are direct evidence) and soften
  the never-co-observed ones with penalized slack variables, so the
  program is always feasible and slack is only used where the evidence
  conflicts.
* Pairs farther apart than ``2 * r_max`` are skipped: with radii bounded
  by ``r_max`` their "<" constraints can never bind.  Candidate pairs
  come from a :class:`~repro.geometry.grid.SpatialGrid` over the AP
  locations, so pair generation costs O(n + pairs-in-range) instead of
  the previous dense O(n²) distance matrix.
* A co-observed pair with ``d_ij > 2 * r_max`` (possible with noisy
  locations) has its ">=" right-hand side clamped to ``2 * r_max``.

Streaming refits
----------------

The estimator also supports an incremental protocol for streaming
corpora: :meth:`RadiusEstimator.ingest` folds new Γ observations into
the evidence counters, and :meth:`RadiusEstimator.refit` re-solves by
*mutating* the persistent LP instead of rebuilding it — new co-observed
pairs append ">=" rows, separated pairs that became co-observed have
their "<=" rows retuned to a never-binding right-hand side ("inerted"),
and with ``solver="revised"`` the solve warm-starts from the previous
optimal basis, so re-fit cost scales with the evidence delta rather
than the corpus size.  Inert rows are garbage-collected by a full
rebuild once they outnumber the live ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.faults import InfeasibleError, SolverError, UnboundedError
from repro.geometry.grid import SpatialGrid
from repro.geometry.point import Point
from repro.lp.problem import LpProblem
from repro.lp.revised import LpState
from repro.net80211.mac import MacAddress

#: Objective weight penalizing slack on never-co-observed constraints.
_SLACK_PENALTY = 10.0
#: Margin standing in for the strict "<" of the paper.
_STRICT_MARGIN_M = 1e-6
#: Inert-row count (and excess over live rows) that triggers compaction.
_COMPACT_THRESHOLD = 64


@dataclass
class RadiusEstimate:
    """The result of an LP radius fit."""

    radii: Dict[MacAddress, float]
    co_observed_pairs: int
    separated_pairs: int
    total_slack: float
    #: Simplex iterations the solve took (0 for backends not reporting).
    solver_iterations: int = 0
    #: Basis refactorizations (0 for backends without a factored basis).
    refactorizations: int = 0
    #: Wall-clock seconds spent inside the LP solve.
    solve_seconds: float = 0.0
    #: Whether the solve restarted from a previous optimal basis.
    warm_started: bool = False
    #: Constraint rows in the LP at solve time (including inert rows).
    lp_rows: int = 0

    def radius_of(self, bssid: MacAddress) -> float:
        return self.radii[bssid]


class RadiusEstimator:
    """Estimates every AP's maximum transmission distance by LP.

    Parameters
    ----------
    locations:
        Known AP locations (the AP-Rad input).
    r_max:
        Upper bound on any radius — the theoretical maximum transmission
        distance (Theorem 1 provides one; 802.11g APs rarely exceed a
        few hundred meters outdoors).
    r_min:
        Lower bound; a working AP has some nonzero range.
    solver:
        ``"simplex"`` (dense tableau), ``"revised"`` (sparse, warm-
        startable — required for cheap incremental refits), or
        ``"scipy"``.
    tie_break:
        When > 0, adds a deterministic per-variable objective
        perturbation of this magnitude (scaled into ``(0, tie_break]``
        by variable index).  The radius LP routinely has alternate
        optima (any split of a separated pair's distance budget scores
        the same), so exact per-radius agreement across solvers — or
        across cold and warm solves — needs the optimum made unique.
        Off by default: the perturbation slightly biases later APs.
    """

    def __init__(self, locations: Dict[MacAddress, Point], r_max: float,
                 r_min: float = 1.0, solver: str = "simplex",
                 max_separated_neighbors: Optional[int] = None,
                 min_evidence: int = 1,
                 overestimate_factor: float = 1.0,
                 tie_break: float = 0.0):
        if r_max <= 0.0:
            raise ValueError(f"r_max must be > 0, got {r_max}")
        if not 0.0 <= r_min <= r_max:
            raise ValueError(
                f"need 0 <= r_min <= r_max, got r_min={r_min}, r_max={r_max}")
        if max_separated_neighbors is not None and max_separated_neighbors < 1:
            raise ValueError("max_separated_neighbors must be >= 1")
        self.locations = dict(locations)
        self.r_max = r_max
        self.r_min = r_min
        if min_evidence < 1:
            raise ValueError(f"min_evidence must be >= 1, got {min_evidence}")
        self.solver = solver
        self.max_separated_neighbors = max_separated_neighbors
        #: "if over a *sufficient amount of time*, the two APs have
        #: never been observed by the same mobile device" — a
        #: never-co-observed "<" constraint is only added when both APs
        #: individually appeared in at least ``min_evidence``
        #: observations, i.e. absence of co-observation is meaningful.
        self.min_evidence = min_evidence
        if overestimate_factor < 1.0:
            raise ValueError(
                f"overestimate_factor must be >= 1, got {overestimate_factor}")
        #: Safety margin applied to the solved radii (capped at r_max).
        #: "an overestimate of r is clearly preferred over an
        #: underestimate" (Theorem 3): a modest inflation protects the
        #: intersection from per-AP estimation scatter.
        self.overestimate_factor = overestimate_factor
        if tie_break < 0.0:
            raise ValueError(f"tie_break must be >= 0, got {tie_break}")
        self.tie_break = tie_break

        self._bssids = sorted(self.locations.keys())
        self._index_of = {b: i for i, b in enumerate(self._bssids)}
        # Fixed-seed jitter for the tie-break weights (see
        # _objective_coefficient); depends only on AP count, so every
        # estimator over the same locations perturbs identically.
        self._tie_jitter = np.random.default_rng(0x71EB).random(
            len(self._bssids))
        self._coords = np.array(
            [self.locations[b].as_tuple() for b in self._bssids],
            dtype=np.float64).reshape(len(self._bssids), 2)
        #: All index pairs closer than 2*r_max, from the spatial grid —
        #: the only pairs whose constraints can ever bind.  Locations
        #: are immutable, so this is computed once.
        self._range_pairs = self._pairs_in_range()

        # Streaming evidence state.
        self._counts: Dict[int, int] = {}
        self._co_pairs: Set[Tuple[int, int]] = set()
        # Persistent LP state (solver="revised" incremental path).
        self._problem: Optional[LpProblem] = None
        self._radius_vars: List[int] = []
        self._slack_vars: List[int] = []
        self._co_rows: Set[Tuple[int, int]] = set()
        self._sep_rows: Dict[Tuple[int, int], int] = {}
        self._inert_rows = 0
        self._lp_state: Optional[LpState] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def fit(self, observations: Sequence[Iterable[MacAddress]]
            ) -> RadiusEstimate:
        """Solve the radius LP from a corpus of observed Γ sets.

        ``observations`` is one Γ (AP set) per monitored mobile device
        (or per mobile per observation window).  A full (cold) fit:
        any previously ingested evidence is discarded.
        """
        self._reset_evidence()
        self._absorb(observations)
        self._rebuild_problem()
        return self._solve(warm=False)

    def ingest(self, observations: Sequence[Iterable[MacAddress]]) -> int:
        """Fold new Γ observations into the evidence counters.

        Returns how many observations were absorbed.  Cheap — no LP
        work happens until :meth:`refit`.
        """
        return self._absorb(observations)

    def refit(self) -> RadiusEstimate:
        """Re-solve after :meth:`ingest`, reusing the previous LP.

        With ``solver="revised"`` the existing constraint system is
        mutated in place (rows appended or inerted, never rebuilt) and
        the solve warm-starts from the last optimal basis; other
        backends fall back to a full rebuild + cold solve.
        """
        if self._problem is None or self.solver != "revised":
            self._rebuild_problem()
            return self._solve(warm=False)
        self._apply_evidence_delta()
        if self._needs_compaction():
            self._rebuild_problem()
            return self._solve(warm=False)
        return self._solve(warm=self._lp_state is not None)

    @property
    def lp_rows(self) -> int:
        """Rows currently in the persistent LP (including inert)."""
        return 0 if self._problem is None else self._problem.num_constraints

    @property
    def inert_rows(self) -> int:
        """Rows neutralized by a separated→co-observed transition."""
        return self._inert_rows

    # ------------------------------------------------------------------
    # Evidence accounting
    # ------------------------------------------------------------------

    def _reset_evidence(self) -> None:
        self._counts = {}
        self._co_pairs = set()
        self._problem = None
        self._lp_state = None

    def _absorb(self, observations: Sequence[Iterable[MacAddress]]) -> int:
        absorbed = 0
        index_of = self._index_of
        for observed in observations:
            indices = sorted({index_of[b] for b in observed
                              if b in index_of})
            if not indices:
                continue  # no known AP in this Γ: zero evidence
            for i in indices:
                self._counts[i] = self._counts.get(i, 0) + 1
            for a_pos in range(len(indices)):
                for b_pos in range(a_pos + 1, len(indices)):
                    self._co_pairs.add((indices[a_pos], indices[b_pos]))
            absorbed += 1
        return absorbed

    def _pairs_in_range(self) -> List[Tuple[int, int, float]]:
        """Index pairs with ``d < 2*r_max``, sorted by (i, j)."""
        if len(self._bssids) < 2:
            return []
        cutoff = 2.0 * self.r_max
        grid = SpatialGrid(self._coords, cell_size=cutoff)
        pair_i, pair_j, dist = grid.pairs_within(cutoff, strict=True)
        return [(int(i), int(j), float(d))
                for i, j, d in zip(pair_i, pair_j, dist)]

    def _pair_distance(self, i: int, j: int) -> float:
        delta = self._coords[i] - self._coords[j]
        return float(np.hypot(delta[0], delta[1]))

    def _desired_separated(self) -> List[Tuple[int, int, float]]:
        """Never-co-observed pairs whose "<" constraint can bind.

        Candidates come from the precomputed in-range pair list (the
        spatial grid already discarded everything beyond ``2*r_max``);
        both endpoints must have ``min_evidence`` appearances.  With
        ``max_separated_neighbors`` set, each AP keeps only its nearest
        ``m`` separated partners — the closest pairs give the tightest
        (near-dominating) upper bounds, so this is a good approximation
        that keeps the LP tractable on dense campuses.
        """
        counts = self._counts
        need = self.min_evidence
        co = self._co_pairs
        candidates: Dict[int, List[Tuple[float, int]]] = {}
        for i, j, distance in self._range_pairs:
            if counts.get(i, 0) < need or counts.get(j, 0) < need:
                continue
            if (i, j) in co:
                continue
            candidates.setdefault(i, []).append((distance, j))
            candidates.setdefault(j, []).append((distance, i))
        kept: Set[Tuple[int, int]] = set()
        limit = self.max_separated_neighbors
        for i, neighbors in candidates.items():
            neighbors.sort()
            selected = neighbors if limit is None else neighbors[:limit]
            for distance, j in selected:
                kept.add((min(i, j), max(i, j)))
        return sorted(
            (i, j, self._pair_distance(i, j)) for i, j in kept
        )

    # ------------------------------------------------------------------
    # LP construction
    # ------------------------------------------------------------------

    def _sep_rhs(self, distance: float) -> float:
        return max(self.r_min * 2.0, distance - _STRICT_MARGIN_M)

    def _co_rhs(self, distance: float) -> float:
        return min(distance, 2.0 * self.r_max)

    def _inert_rhs(self) -> float:
        # r_i + r_j - s <= 2*r_max can never bind: radii are capped at
        # r_max and the slack is nonnegative.
        return 2.0 * self.r_max

    def _objective_coefficient(self, var_index: int) -> float:
        if self.tie_break <= 0.0:
            return 1.0
        # Linear in the raw index, NOT normalized by AP count: adjacent
        # coefficients must differ by more than the solvers' reduced-
        # cost tolerance (~1e-9) or the perturbation is invisible and
        # alternate optima return.  The seeded-random component breaks
        # the degenerate cycles a purely linear ramp cannot: a balanced
        # radius transfer around a cycle of binding pair constraints
        # cancels linear weights exactly whenever the gaining and
        # losing index sums coincide.
        return 1.0 + self.tie_break * (var_index + 1
                                       + self._tie_jitter[var_index])

    def _add_co_row(self, problem: LpProblem, i: int, j: int) -> None:
        problem.add_constraint(
            {self._radius_vars[i]: 1.0, self._radius_vars[j]: 1.0},
            ">=", self._co_rhs(self._pair_distance(i, j)))
        self._co_rows.add((i, j))

    def _add_sep_row(self, problem: LpProblem, i: int, j: int,
                     distance: float) -> None:
        slack = problem.add_variable(f"s_{i}_{j}", low=0.0, up=None)
        self._slack_vars.append(slack)
        problem.set_objective_coefficient(slack, -_SLACK_PENALTY)
        self._sep_rows[(i, j)] = problem.num_constraints
        problem.add_constraint(
            {self._radius_vars[i]: 1.0, self._radius_vars[j]: 1.0,
             slack: -1.0},
            "<=", self._sep_rhs(distance))

    def _rebuild_problem(self) -> None:
        """Cold assembly of the full LP from the current evidence."""
        problem = LpProblem(maximize=True)
        self._radius_vars = [
            problem.add_variable(f"r_{bssid}", low=self.r_min,
                                 up=self.r_max)
            for bssid in self._bssids
        ]
        problem.set_objective({
            v: self._objective_coefficient(v) for v in self._radius_vars})
        self._slack_vars = []
        self._co_rows = set()
        self._sep_rows = {}
        self._inert_rows = 0
        self._lp_state = None
        for i, j in sorted(self._co_pairs):
            self._add_co_row(problem, i, j)
        for i, j, distance in self._desired_separated():
            self._add_sep_row(problem, i, j, distance)
        self._problem = problem

    def _apply_evidence_delta(self) -> None:
        """Mutate the persistent LP to match the current evidence."""
        problem = self._problem
        assert problem is not None
        desired = {(i, j): d for i, j, d in self._desired_separated()}
        # Separated rows invalidated by new evidence (the pair became
        # co-observed, or the neighbor cap now prefers a closer
        # partner): retune the rhs so the row can never bind.
        for pair in list(self._sep_rows):
            if pair not in desired:
                problem.set_constraint_rhs(self._sep_rows.pop(pair),
                                           self._inert_rhs())
                self._inert_rows += 1
        # Newly desired separated rows (APs crossed min_evidence, or a
        # previously inerted pair is wanted again) append fresh rows.
        for (i, j), distance in desired.items():
            if (i, j) not in self._sep_rows:
                self._add_sep_row(problem, i, j, distance)
        # New co-observations append hard ">=" rows.
        for i, j in sorted(self._co_pairs - self._co_rows):
            self._add_co_row(problem, i, j)

    def _needs_compaction(self) -> bool:
        live = len(self._co_rows) + len(self._sep_rows)
        return (self._inert_rows > _COMPACT_THRESHOLD
                and self._inert_rows > live)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def _solve(self, warm: bool) -> RadiusEstimate:
        problem = self._problem
        assert problem is not None
        started = time.perf_counter()
        if self.solver == "revised":
            result = problem.solve_revised(
                warm_start=self._lp_state if warm else None)
            self._lp_state = result.state
            warm_started = result.warm_started
        else:
            result = problem.solve(solver=self.solver)
            warm_started = False
        elapsed = time.perf_counter() - started
        if not result.is_optimal:
            if result.status == "infeasible":
                raise InfeasibleError(
                    f"radius LP infeasible over {len(self._bssids)} APs")
            if result.status == "unbounded":
                raise UnboundedError("radius LP unbounded")
            raise SolverError(
                f"radius LP did not solve: status={result.status}",
                status=result.status)
        radii = {
            bssid: min(self.r_max,
                       float(result.x[self._index_of[bssid]])
                       * self.overestimate_factor)
            for bssid in self._bssids
        }
        total_slack = float(sum(result.x[v] for v in self._slack_vars))
        registry = obs.current_registry()
        registry.timer(
            "repro.localization.radius_fit.duration").observe(elapsed)
        registry.counter("repro.localization.radius_fit.solves",
                         warm=str(bool(warm_started)).lower()).inc()
        return RadiusEstimate(
            radii=radii,
            co_observed_pairs=len(self._co_rows),
            separated_pairs=len(self._sep_rows),
            total_slack=total_slack,
            solver_iterations=int(getattr(result, "iterations", 0)),
            refactorizations=int(getattr(result, "refactorizations", 0)),
            solve_seconds=elapsed,
            warm_started=warm_started,
            lp_rows=problem.num_constraints,
        )
