"""repro — a reproduction of "The Digital Marauder's Map: A New Threat to
Location Privacy in Wireless Networks" (Fu et al., ICDCS 2009).

The package implements the paper's malicious wireless tracking system
end to end on a simulated substrate:

* :mod:`repro.radio` — receiver chains, the Theorem 1 link budget,
  propagation models, 802.11 channels,
* :mod:`repro.net80211` — management frames, APs, stations, the medium,
* :mod:`repro.sniffer` — the capture system, observation database,
  active attack, device tracking,
* :mod:`repro.knowledge` — AP databases (WiGLE-style) and wardriving,
* :mod:`repro.localization` — **M-Loc, AP-Rad, AP-Loc** and the
  Centroid / Nearest-AP baselines,
* :mod:`repro.theory` — Theorems 1–3 numerics,
* :mod:`repro.sim` — the campus world used in place of field tests,
* :mod:`repro.analysis` / :mod:`repro.display` — experiment harness and
  the map display,
* :mod:`repro.faults` — the typed failure hierarchy, deterministic
  fault injection, retry/supervision policies behind the streaming
  engine's fault tolerance.

Quickstart::

    from repro.sim import build_attack_scenario
    from repro.localization import MLoc

    scenario = build_attack_scenario(seed=7)
    scenario.world.run(duration_s=240.0)
    store = scenario.world.sniffer.store
    gamma = store.gamma(scenario.victim.mac)
    estimate = MLoc(scenario.truth_db).locate(gamma)
    print(estimate.position)
"""

from repro.faults import (
    CaptureError,
    CheckpointError,
    InfeasibleError,
    ReproError,
    SinkError,
    SolverError,
    UnboundedError,
    WorkerError,
)
from repro.geometry import Circle, DiscIntersection, Point
from repro.knowledge import ApDatabase, ApRecord, TrainingTuple
from repro.localization import (
    APLoc,
    APRad,
    CentroidLocalizer,
    LocalizationEstimate,
    MLoc,
    NearestApLocalizer,
)
from repro.net80211 import AccessPoint, MacAddress, MobileStation, Ssid

__version__ = "0.1.0"

__all__ = [
    "Point",
    "Circle",
    "DiscIntersection",
    "MacAddress",
    "Ssid",
    "AccessPoint",
    "MobileStation",
    "ApRecord",
    "ApDatabase",
    "TrainingTuple",
    "MLoc",
    "APRad",
    "APLoc",
    "CentroidLocalizer",
    "NearestApLocalizer",
    "LocalizationEstimate",
    "ReproError",
    "CaptureError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "SinkError",
    "CheckpointError",
    "WorkerError",
    "__version__",
]
