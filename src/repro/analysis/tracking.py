"""Trajectory analysis: track metrics and smoothing.

The Marauder's map produces a *track* — timestamped estimates — per
device.  Raw per-window estimates jump around within the intersected
area; because a walking victim moves smoothly, simple temporal filters
recover accuracy essentially for free.  This module provides:

* :func:`average_track_error` — mean distance between a track and the
  true trajectory (the tracking analogue of the Fig 13 metric),
* :func:`exponential_smoothing` — first-order smoothing of a track,
* :func:`moving_average` — centered window average,

all operating on ``(timestamp, Point)`` sequences so they compose with
:class:`repro.sniffer.tracker.DeviceTracker` and the ground truth
recorded by the world.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.geometry.point import Point

#: A track sample: (timestamp, position).
TrackSample = Tuple[float, Point]


def average_track_error(
    track: Sequence[TrackSample],
    truth_at: Callable[[float], Optional[Point]],
) -> float:
    """Mean error of a track against a ground-truth lookup.

    ``truth_at(timestamp)`` returns the true position (or ``None`` when
    unavailable — such samples are skipped).  Raises when no sample has
    ground truth.
    """
    errors: List[float] = []
    for timestamp, position in track:
        truth = truth_at(timestamp)
        if truth is not None:
            errors.append(position.distance_to(truth))
    if not errors:
        raise ValueError("no track samples with ground truth")
    return sum(errors) / len(errors)


def exponential_smoothing(track: Sequence[TrackSample],
                          alpha: float = 0.5) -> List[TrackSample]:
    """First-order exponential smoothing of the positions.

    ``alpha`` is the weight on the *new* sample (1 = no smoothing).
    Timestamps are preserved.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    smoothed: List[TrackSample] = []
    state: Optional[Point] = None
    for timestamp, position in track:
        if state is None:
            state = position
        else:
            state = Point(alpha * position.x + (1.0 - alpha) * state.x,
                          alpha * position.y + (1.0 - alpha) * state.y)
        smoothed.append((timestamp, state))
    return smoothed


def moving_average(track: Sequence[TrackSample],
                   window: int = 3) -> List[TrackSample]:
    """Centered moving average over ``window`` samples (odd window).

    Edge samples average over the available neighbors, so the output
    has the same length and timestamps as the input.
    """
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be odd and >= 1, got {window}")
    half = window // 2
    samples = list(track)
    averaged: List[TrackSample] = []
    for i, (timestamp, _) in enumerate(samples):
        lo = max(0, i - half)
        hi = min(len(samples), i + half + 1)
        xs = [p.x for _, p in samples[lo:hi]]
        ys = [p.y for _, p in samples[lo:hi]]
        averaged.append((timestamp,
                         Point(sum(xs) / len(xs), sum(ys) / len(ys))))
    return averaged


def track_length_m(track: Sequence[TrackSample]) -> float:
    """Total path length of a track (sum of segment lengths)."""
    total = 0.0
    for (_, a), (_, b) in zip(track, track[1:]):
        total += a.distance_to(b)
    return total
