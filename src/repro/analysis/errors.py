"""Error statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics over a sample of scalar errors."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p90: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ErrorStats":
        if len(values) == 0:
            raise ValueError("cannot summarize an empty sample")
        array = np.asarray(values, dtype=float)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            median=float(np.median(array)),
            std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
            minimum=float(array.min()),
            maximum=float(array.max()),
            p90=float(np.percentile(array, 90.0)),
        )

    def format_row(self, label: str) -> str:
        """One aligned report line (used by benches and the CLI)."""
        return (f"{label:<12s} n={self.count:<5d} mean={self.mean:8.2f}  "
                f"median={self.median:8.2f}  p90={self.p90:8.2f}  "
                f"max={self.maximum:8.2f}")


def histogram(values: Sequence[float], bin_edges: Sequence[float]
              ) -> List[Tuple[float, float, int]]:
    """Counts per bin: returns (low, high, count) triples.

    Values at or beyond the last edge land in the final bin — the
    Fig 13 histogram has an implicit ">= last edge" bucket.
    """
    if len(bin_edges) < 2:
        raise ValueError("need at least two bin edges")
    edges = list(bin_edges)
    if any(edges[i] >= edges[i + 1] for i in range(len(edges) - 1)):
        raise ValueError("bin edges must be strictly increasing")
    counts = [0] * (len(edges) - 1)
    for value in values:
        if value < edges[0]:
            continue
        placed = False
        for i in range(len(edges) - 1):
            if edges[i] <= value < edges[i + 1]:
                counts[i] += 1
                placed = True
                break
        if not placed:  # value >= last edge
            counts[-1] += 1
    return [(edges[i], edges[i + 1], counts[i])
            for i in range(len(edges) - 1)]


def cumulative_fraction_below(values: Sequence[float],
                              threshold: float) -> float:
    """Fraction of errors below a threshold (CDF point)."""
    if len(values) == 0:
        raise ValueError("empty sample")
    below = sum(1 for v in values if v < threshold)
    return below / len(values)
