"""The shared localization-accuracy harness (Figs 13–16).

Feeds identical test cases — (observed Γ, true position) pairs — to any
set of localizers and produces per-algorithm reports sliceable along the
paper's axes:

* error histogram / averages (Fig 13),
* average error vs. minimum number of communicable APs (Fig 14),
* intersected area vs. minimum k (Fig 15),
* coverage probability vs. minimum k (Fig 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.geometry.point import Point
from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.mac import MacAddress


@dataclass(frozen=True)
class TestCase:
    """One localization trial: the evidence and the ground truth."""

    # Tell pytest this dataclass is not a test container.
    __test__ = False

    observed: frozenset
    truth: Point

    @classmethod
    def of(cls, observed: Set[MacAddress], truth: Point) -> "TestCase":
        return cls(frozenset(observed), truth)


@dataclass
class _CaseResult:
    case: TestCase
    estimate: LocalizationEstimate

    @property
    def error_m(self) -> float:
        return self.estimate.error_to(self.case.truth)

    @property
    def k(self) -> int:
        """Number of known APs that constrained this estimate."""
        return self.estimate.used_ap_count

    @property
    def area_m2(self) -> float:
        return self.estimate.area_m2

    @property
    def covered(self) -> bool:
        return self.estimate.covers(self.case.truth)


@dataclass
class AlgorithmReport:
    """All results of one localizer over the test cases."""

    name: str
    results: List[_CaseResult] = field(default_factory=list)
    skipped: int = 0  # cases where the localizer returned None

    # -- whole-sample metrics (Fig 13) ---------------------------------

    def errors(self) -> List[float]:
        return [result.error_m for result in self.results]

    def mean_error(self) -> float:
        errors = self.errors()
        if not errors:
            raise ValueError(f"{self.name}: no successful localizations")
        return sum(errors) / len(errors)

    def error_stats(self):
        """Full :class:`repro.analysis.errors.ErrorStats` of the errors."""
        from repro.analysis.errors import ErrorStats

        return ErrorStats.from_values(self.errors())

    def fraction_within(self, threshold_m: float) -> float:
        """Fraction of estimates with error below ``threshold_m`` (CDF)."""
        from repro.analysis.errors import cumulative_fraction_below

        return cumulative_fraction_below(self.errors(), threshold_m)

    # -- sliced metrics (Figs 14-16) -----------------------------------

    def _with_min_k(self, min_k: int) -> List[_CaseResult]:
        return [result for result in self.results if result.k >= min_k]

    def mean_error_vs_min_k(self, min_k: int) -> Optional[float]:
        """Average error over cases with at least ``min_k`` APs."""
        subset = self._with_min_k(min_k)
        if not subset:
            return None
        return sum(result.error_m for result in subset) / len(subset)

    def mean_area_vs_min_k(self, min_k: int) -> Optional[float]:
        """Average intersected area over cases with >= ``min_k`` APs.

        Only meaningful for disc-based localizers; Centroid reports 0.
        """
        subset = self._with_min_k(min_k)
        if not subset:
            return None
        return sum(result.area_m2 for result in subset) / len(subset)

    def coverage_probability_vs_min_k(self, min_k: int) -> Optional[float]:
        """Fraction of regions covering the truth, cases with k >= min_k."""
        subset = self._with_min_k(min_k)
        if not subset:
            return None
        covered = sum(1 for result in subset if result.covered)
        return covered / len(subset)

    def k_values(self) -> List[int]:
        return [result.k for result in self.results]


def run_localization_experiment(
    localizers: Union[Dict[str, Localizer], Iterable[Localizer]],
    cases: Sequence[TestCase],
) -> Dict[str, AlgorithmReport]:
    """Run every localizer over every case; collect per-algorithm reports.

    ``localizers`` is either ``{label: localizer}`` or a plain sequence
    of localizers, in which case each report is labeled by the
    localizer's own :attr:`Localizer.name` — the stable identity hook,
    rather than anything derived from the class name.
    """
    if not isinstance(localizers, dict):
        named: Dict[str, Localizer] = {}
        for localizer in localizers:
            if localizer.name in named:
                raise ValueError(
                    f"duplicate localizer name {localizer.name!r}; "
                    "pass a dict with distinct labels instead")
            named[localizer.name] = localizer
        localizers = named
    reports = {name: AlgorithmReport(name=name) for name in localizers}
    for case in cases:
        for name, localizer in localizers.items():
            estimate = localizer.locate(case.observed)
            if estimate is None:
                reports[name].skipped += 1
                continue
            reports[name].results.append(_CaseResult(case, estimate))
    return reports
