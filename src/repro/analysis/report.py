"""Markdown report rendering for localization experiments.

Turns the harness output (:func:`run_localization_experiment` reports)
into the kind of paper-vs-measured table EXPERIMENTS.md carries, so the
CLI and scripts can emit shareable results without hand-formatting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.experiments import AlgorithmReport


def render_markdown_report(
    reports: Dict[str, AlgorithmReport],
    paper_means: Optional[Dict[str, float]] = None,
    k_values: Sequence[int] = (1, 4, 8, 12),
    title: str = "Localization accuracy",
) -> str:
    """A markdown document summarizing an experiment run.

    Contains the Fig 13-style mean/median table (with paper values when
    given) and the Fig 14/15/16-style slices by minimum k for the
    disc-based algorithms.
    """
    paper_means = paper_means or {}
    lines = [f"# {title}", ""]

    # --- summary table -------------------------------------------------
    lines.append("| algorithm | n | mean (m) | median (m) | p90 (m) |"
                 " paper (m) |")
    lines.append("|---|---|---|---|---|---|")
    for name, report in reports.items():
        if not report.results:
            lines.append(f"| {name} | 0 | - | - | - | - |")
            continue
        stats = report.error_stats()
        paper = paper_means.get(name)
        paper_text = f"{paper:.2f}" if paper is not None else "-"
        lines.append(
            f"| {name} | {stats.count} | {stats.mean:.2f} |"
            f" {stats.median:.2f} | {stats.p90:.2f} | {paper_text} |")
    lines.append("")

    # --- slices by minimum k --------------------------------------------
    header = "| algorithm | " + " | ".join(
        f"err@k≥{k}" for k in k_values) + " |"
    lines.append("## Error vs. minimum communicable APs")
    lines.append("")
    lines.append(header)
    lines.append("|" + "---|" * (len(k_values) + 1))
    for name, report in reports.items():
        cells = []
        for k in k_values:
            value = report.mean_error_vs_min_k(k)
            cells.append(f"{value:.1f}" if value is not None else "-")
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    lines.append("")

    disc_based = {name: report for name, report in reports.items()
                  if any(r.area_m2 > 0.0 for r in report.results)}
    if disc_based:
        lines.append("## Intersected area / coverage probability")
        lines.append("")
        lines.append("| algorithm | " + " | ".join(
            f"area@k≥{k} (m²) / cov" for k in k_values) + " |")
        lines.append("|" + "---|" * (len(k_values) + 1))
        for name, report in disc_based.items():
            cells = []
            for k in k_values:
                area = report.mean_area_vs_min_k(k)
                coverage = report.coverage_probability_vs_min_k(k)
                if area is None or coverage is None:
                    cells.append("-")
                else:
                    cells.append(f"{area:.0f} / {coverage:.2f}")
            lines.append(f"| {name} | " + " | ".join(cells) + " |")
        lines.append("")

    return "\n".join(lines)
