"""Experiment analysis: error statistics and the localization harness.

Shared by the Figs 13–17 benches and the integration tests: run several
localizers over the same test cases, then slice errors / intersected
areas / coverage probabilities by the minimum number of communicable
APs, exactly the axes of the paper's accuracy figures.
"""

from repro.analysis.errors import ErrorStats, histogram
from repro.analysis.experiments import (
    AlgorithmReport,
    TestCase,
    run_localization_experiment,
)
from repro.analysis.report import render_markdown_report
from repro.analysis.tracking import (
    average_track_error,
    exponential_smoothing,
    moving_average,
    track_length_m,
)

__all__ = [
    "ErrorStats",
    "histogram",
    "TestCase",
    "AlgorithmReport",
    "run_localization_experiment",
    "render_markdown_report",
    "average_track_error",
    "exponential_smoothing",
    "moving_average",
    "track_length_m",
]
