"""Lightweight in-process span tracing.

A :class:`Span` is one timed operation (an engine flush, a radius-LP
solve); spans nest through a thread-local stack, so each records its
parent and the Chrome trace viewer reconstructs the call tree.  Spans
land in a :class:`SpanRecorder` — a bounded ring, so a week-long stream
keeps only the most recent ``capacity`` spans and memory stays flat.

Usage::

    from repro.obs import trace

    with trace("engine.flush", batch=len(batch)):
        ...

Export is Chrome ``trace_event`` JSON (load the file at
``chrome://tracing`` or https://ui.perfetto.dev)::

    recorder = obs.default_recorder()
    recorder.export_chrome("engine_trace.json")

A recorder with ``capacity=0`` is disabled: ``trace`` then yields
``None`` without touching the clock, so tracing can be compiled out of
hot paths by swapping the active recorder.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Union

_ids = itertools.count(1)
_tls = threading.local()


class Span:
    """One timed, named operation with optional key=value arguments."""

    __slots__ = ("name", "args", "span_id", "parent_id", "thread_id",
                 "start_s", "end_s")

    def __init__(self, name: str, args: Dict[str, object],
                 span_id: int, parent_id: Optional[int],
                 thread_id: int, start_s: float):
        self.name = name
        self.args = args
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.start_s = start_s
        self.end_s = start_s

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
                f"id={self.span_id}, parent={self.parent_id})")


class SpanRecorder:
    """A bounded ring of completed spans."""

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._ring: "deque[Span]" = deque(maxlen=capacity or 1)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, span: Span) -> None:
        if self.capacity > 0:
            self._ring.append(span)

    def spans(self) -> List[Span]:
        """Completed spans, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    # Chrome trace_event exposition
    # ------------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The ring as a Chrome ``trace_event`` JSON object."""
        events = []
        for span in sorted(self._ring, key=lambda s: (s.start_s,
                                                      s.span_id)):
            args = {str(k): v for k, v in span.args.items()}
            if span.parent_id is not None:
                args["parent_span"] = span.parent_id
            args["span"] = span.span_id
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": 0,
                "tid": span.thread_id,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_chrome()),
                              encoding="utf-8")


#: The process-wide recorder ``trace`` falls back to.
_default_recorder = SpanRecorder()


def default_recorder() -> SpanRecorder:
    return _default_recorder


def current_recorder() -> SpanRecorder:
    """The innermost :func:`use_recorder` target, else the default."""
    stack = getattr(_tls, "recorders", None)
    if stack:
        return stack[-1]
    return _default_recorder


@contextmanager
def use_recorder(recorder: SpanRecorder):
    """Route ``trace`` spans to ``recorder`` within the block."""
    stack = getattr(_tls, "recorders", None)
    if stack is None:
        stack = _tls.recorders = []
    stack.append(recorder)
    try:
        yield recorder
    finally:
        stack.pop()


@contextmanager
def trace(name: str, recorder: Optional[SpanRecorder] = None, **args):
    """Record a span around the block; yields the live :class:`Span`.

    Spans started while another ``trace`` block is open on the same
    thread record it as their parent, so exports show the nesting.
    """
    target = recorder if recorder is not None else current_recorder()
    if not target.enabled:
        yield None
        return
    open_spans = getattr(_tls, "spans", None)
    if open_spans is None:
        open_spans = _tls.spans = []
    parent_id = open_spans[-1].span_id if open_spans else None
    span = Span(name, args, next(_ids), parent_id,
                threading.get_ident(), time.perf_counter())
    open_spans.append(span)
    try:
        yield span
    finally:
        open_spans.pop()
        span.end_s = time.perf_counter()
        target.record(span)
