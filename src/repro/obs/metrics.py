"""Typed metric instruments and the registry that owns them.

The observability substrate for the whole pipeline (DESIGN.md §6).
Four instrument kinds cover everything the engine, localizers, LP
solvers, and geometry layers need to report:

* :class:`Counter` — a monotonically increasing count (frames ingested,
  cache hits, simplex pivots).
* :class:`Gauge` — a point-in-time value (cache entries, devices seen).
* :class:`Histogram` — a distribution over fixed log-scale buckets
  (flush durations, batch sizes).  Bucket bounds never change after
  construction, so snapshots merge exactly.
* :class:`Timer` — a histogram of seconds with a ``with timer.time():``
  convenience; it *is* a histogram, so exposition and merging treat it
  identically.

Instruments are addressed by dotted name (convention:
``repro.<pkg>.<metric>``) plus an optional label set, and live in a
:class:`MetricsRegistry`.  The registry supports point-in-time
:meth:`~MetricsRegistry.snapshot`, :meth:`~MetricsRegistry.delta`
against an earlier snapshot, :meth:`~MetricsRegistry.reset`,
:meth:`~MetricsRegistry.merge` of foreign snapshots (worker-process
registries, checkpoint restores), and two expositions: Prometheus text
(:meth:`~MetricsRegistry.render_prometheus`) and JSON (the snapshot
itself is JSON-compatible).

Everything here is dependency-free and cheap: recording is a couple of
attribute updates under the GIL, and nothing is paid for exposition
until an exporter actually asks for a snapshot.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram bounds: two log-scale buckets per decade
#: (mantissas 1 and 3) from one microsecond to ~3000 — wide enough for
#: durations in seconds and for small integer sizes alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-6, 4)
    for mantissa in (1.0, 3.0)
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, LabelItems]:
    """Invert :func:`_format_key` (snapshot keys → name + labels)."""
    if not key.endswith("}") or "{" not in key:
        return key, ()
    name, _, inner = key.partition("{")
    items = []
    for part in inner[:-1].split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        items.append((label, value))
    return name, tuple(items)


def _fmt_number(value: float) -> str:
    """Compact, deterministic number text for expositions."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Instrument:
    """Common identity: dotted name plus a sorted label tuple."""

    __slots__ = ("name", "labels")

    kind = "instrument"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels

    @property
    def key(self) -> str:
        return _format_key(self.name, self.labels)


class Counter(Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(Instrument):
    """A value that can move in both directions."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(Instrument):
    """A distribution over fixed log-scale buckets.

    ``bounds`` are the inclusive upper bucket edges; an implicit +Inf
    bucket catches the overflow.  Counts are stored per-bucket
    (non-cumulative) and rendered cumulatively for Prometheus.
    """

    __slots__ = ("bounds", "bucket_counts", "overflow", "count", "sum")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems = (),
                 bounds: Optional[Sequence[float]] = None):
        super().__init__(name, labels)
        chosen = DEFAULT_BUCKETS if bounds is None else tuple(
            float(b) for b in bounds)
        if list(chosen) != sorted(set(chosen)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds: Tuple[float, ...] = chosen
        self.bucket_counts: List[int] = [0] * len(chosen)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        index = bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus-style."""
        running = 0
        out = []
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        return out


class Timer(Histogram):
    """A histogram of seconds with a context-manager convenience."""

    __slots__ = ()

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)


class MetricsRegistry:
    """Owns every instrument; the engine's and CLI's exposition seam.

    Instruments are created on first use and cached, so holding the
    returned handle (rather than re-looking it up) is the hot-path
    idiom::

        frames = registry.counter("repro.engine.frames")
        ...
        frames.inc()

    A registry is cheap (one dict); code that must aggregate across
    processes or runs exchanges :meth:`snapshot` dicts and
    :meth:`merge`\\ s them — counters and histogram buckets add,
    gauges take the incoming value, so merging worker snapshots in
    submission order is deterministic.
    """

    def __init__(self):
        self._instruments: Dict[Tuple[str, LabelItems], Instrument] = {}
        # Guards the instrument *dict* (creation, iteration, merge,
        # reset) so a scrape can snapshot while shard threads register
        # new series.  Recording on an already-held instrument handle
        # stays lock-free — a couple of attribute updates under the
        # GIL.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def _lookup(self, cls, name: str, labels: Dict[str, object],
                **kwargs) -> Instrument:
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
                return instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {_format_key(*key)!r} is a {instrument.kind}, "
                f"not a {cls.kind}")
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._lookup(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._lookup(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        # Always instantiate the Timer subclass so histogram() and
        # timer() interchangeably address the same instrument.
        return self._lookup(Timer, name, labels, bounds=bounds)

    def timer(self, name: str, **labels) -> Timer:
        return self._lookup(Timer, name, labels)

    def instruments(self) -> Iterator[Instrument]:
        """Every registered instrument, in deterministic order.

        The instrument list is snapshotted under the registry lock, so
        iteration never races concurrent series creation; instruments
        registered *after* the call simply do not appear.
        """
        with self._lock:
            ordered = [self._instruments[key]
                       for key in sorted(self._instruments)]
        yield from ordered

    def find(self, name: str) -> List[Instrument]:
        """All instruments registered under a dotted name (any labels)."""
        return [inst for inst in self.instruments() if inst.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    # ------------------------------------------------------------------
    # Snapshot / delta / reset / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-compatible point-in-time copy of every instrument."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for inst in self.instruments():
            if isinstance(inst, Counter):
                counters[inst.key] = inst.value
            elif isinstance(inst, Gauge):
                gauges[inst.key] = inst.value
            elif isinstance(inst, Histogram):
                histograms[inst.key] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "bounds": list(inst.bounds),
                    "counts": list(inst.bucket_counts),
                    "overflow": inst.overflow,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def delta(self, previous: dict) -> dict:
        """Current snapshot minus an earlier one (gauges: current)."""
        current = self.snapshot()
        prev_counters = previous.get("counters", {})
        for key in current["counters"]:
            current["counters"][key] -= prev_counters.get(key, 0.0)
        prev_hists = previous.get("histograms", {})
        for key, hist in current["histograms"].items():
            before = prev_hists.get(key)
            if not before or before.get("bounds") != hist["bounds"]:
                continue
            hist["count"] -= before["count"]
            hist["sum"] -= before["sum"]
            hist["counts"] = [a - b for a, b in
                              zip(hist["counts"], before["counts"])]
            hist["overflow"] -= before["overflow"]
        return current

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            if isinstance(inst, (Counter, Gauge)):
                inst._value = 0.0
            elif isinstance(inst, Histogram):
                inst.bucket_counts = [0] * len(inst.bounds)
                inst.overflow = 0
                inst.count = 0
                inst.sum = 0.0

    def merge(self, snapshot: dict) -> None:
        """Fold a foreign snapshot in: counters/histograms add, gauges
        take the incoming value.  Used for worker-registry merges,
        checkpoint restores, and the service scrape path (per-shard
        snapshots folded into one exposition registry).  Atomic with
        respect to concurrent :meth:`snapshot` readers."""
        with self._lock:
            self._merge_locked(snapshot)

    def _merge_locked(self, snapshot: dict) -> None:
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_key(key)
            self._lookup(Counter, name, dict(labels))._value += value
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = parse_key(key)
            self._lookup(Gauge, name, dict(labels))._value = value
        for key, data in snapshot.get("histograms", {}).items():
            name, labels = parse_key(key)
            hist = self._lookup(Timer, name, dict(labels),
                                bounds=data.get("bounds"))
            if list(hist.bounds) != [float(b) for b in data["bounds"]]:
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket bounds differ")
            hist.count += int(data["count"])
            hist.sum += float(data["sum"])
            hist.overflow += int(data["overflow"])
            hist.bucket_counts = [
                a + int(b) for a, b in zip(hist.bucket_counts,
                                           data["counts"])]

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        typed: Dict[str, str] = {}
        for inst in self.instruments():
            metric = _prom_name(inst.name)
            if typed.get(metric) is None:
                kind = ("histogram" if isinstance(inst, Histogram)
                        else inst.kind)
                lines.append(f"# TYPE {metric} {kind}")
                typed[metric] = kind
            if isinstance(inst, Histogram):
                for bound, cumulative in inst.cumulative_buckets():
                    labels = _prom_labels(inst.labels,
                                          ("le", _fmt_number(bound)))
                    lines.append(f"{metric}_bucket{labels} {cumulative}")
                labels = _prom_labels(inst.labels, ("le", "+Inf"))
                lines.append(f"{metric}_bucket{labels} {inst.count}")
                base = _prom_labels(inst.labels)
                lines.append(f"{metric}_sum{base} {_fmt_number(inst.sum)}")
                lines.append(f"{metric}_count{base} {inst.count}")
            elif isinstance(inst, Counter):
                labels = _prom_labels(inst.labels)
                lines.append(
                    f"{metric}_total{labels} {_fmt_number(inst.value)}")
            else:
                labels = _prom_labels(inst.labels)
                lines.append(f"{metric}{labels} {_fmt_number(inst.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def format(self) -> str:
        """Human-readable block (what ``marauder metrics`` prints)."""
        return format_snapshot(self.snapshot())


def merge_snapshots(snapshots: Sequence[dict]) -> MetricsRegistry:
    """Fold several registry snapshots into one fresh registry.

    The service scrape path: each shard hands over its private
    registry's snapshot, and the merged registry renders one coherent
    Prometheus exposition for the whole fleet.  Counters and histogram
    buckets add; a gauge takes the value of the *last* snapshot that
    carries it, so per-shard gauges should be labelled by shard.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: LabelItems, *extra: Tuple[str, str]) -> str:
    items = list(labels) + list(extra)
    if not items:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{v}"' for k, v in items)
    return "{" + inner + "}"


def format_snapshot(snapshot: dict) -> str:
    """Pretty-print a :meth:`MetricsRegistry.snapshot` dict."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            lines.append(f"  {key:<{width}}  {_fmt_number(counters[key])}")
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for key in sorted(gauges):
            lines.append(f"  {key:<{width}}  {_fmt_number(gauges[key])}")
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            hist = histograms[key]
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            lines.append(f"  {key}  count={count} "
                         f"sum={_fmt_number(round(hist['sum'], 9))} "
                         f"mean={mean:.6g}")
    if not lines:
        return "(empty registry)"
    return "\n".join(lines)
