"""``repro.obs`` — the dependency-free observability subsystem.

Three layers (DESIGN.md §6):

* **Metrics** — typed instruments (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`, :class:`Timer`) in a :class:`MetricsRegistry`,
  addressed by dotted name + labels, with snapshot/delta/reset,
  Prometheus-text and JSON exposition.
* **Tracing** — ``with trace("engine.flush", ...)`` spans in a bounded
  ring, exportable as Chrome ``trace_event`` JSON.
* **Routing** — a process-wide default registry plus a thread-local
  override stack (:func:`use_registry`), so deep components (the LP
  solvers, the spatial grid, batch localization) emit through one seam
  — :func:`current_registry` — and an engine can capture everything
  that happens on its behalf into its own registry without threading a
  handle through every call.

Nothing here imports outside the standard library; recording is a few
attribute updates, and no exposition cost is paid until a snapshot is
actually taken.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    format_snapshot,
    merge_snapshots,
    parse_key,
)
from repro.obs.trace import (
    Span,
    SpanRecorder,
    current_recorder,
    default_recorder,
    trace,
    use_recorder,
)

#: The process-wide registry: what module-level instrumentation reaches
#: when no :func:`use_registry` override is active.
_default_registry = MetricsRegistry()
_tls = threading.local()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (never replaced, only reset)."""
    return _default_registry


def current_registry() -> MetricsRegistry:
    """The innermost :func:`use_registry` target, else the default.

    This is the single seam deep components emit through: the LP
    solvers, the spatial grid, and batch localization all call
    ``current_registry().counter(...)`` so whichever registry the
    caller activated — the engine's own, a test's, the default —
    receives the metrics.
    """
    stack = getattr(_tls, "registries", None)
    if stack:
        return stack[-1]
    return _default_registry


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Route :func:`current_registry` to ``registry`` within the block."""
    stack = getattr(_tls, "registries", None)
    if stack is None:
        stack = _tls.registries = []
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "format_snapshot",
    "merge_snapshots",
    "parse_key",
    "Span",
    "SpanRecorder",
    "trace",
    "use_recorder",
    "current_recorder",
    "default_recorder",
    "default_registry",
    "current_registry",
    "use_registry",
]
