"""Numerical integration used by the theory modules.

Two complementary methods are provided:

* :func:`gauss_legendre` — fixed-order Gauss-Legendre quadrature.  Fast
  and extremely accurate for smooth integrands, which covers the
  Theorem 2 integrand on ``[0, 1]``.
* :func:`adaptive_simpson` — classic adaptive Simpson with a recursion
  error estimate.  Robust for the piecewise integrands of Theorem 3
  where the lens-area formula has kinks at disc-containment boundaries.

:func:`integrate` picks a sensible default (Gauss-Legendre with a
Simpson sanity fallback) and is what the theory modules call.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

# Cache of Gauss-Legendre nodes/weights on [-1, 1] keyed by order.
_GL_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _gl_nodes(order: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return (nodes, weights) for Gauss-Legendre of the given order.

    Nodes are computed with the Golub-Welsch eigenvalue method on the
    Jacobi matrix of the Legendre three-term recurrence, so we do not
    depend on ``numpy.polynomial`` internals.
    """
    if order < 1:
        raise ValueError(f"quadrature order must be >= 1, got {order}")
    cached = _GL_CACHE.get(order)
    if cached is not None:
        return cached
    if order == 1:
        nodes = np.array([0.0])
        weights = np.array([2.0])
    else:
        k = np.arange(1, order, dtype=float)
        # Off-diagonal of the symmetric Jacobi matrix for Legendre.
        beta = k / np.sqrt(4.0 * k * k - 1.0)
        jacobi = np.diag(beta, 1) + np.diag(beta, -1)
        nodes, vectors = np.linalg.eigh(jacobi)
        weights = 2.0 * vectors[0, :] ** 2
    _GL_CACHE[order] = (nodes, weights)
    return nodes, weights


def gauss_legendre(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    order: int = 64,
) -> float:
    """Integrate ``func`` over ``[lower, upper]`` by Gauss-Legendre.

    ``func`` is called once per node with a scalar argument, so it may
    be any plain Python callable.
    """
    if lower == upper:
        return 0.0
    nodes, weights = _gl_nodes(order)
    half_width = 0.5 * (upper - lower)
    midpoint = 0.5 * (upper + lower)
    total = 0.0
    for node, weight in zip(nodes, weights):
        total += weight * func(midpoint + half_width * node)
    return half_width * total


def _simpson(func: Callable[[float], float], a: float, fa: float,
             b: float, fb: float) -> Tuple[float, float, float]:
    """One Simpson panel: returns (midpoint, f(midpoint), estimate)."""
    m = 0.5 * (a + b)
    fm = func(m)
    estimate = (b - a) / 6.0 * (fa + 4.0 * fm + fb)
    return m, fm, estimate


def adaptive_simpson(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    tol: float = 1e-10,
    max_depth: int = 48,
) -> float:
    """Adaptive Simpson integration with Richardson error control."""
    if lower == upper:
        return 0.0
    fa = func(lower)
    fb = func(upper)
    m, fm, whole = _simpson(func, lower, fa, upper, fb)
    return _adaptive_step(func, lower, fa, upper, fb, m, fm, whole,
                          tol, max_depth)


def _adaptive_step(func, a, fa, b, fb, m, fm, whole, tol, depth) -> float:
    lm, flm, left = _simpson(func, a, fa, m, fm)
    rm, frm, right = _simpson(func, m, fm, b, fb)
    delta = left + right - whole
    if depth <= 0 or abs(delta) <= 15.0 * tol:
        return left + right + delta / 15.0
    return (
        _adaptive_step(func, a, fa, m, fm, lm, flm, left, tol / 2.0, depth - 1)
        + _adaptive_step(func, m, fm, b, fb, rm, frm, right, tol / 2.0, depth - 1)
    )


def integrate(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    order: int = 96,
    tol: float = 1e-10,
) -> float:
    """Integrate ``func`` on ``[lower, upper]``.

    Uses Gauss-Legendre at two orders as a built-in error check and
    falls back to adaptive Simpson when the two disagree (which signals
    a non-smooth integrand).
    """
    coarse = gauss_legendre(func, lower, upper, order=order // 2)
    fine = gauss_legendre(func, lower, upper, order=order)
    scale = max(1.0, abs(fine))
    if math.isfinite(fine) and abs(fine - coarse) <= 1e-9 * scale:
        return fine
    return adaptive_simpson(func, lower, upper, tol=tol)
