"""Root finding helpers (bisection) for inverting monotone curves.

Used e.g. to answer "how many communicable APs are needed for the
expected intersected area of Theorem 2 to drop below X?" and to invert
the Theorem 1 link budget for a target coverage radius.
"""

from __future__ import annotations

from typing import Callable


def bisect(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find a root of ``func`` in ``[lower, upper]`` by bisection.

    Requires a sign change over the bracket; raises ``ValueError``
    otherwise.  Returns the midpoint of the final bracket.
    """
    f_lower = func(lower)
    f_upper = func(upper)
    if f_lower == 0.0:
        return lower
    if f_upper == 0.0:
        return upper
    if (f_lower > 0.0) == (f_upper > 0.0):
        raise ValueError(
            f"bisect: no sign change on [{lower}, {upper}] "
            f"(f(lower)={f_lower}, f(upper)={f_upper})"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lower + upper)
        f_mid = func(mid)
        if f_mid == 0.0 or (upper - lower) < tol:
            return mid
        if (f_mid > 0.0) == (f_lower > 0.0):
            lower, f_lower = mid, f_mid
        else:
            upper = mid
    return 0.5 * (lower + upper)
