"""Numerical substrates: quadrature, root finding, and RNG helpers.

The paper evaluates Theorems 2 and 3 numerically ("computed from the
theorem using Matlab simulation").  This package provides the numeric
machinery we use instead of Matlab: Gauss-Legendre quadrature and
adaptive Simpson integration (cross-checked against :mod:`scipy` in the
test suite), bisection root finding for inverting monotone theory
curves, and seeded random-number helpers shared by the simulators.
"""

from repro.numerics.quadrature import (
    adaptive_simpson,
    gauss_legendre,
    integrate,
)
from repro.numerics.rootfind import bisect
from repro.numerics.rng import make_rng, spawn_rngs

__all__ = [
    "adaptive_simpson",
    "gauss_legendre",
    "integrate",
    "bisect",
    "make_rng",
    "spawn_rngs",
]
