"""Seeded random-number helpers shared by all simulators.

Every stochastic component in this library takes either a seed or a
``numpy.random.Generator``.  These helpers normalize between the two and
support deterministic fan-out of independent child streams, so that an
entire campus simulation is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Deterministically derive ``count`` independent generators.

    Uses ``SeedSequence.spawn`` so child streams are statistically
    independent regardless of how many draws each consumer makes.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        children = np.random.SeedSequence(
            int(seed.integers(0, 2**63 - 1))
        ).spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]
