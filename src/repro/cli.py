"""Command-line interface for the digital Marauder's map.

Subcommands::

    marauder theory    — print the Theorem 2/3 curves (Figs 2, 5, 6)
    marauder coverage  — Theorem 1 coverage radii per receiver chain
    marauder simulate  — run the full campus attack and report accuracy
    marauder map       — render the Marauder's-map HTML display
    marauder week      — the 7-day probing-feasibility statistics
    marauder engine    — streaming engine (``--metrics-json``/``--trace``
                         export observability data)
    marauder capture   — capture-file tooling: convert between JSONL and
                         the columnar block store, compact/merge capture
                         files, and print block/bloom statistics
    marauder metrics   — inspect a metrics snapshot JSON

Every subcommand accepts ``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="marauder",
        description="Reproduction of 'The Digital Marauder's Map' "
                    "(ICDCS 2009)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_theory = sub.add_parser("theory", help="Theorem 2/3 curves")
    p_theory.add_argument("--max-k", type=int, default=20)

    sub.add_parser("coverage", help="Theorem 1 coverage radii (Fig 12)")

    p_sim = sub.add_parser("simulate", help="campus attack accuracy")
    p_sim.add_argument("--seed", type=int, default=11)
    p_sim.add_argument("--cases", type=int, default=120)
    p_sim.add_argument("--markdown", metavar="FILE",
                       help="also write a markdown report to FILE")

    p_map = sub.add_parser("map", help="render the map display")
    p_map.add_argument("--seed", type=int, default=7)
    p_map.add_argument("--output", default="marauders_map.html")
    p_map.add_argument("--duration", type=float, default=240.0)
    p_map.add_argument("--geojson", metavar="FILE",
                       help="also export a GeoJSON FeatureCollection")

    p_week = sub.add_parser("week", help="7-day probing statistics")
    p_week.add_argument("--seed", type=int, default=2008)
    p_week.add_argument("--active", action="store_true",
                        help="enable the active (deauth) attack")

    p_plan = sub.add_parser(
        "plan", help="channel planning from a WiGLE-style CSV")
    p_plan.add_argument("wigle", help="WiGLE-style CSV with AP channels")
    p_plan.add_argument("--cards", type=int, default=3)
    p_plan.add_argument("--lat", type=float, default=42.6555)
    p_plan.add_argument("--lon", type=float, default=-71.3262)

    p_replay = sub.add_parser(
        "replay", help="localize devices from a capture file")
    p_replay.add_argument("capture", help="JSONL capture file")
    p_replay.add_argument("--wigle", required=True,
                          help="WiGLE-style CSV with AP knowledge")
    p_replay.add_argument("--lat", type=float, default=42.6555,
                          help="tangent-plane origin latitude")
    p_replay.add_argument("--lon", type=float, default=-71.3262,
                          help="tangent-plane origin longitude")
    p_replay.add_argument("--r-max", type=float, default=150.0,
                          help="radius upper bound for the AP-Rad LP")
    p_replay.add_argument("--lenient", action="store_true",
                          help="skip (and count) malformed capture "
                               "records instead of aborting on the "
                               "first one")

    p_engine = sub.add_parser(
        "engine",
        help="streaming localization engine over a capture file")
    p_engine.add_argument("capture", nargs="?", default=None,
                          help="capture file (any registered format)")
    p_engine.add_argument("--capture", dest="capture_flag", metavar="FILE",
                          default=None,
                          help="capture file (alternative to the "
                               "positional argument)")
    p_engine.add_argument("--format", default=None,
                          help="capture codec name (default: sniff the "
                               "file; 'jsonl' or 'columnar' built in)")
    p_engine.add_argument("--batch-replay", action="store_true",
                          help="feed the engine whole capture batches "
                               "(zero-copy for columnar captures) "
                               "instead of one frame at a time; assumes "
                               "a time-sorted capture")
    p_engine.add_argument("--device", metavar="MAC", default=None,
                          help="replay only records mentioning this "
                               "device (columnar captures skip whole "
                               "blocks via per-block bloom filters)")
    p_engine.add_argument("--wigle", required=True,
                          help="WiGLE-style CSV with AP knowledge")
    p_engine.add_argument("--lat", type=float, default=42.6555,
                          help="tangent-plane origin latitude")
    p_engine.add_argument("--lon", type=float, default=-71.3262,
                          help="tangent-plane origin longitude")
    p_engine.add_argument("--fallback-range", type=float, default=150.0,
                          help="assumed AP range (m) when the knowledge "
                               "base has none (the WiGLE case)")
    p_engine.add_argument("--window", type=float, default=30.0,
                          help="sliding co-observation window (s)")
    p_engine.add_argument("--batch", type=int, default=32,
                          help="dirty devices per micro-batch")
    p_engine.add_argument("--cache-size", type=int, default=4096,
                          help="Γ-set memoization entries (0 disables)")
    p_engine.add_argument("--no-cache", action="store_true",
                          help="disable Γ-set memoization")
    p_engine.add_argument("--workers", type=int, default=None,
                          help="process-pool width for batch "
                               "localization (default 1; resumed runs "
                               "keep the checkpointed width unless "
                               "overridden)")
    p_engine.add_argument("--refit-every", type=int, default=0,
                          help="re-fit AP radii (incremental AP-Rad LP) "
                               "every N evidence events; 0 keeps the "
                               "static M-Loc fallback range")
    p_engine.add_argument("--r-max", type=float, default=150.0,
                          help="radius upper bound for the AP-Rad LP "
                               "(used with --refit-every)")
    p_engine.add_argument("--checkpoint", metavar="FILE",
                          help="write an engine checkpoint after the run")
    p_engine.add_argument("--checkpoint-keep", type=int, default=1,
                          metavar="N",
                          help="checkpoint generations to keep (rotated "
                               "to FILE.1, FILE.2, ...; default 1)")
    p_engine.add_argument("--resume", metavar="FILE",
                          help="restore engine state from a checkpoint "
                               "before ingesting (falls back to the "
                               "newest valid FILE.N rotation when FILE "
                               "is corrupt)")
    p_engine.add_argument("--lenient", action="store_true",
                          help="skip (and count) malformed capture "
                               "records instead of aborting on the "
                               "first one")
    p_engine.add_argument("--inject", action="append", metavar="SPEC",
                          default=None,
                          help="arm a deterministic fault for chaos "
                               "testing, e.g. "
                               "'sink.emit:raise=SinkError,times=3' or "
                               "'lp.solve:delay=0.05'; repeatable")
    p_engine.add_argument("--inject-seed", type=int, default=0,
                          help="seed for the fault injector's "
                               "probability streams")
    p_engine.add_argument("--quarantine-after", type=int, default=3,
                          help="quarantine a device after N consecutive "
                               "localization failures (0 disables)")
    p_engine.add_argument("--worker-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-chunk deadline for pool workers "
                               "(default: wait forever)")
    p_engine.add_argument("--tracks", action="store_true",
                          help="print every device's track, not just "
                               "the latest fixes")
    p_engine.add_argument("--localizer", metavar="SPEC",
                          help="localizer spec, e.g. 'm-loc', "
                               "'ap-rad:r_max=200,solver=revised', or a "
                               "degradation chain "
                               "'ap-rad:r_max=200+fallback:m-loc,centroid' "
                               "(default: ap-rad when --refit-every is "
                               "set, else m-loc)")
    p_engine.add_argument("--metrics-json", metavar="FILE",
                          help="write the engine's metrics-registry "
                               "snapshot as JSON")
    p_engine.add_argument("--trace", metavar="FILE",
                          help="write a Chrome trace_event JSON of the "
                               "run's spans")

    p_serve = sub.add_parser(
        "serve",
        help="sharded tracking service over a capture file")
    p_serve.add_argument("capture", nargs="?", default=None,
                         help="capture file (any registered format)")
    p_serve.add_argument("--capture", dest="capture_flag", metavar="FILE",
                         default=None,
                         help="capture file (alternative to the "
                              "positional argument)")
    p_serve.add_argument("--format", default=None,
                         help="capture codec name (default: sniff the "
                              "file)")
    p_serve.add_argument("--wigle", required=True,
                         help="WiGLE-style CSV with AP knowledge")
    p_serve.add_argument("--lat", type=float, default=42.6555,
                         help="tangent-plane origin latitude")
    p_serve.add_argument("--lon", type=float, default=-71.3262,
                         help="tangent-plane origin longitude")
    p_serve.add_argument("--shards", type=int, default=2,
                         help="engine shards in the fleet (default 2)")
    p_serve.add_argument("--transport",
                         choices=("thread", "process", "socket",
                                  "socket-process"),
                         default="thread",
                         help="shard transport: in-process threads, "
                              "one OS process per shard, or the TCP "
                              "SocketBus (with thread or process "
                              "workers)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="HTTP bind address")
    p_serve.add_argument("--port", type=int, default=8737,
                         help="HTTP port (0 picks a free one)")
    p_serve.add_argument("--window", type=float, default=30.0,
                         help="sliding co-observation window (s)")
    p_serve.add_argument("--batch", type=int, default=32,
                         help="dirty devices per micro-batch")
    p_serve.add_argument("--fallback-range", type=float, default=150.0,
                         help="assumed AP range (m) when the knowledge "
                              "base has none (the WiGLE case)")
    p_serve.add_argument("--localizer", metavar="SPEC",
                         help="localizer spec per shard (default m-loc)")
    p_serve.add_argument("--publish-batch", type=int, default=64,
                         help="frames per bus message")
    p_serve.add_argument("--checkpoint-dir", metavar="DIR",
                         help="directory for per-shard checkpoints "
                              "(enables crash recovery)")
    p_serve.add_argument("--checkpoint-every", type=int, default=0,
                         metavar="N",
                         help="checkpoint a shard every N published "
                              "frames (0 = only explicit barriers)")
    p_serve.add_argument("--resume", action="store_true",
                         help="restore the fleet from --checkpoint-dir "
                              "before ingesting")
    p_serve.add_argument("--serve-seconds", type=float, default=None,
                         metavar="S",
                         help="keep serving S seconds after ingest, "
                              "then drain and exit (default: until "
                              "SIGINT/SIGTERM)")
    p_serve.add_argument("--chaos", action="store_true",
                         help="enable the POST /chaos/kill endpoint "
                              "(testing only)")
    p_serve.add_argument("--lenient", action="store_true",
                         help="skip (and count) malformed capture "
                              "records instead of aborting on the "
                              "first one")
    p_serve.add_argument("--ingest-port", type=int, default=None,
                         metavar="PORT",
                         help="also listen for network ingest (framed "
                              "capture batches over TCP, see the "
                              "'ingest' command) on this port "
                              "(0 picks a free one); with no local "
                              "capture file the gateway is the only "
                              "ingest path")
    p_serve.add_argument("--inject", action="append", metavar="SPEC",
                         default=None,
                         help="arm a deterministic fault for chaos "
                              "testing, e.g. 'socket.recv:drop,times=5' "
                              "or 'bus.publish:delay=0.01'; repeatable")
    p_serve.add_argument("--inject-seed", type=int, default=0,
                         help="seed for the fault injector's "
                              "probability streams")

    p_ingest = sub.add_parser(
        "ingest",
        help="stream a capture file to a serving fleet's ingest "
             "gateway")
    p_ingest.add_argument("capture",
                          help="capture file (any registered format)")
    p_ingest.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="ingest gateway address (a 'serve "
                               "--ingest-port' listener)")
    p_ingest.add_argument("--format", default=None,
                          help="capture codec name (default: sniff the "
                               "file)")
    p_ingest.add_argument("--batch-records", type=int, default=128,
                          help="frames per wire batch (default 128)")
    p_ingest.add_argument("--window", type=int, default=8,
                          help="unacked batches in flight (default 8)")
    p_ingest.add_argument("--client-id", default=None, metavar="ID",
                          help="stable delivery-stream id; rerunning "
                               "with the same id against the same "
                               "server resumes instead of "
                               "double-ingesting (default: fresh UUID)")
    p_ingest.add_argument("--lenient", action="store_true",
                          help="skip (and count) malformed capture "
                               "records instead of aborting on the "
                               "first one")

    p_capture = sub.add_parser(
        "capture",
        help="capture-file tooling: convert, compact, info")
    cap_sub = p_capture.add_subparsers(dest="capture_command",
                                       required=True)

    def _columnar_options(cap_parser):
        cap_parser.add_argument("--format", default="columnar",
                                help="output codec (default columnar)")
        cap_parser.add_argument("--block-records", type=int, default=65536,
                                help="rows per columnar block")
        cap_parser.add_argument("--bloom-bits", type=int, default=32768,
                                help="bloom filter width per block")
        cap_parser.add_argument("--bloom-hashes", type=int, default=4,
                                help="bloom probes per device")
        cap_parser.add_argument("--no-sort", action="store_true",
                                help="keep arrival order inside blocks "
                                     "instead of sorting by rx time")

    p_cap_convert = cap_sub.add_parser(
        "convert", help="convert one capture between formats")
    p_cap_convert.add_argument("src", help="source capture (any format)")
    p_cap_convert.add_argument("dst", help="destination path")
    _columnar_options(p_cap_convert)
    p_cap_convert.add_argument("--lenient", action="store_true",
                               help="skip (and count) malformed source "
                                    "records instead of aborting")

    p_cap_compact = cap_sub.add_parser(
        "compact",
        help="merge captures into one globally time-sorted capture")
    p_cap_compact.add_argument("sources", nargs="+",
                               help="source captures (formats may mix)")
    p_cap_compact.add_argument("--output", required=True, metavar="FILE",
                               help="merged capture destination")
    _columnar_options(p_cap_compact)
    p_cap_compact.add_argument("--strict", action="store_true",
                               help="abort on the first malformed "
                                    "source record (default: lenient)")

    p_cap_info = cap_sub.add_parser(
        "info", help="summary, block, and bloom statistics")
    p_cap_info.add_argument("path", help="capture file")
    p_cap_info.add_argument("--format", default=None,
                            help="codec name (default: sniff the file)")
    p_cap_info.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")

    p_metrics = sub.add_parser(
        "metrics", help="inspect a metrics snapshot JSON")
    p_metrics.add_argument("snapshot",
                           help="snapshot file written by "
                                "'engine --metrics-json'")
    p_metrics.add_argument("--prometheus", action="store_true",
                           help="render Prometheus text exposition "
                                "instead of the human-readable block")

    args = parser.parse_args(argv)
    handler = {
        "theory": _cmd_theory,
        "coverage": _cmd_coverage,
        "simulate": _cmd_simulate,
        "map": _cmd_map,
        "week": _cmd_week,
        "plan": _cmd_plan,
        "replay": _cmd_replay,
        "engine": _cmd_engine,
        "serve": _cmd_serve,
        "ingest": _cmd_ingest,
        "capture": _cmd_capture,
        "metrics": _cmd_metrics,
    }[args.command]
    return handler(args)


def _fail(message: str) -> int:
    """Print a clear one-line error (no traceback) and exit non-zero."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _resolve_capture(args) -> Optional[str]:
    """The capture path from the positional arg or ``--capture``.

    Returns ``None`` when neither or both were given — the caller turns
    that into a usage error.
    """
    positional = getattr(args, "capture", None)
    flag = getattr(args, "capture_flag", None)
    if positional and flag:
        return None
    return positional or flag


def _cmd_capture(args) -> int:
    import json

    from repro.capture import capture_info, compact_captures
    from repro.faults import CaptureError

    if args.capture_command == "info":
        try:
            info = capture_info(args.path, format=args.format)
        except OSError as error:
            return _fail(f"cannot read capture {args.path!r}: {error}")
        except (CaptureError, ValueError) as error:
            return _fail(f"corrupt capture {args.path!r}: {error}")
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"{info['path']}: {info['format']} capture, "
              f"{info['records']} records, {info['file_bytes']} bytes")
        if info.get("time"):
            t_min, t_max = info["time"]
            print(f"  time range: {t_min:.3f} .. {t_max:.3f} s "
                  f"({t_max - t_min:.3f} s)")
        if info["format"] == "columnar":
            bloom = info["bloom"]
            print(f"  {info['blocks']} block(s) of up to "
                  f"{info['block_records']} x {info['record_bytes']}-byte "
                  f"records, aux {info['aux_bytes']} bytes, globally "
                  f"sorted: {info['globally_sorted']}")
            print(f"  bloom: {bloom['bits']} bits x {bloom['hashes']} "
                  f"hashes per block, mean fill "
                  f"{bloom['mean_fill'] * 100.0:.2f}%")
        else:
            print(f"  skipped (malformed) records: {info['skipped']}, "
                  f"distinct devices: {info['devices']}")
        return 0

    writer_options = {}
    if args.format == "columnar":
        writer_options = {
            "block_records": args.block_records,
            "bloom_bits": args.bloom_bits,
            "bloom_hashes": args.bloom_hashes,
            "sort_within_block": not args.no_sort,
        }
    if args.capture_command == "convert":
        sources, output = [args.src], args.dst
        strict = not args.lenient
    else:
        sources, output = list(args.sources), args.output
        strict = args.strict
    try:
        report = compact_captures(sources, output, format=args.format,
                                  strict=strict, **writer_options)
    except OSError as error:
        return _fail(f"cannot read capture: {error}")
    except (CaptureError, ValueError) as error:
        return _fail(f"corrupt capture: {error}")
    summary = (f"{report['records']} records -> {report['output']} "
               f"[{report['format']}]")
    if "blocks" in report:
        summary += f", {report['blocks']} block(s)"
    if report["skipped"]:
        summary += f", {report['skipped']} malformed record(s) skipped"
    print(f"Compacted {len(report['sources'])} capture(s): {summary}")
    return 0


def _cmd_theory(args) -> int:
    from repro.theory import (
        coverage_probability_underestimate,
        expected_area_overestimate,
        expected_intersected_area,
    )

    print("Theorem 2 — expected intersected area vs k (r = 1):")
    for k in range(1, args.max_k + 1):
        print(f"  k={k:2d}  CA={expected_intersected_area(k):8.4f}")
    print("\nTheorem 3 — area vs estimated radius R (k = 10, r = 1):")
    for big_r in (1.0, 1.1, 1.2, 1.4, 1.6, 1.8, 2.0):
        area = expected_area_overestimate(10, 1.0, big_r)
        print(f"  R={big_r:.1f}  CA={area:8.4f}")
    print("\nTheorem 3 — coverage probability vs R < r (k = 10, r = 1):")
    for big_r in (0.5, 0.7, 0.8, 0.9, 0.95, 1.0):
        p = coverage_probability_underestimate(10, 1.0, big_r)
        print(f"  R={big_r:.2f}  p={p:.6f}")
    return 0


def _cmd_coverage(args) -> int:
    from repro.radio.link_budget import LinkBudget, Transmitter
    from repro.sniffer.receiver import (
        build_dlink_chain,
        build_hg2415u_chain,
        build_marauder_chain,
        build_src_chain,
    )

    mobile = Transmitter(power_dbm=15.0, antenna_gain_dbi=0.0)
    print("Theorem 1 free-space coverage radius per receiver chain")
    print("(transmitter: 15 dBm mobile, 0 dBi antenna, channel 6):\n")
    for chain in (build_dlink_chain(), build_src_chain(),
                  build_hg2415u_chain(), build_marauder_chain()):
        budget = LinkBudget(mobile, chain)
        print(f"  {chain.name:10s} NF={chain.noise_figure_db:5.2f} dB  "
              f"sensitivity={chain.sensitivity_dbm:7.1f} dBm  "
              f"radius={budget.coverage_radius_m():9.1f} m")
    return 0


def _cmd_simulate(args) -> int:
    from repro.analysis import run_localization_experiment
    from repro.localization import CentroidLocalizer, MLoc
    from repro.sim.scenarios import build_disc_model_experiment

    print(f"Building campus experiment (seed={args.seed}) ...")
    exp = build_disc_model_experiment(seed=args.seed,
                                      case_count=args.cases)
    aprad = exp.make_aprad()
    aprad.fit(exp.corpus)
    reports = run_localization_experiment(
        {"M-Loc": MLoc(exp.mloc_db), "AP-Rad": aprad,
         "Centroid": CentroidLocalizer(exp.location_db)},
        exp.cases)
    print(f"{len(exp.cases)} test points, "
          f"{len(exp.corpus)} observation-corpus entries\n")
    print("Average localization error (meters):")
    for name, report in reports.items():
        print(f"  {name:10s} {report.mean_error():6.2f}")
    print("\nPaper (UML campus): M-Loc 9.41, AP-Rad 13.75, "
          "Centroid 17.28 meters")
    if args.markdown:
        from pathlib import Path

        from repro.analysis.report import render_markdown_report

        document = render_markdown_report(
            reports,
            paper_means={"M-Loc": 9.41, "AP-Rad": 13.75,
                         "Centroid": 17.28},
            title=f"Marauder's-map accuracy (seed {args.seed})")
        Path(args.markdown).write_text(document, encoding="utf-8")
        print(f"Markdown report written to {args.markdown}")
    return 0


def _cmd_map(args) -> int:
    from repro.display import MapRenderer, render_html_map
    from repro.localization import MLoc
    from repro.sim import build_attack_scenario

    scenario = build_attack_scenario(seed=args.seed)
    scenario.world.run(duration_s=args.duration)
    store = scenario.world.sniffer.store
    renderer = MapRenderer(width_m=600.0, height_m=600.0)
    for record in scenario.truth_db:
        renderer.add_access_point(record.location, label=str(record.ssid))
    renderer.add_sniffer(scenario.world.sniffer.position)
    mloc = MLoc(scenario.truth_db)
    located = 0
    estimates = {}
    for mobile in store.seen_mobiles:
        gamma = store.gamma(mobile, at_time=scenario.world.now)
        if not gamma:
            continue
        estimate = mloc.locate(gamma)
        if estimate is None:
            continue
        renderer.add_estimate(estimate.position, label=str(mobile))
        estimates[mobile] = estimate
        located += 1
    for station in scenario.world.stations:
        renderer.add_true_position(station.position, label=str(station.mac))
    render_html_map(
        renderer,
        caption=f"{located} mobiles located after {args.duration:.0f} s "
                f"of monitoring (seed {args.seed})",
        output_path=args.output)
    print(f"Wrote {args.output} ({located} mobiles located)")
    if args.geojson:
        from repro.display.geojson import export_geojson
        from repro.geo.sites import uml_plane

        export_geojson(uml_plane(), database=scenario.truth_db,
                       estimates=estimates,
                       truths=[(s.mac, s.position)
                               for s in scenario.world.stations],
                       output_path=args.geojson)
        print(f"Wrote {args.geojson}")
    return 0


def _cmd_week(args) -> int:
    from repro.numerics import make_rng
    from repro.sim.population import PopulationConfig, simulate_week

    stats = simulate_week(PopulationConfig(), make_rng(args.seed),
                          active_attack=args.active)
    mode = "active attack" if args.active else "passive monitoring"
    print(f"7-day probing statistics ({mode}):\n")
    print(f"{'day':8s} {'dow':4s} {'found':>6s} {'probing':>8s} {'pct':>7s}")
    for day in stats:
        print(f"{day.label:8s} {day.weekday:4s} {day.found_mobiles:6d} "
              f"{day.probing_mobiles:8d} {day.probing_percentage:6.1f}%")
    print("\nPaper: every day above 50%, peak 91.61% on Oct 25 (Sat)")
    return 0


def _cmd_plan(args) -> int:
    from repro.geo.enu import LocalTangentPlane
    from repro.geo.wgs84 import GeodeticCoordinate
    from repro.knowledge.wigle import import_wigle_csv
    from repro.sniffer.planning import plan_channels

    plane = LocalTangentPlane(GeodeticCoordinate(args.lat, args.lon))
    database = import_wigle_csv(args.wigle, plane)
    histogram = {}
    skipped = 0
    for record in database:
        if record.channel is None:
            skipped += 1
            continue
        histogram[record.channel] = histogram.get(record.channel, 0) + 1
    if not histogram:
        print("No channel information in the CSV; cannot plan.")
        return 1
    print(f"{len(database)} APs ({skipped} without channel info).")
    print("Channel histogram:")
    peak = max(histogram.values())
    for channel in sorted(histogram):
        count = histogram[channel]
        bar = "#" * max(1, int(30 * count / peak))
        print(f"  ch {channel:2d}: {count:5d} {bar}")
    plan = plan_channels(histogram, cards=args.cards)
    print(f"\nWith {args.cards} card(s): {plan.describe()}")
    return 0


def _cmd_replay(args) -> int:
    from repro.geo.enu import LocalTangentPlane
    from repro.geo.wgs84 import GeodeticCoordinate
    from repro.knowledge.wigle import import_wigle_csv
    from repro.localization import make_localizer
    from repro.sniffer.replay import replay_capture

    plane = LocalTangentPlane(GeodeticCoordinate(args.lat, args.lon))
    try:
        database = import_wigle_csv(args.wigle, plane)
    except OSError as error:
        return _fail(f"cannot read WiGLE CSV {args.wigle!r}: {error}")
    try:
        result = replay_capture(args.capture, strict=not args.lenient)
    except OSError as error:
        return _fail(f"cannot read capture {args.capture!r}: {error}")
    except (ValueError, KeyError) as error:
        return _fail(f"corrupt capture {args.capture!r}: {error}")
    print(f"Replayed {result.frames_replayed} frames: "
          f"{len(result.mobiles)} mobiles, "
          f"{len(result.store.observed_aps)} APs observed.")
    if not result.store.all_observations():
        print("No (mobile, AP) communication evidence in the capture.")
        return 0
    # WiGLE knowledge has locations only: AP-Rad is the right algorithm.
    aprad = make_localizer("ap-rad", database=database,
                           r_max=args.r_max, solver="scipy",
                           min_evidence=2, overestimate_factor=1.2)
    aprad.fit(result.store.corpus())
    located = 0
    for mobile, estimate in sorted(
            result.locate_all(aprad).items()):
        if estimate is None:
            print(f"  {mobile}  (no known APs in its evidence)")
            continue
        located += 1
        coordinate = plane.from_point(estimate.position)
        print(f"  {mobile}  -> ({coordinate.latitude_deg:.6f}, "
              f"{coordinate.longitude_deg:.6f})  "
              f"[{estimate.used_ap_count} APs]")
    print(f"Located {located}/{len(result.mobiles)} devices.")
    return 0


def _cmd_engine(args) -> int:
    import json
    from pathlib import Path

    from repro import obs
    from repro.engine import (
        StreamingEngine,
        load_checkpoint_data,
        make_sink,
    )
    from repro.faults import (
        CheckpointError,
        FaultInjector,
        parse_fault_spec,
        use_injector,
    )
    from repro.geo.enu import LocalTangentPlane
    from repro.geo.wgs84 import GeodeticCoordinate
    from repro.knowledge.wigle import import_wigle_csv
    from repro.localization import make_localizer
    from repro.net80211.mac import MacAddress
    from repro.sniffer.replay import iter_capture, iter_capture_batches

    capture_path = _resolve_capture(args)
    if capture_path is None:
        return _fail("give the capture file once, either positionally "
                     "or via --capture")
    device = None
    if args.device is not None:
        try:
            device = MacAddress.parse(args.device)
        except ValueError as error:
            return _fail(f"bad --device MAC {args.device!r}: {error}")
    plane = LocalTangentPlane(GeodeticCoordinate(args.lat, args.lon))
    try:
        database = import_wigle_csv(args.wigle, plane)
    except OSError as error:
        return _fail(f"cannot read WiGLE CSV {args.wigle!r}: {error}")
    if args.refit_every < 0:
        return _fail(f"--refit-every must be >= 0, got {args.refit_every}")
    if args.checkpoint_keep < 1:
        return _fail(
            f"--checkpoint-keep must be >= 1, got {args.checkpoint_keep}")
    if args.quarantine_after < 0:
        return _fail(f"--quarantine-after must be >= 0, "
                     f"got {args.quarantine_after}")
    injector = None
    if args.inject:
        try:
            specs = [parse_fault_spec(text) for text in args.inject]
        except ValueError as error:
            return _fail(str(error))
        injector = FaultInjector(specs, seed=args.inject_seed)
    checkpoint_data = None
    refit_every = args.refit_every
    if args.resume:
        try:
            checkpoint_data = load_checkpoint_data(args.resume)
        except CheckpointError as error:
            return _fail(f"corrupt checkpoint {args.resume!r}: {error}")
        except OSError as error:
            return _fail(f"cannot read checkpoint {args.resume!r}: {error}")
        if refit_every == 0 and isinstance(checkpoint_data, dict):
            # A checkpointed schedule survives the restart even when
            # --refit-every is not repeated on the resume command line;
            # the localizer choice below must match it.
            config = checkpoint_data.get("config", {})
            if isinstance(config, dict):
                try:
                    refit_every = int(config.get("refit_every", 0))
                except (TypeError, ValueError) as error:
                    return _fail(
                        f"corrupt checkpoint {args.resume!r}: {error}")
    try:
        if args.localizer:
            localizer = make_localizer(args.localizer, database=database)
        elif refit_every > 0:
            # Streaming AP-Rad: radii re-estimated from the
            # accumulating evidence on schedule, warm-starting the
            # incremental LP.
            localizer = make_localizer(
                "ap-rad", database=database, r_max=args.r_max,
                solver="revised", min_evidence=2, overestimate_factor=1.2)
        else:
            # WiGLE knowledge carries locations only: M-Loc with an
            # assumed range is the stream-friendly choice when no
            # re-fit schedule is requested.
            localizer = make_localizer(
                "m-loc", database=database,
                fallback_range_m=args.fallback_range)
    except ValueError as error:
        return _fail(str(error))
    cache_size = 0 if args.no_cache else args.cache_size
    fixes = make_sink("latest")
    if args.workers is not None and args.workers < 1:
        return _fail(f"--workers must be >= 1, got {args.workers}")
    if checkpoint_data is not None:
        try:
            engine = StreamingEngine.restore(
                checkpoint_data, localizer, sinks=[fixes],
                workers=args.workers)
        except (ValueError, KeyError, TypeError) as error:
            return _fail(f"corrupt checkpoint {args.resume!r}: {error}")
        print(f"Resumed from {args.resume} "
              f"({engine.stats().frames_ingested} frames already seen).")
    else:
        try:
            engine = StreamingEngine(localizer, window_s=args.window,
                                     batch_size=args.batch,
                                     cache_size=cache_size, sinks=[fixes],
                                     workers=args.workers or 1,
                                     refit_every=refit_every,
                                     quarantine_after=args.quarantine_after,
                                     worker_timeout_s=args.worker_timeout)
        except ValueError as error:
            return _fail(str(error))
    recorder = obs.SpanRecorder() if args.trace else None

    def run_engine():
        if args.batch_replay:
            stream = iter_capture_batches(
                capture_path, strict=not args.lenient,
                device=device, format=args.format)
            run = lambda: engine.run_batches(stream)  # noqa: E731
        else:
            stream = iter_capture(
                capture_path, strict=not args.lenient,
                device=device, format=args.format)
            run = lambda: engine.run(stream)  # noqa: E731
        if injector is not None:
            with use_injector(injector):
                return run()
        return run()

    try:
        if recorder is not None:
            with obs.use_recorder(recorder):
                stats = run_engine()
        else:
            stats = run_engine()
    except OSError as error:
        return _fail(f"cannot read capture {capture_path!r}: {error}")
    except (ValueError, KeyError) as error:
        return _fail(f"corrupt capture {capture_path!r}: {error}")

    for mobile, (timestamp, estimate) in sorted(
            fixes.fixes.items(), key=lambda item: str(item[0])):
        coordinate = plane.from_point(estimate.position)
        print(f"  {mobile}  -> ({coordinate.latitude_deg:.6f}, "
              f"{coordinate.longitude_deg:.6f})  "
              f"at t={timestamp:.1f}s  [{estimate.used_ap_count} APs]")
    if args.tracks:
        for mobile in engine.tracker.devices():
            track = engine.tracker.track_of(mobile)
            print(f"  track {mobile}: "
                  + " -> ".join(f"({p.estimate.position.x:.0f},"
                                f"{p.estimate.position.y:.0f})@{p.timestamp:.0f}s"
                                for p in track))
    print(stats.format())
    if injector is not None:
        fired = injector.fired()
        if fired:
            print("Injected faults: "
                  + ", ".join(f"{site} x{count}"
                              for site, count in sorted(fired.items())))
        else:
            print("Injected faults: none fired")
    if args.metrics_json:
        Path(args.metrics_json).write_text(
            json.dumps(engine.metrics_snapshot(), indent=2, sort_keys=True),
            encoding="utf-8")
        print(f"Metrics snapshot written to {args.metrics_json}")
    if recorder is not None:
        recorder.export_chrome(args.trace)
        print(f"Trace ({len(recorder)} spans) written to {args.trace}")
    if args.checkpoint:
        engine.save_checkpoint(args.checkpoint, keep=args.checkpoint_keep)
        print(f"Checkpoint written to {args.checkpoint}")
    return 0


def _cmd_serve(args) -> int:
    import contextlib
    import functools
    import signal
    import threading

    from repro import faults
    from repro.geo.enu import LocalTangentPlane
    from repro.geo.wgs84 import GeodeticCoordinate
    from repro.knowledge.wigle import import_wigle_csv
    from repro.localization import make_localizer
    from repro.service import (
        FrameIngestServer,
        ServiceError,
        ServiceServer,
        ShardConfig,
        ShardedEngine,
    )
    from repro.sniffer.replay import iter_capture

    capture_path = _resolve_capture(args)
    if capture_path is None and args.ingest_port is None:
        return _fail("give a capture file (positionally or via "
                     "--capture), or --ingest-port for network-only "
                     "ingest")
    injector = None
    if args.inject:
        try:
            specs = [faults.parse_fault_spec(text)
                     for text in args.inject]
        except ValueError as error:
            return _fail(str(error))
        injector = faults.FaultInjector(specs, seed=args.inject_seed)
    plane = LocalTangentPlane(GeodeticCoordinate(args.lat, args.lon))
    try:
        database = import_wigle_csv(args.wigle, plane)
    except OSError as error:
        return _fail(f"cannot read WiGLE CSV {args.wigle!r}: {error}")
    if args.shards < 1:
        return _fail(f"--shards must be >= 1, got {args.shards}")
    spec = args.localizer or "m-loc"
    try:
        # A picklable factory: each shard (possibly another process)
        # builds its own localizer from the same spec and knowledge.
        factory = functools.partial(
            make_localizer, spec, database=database,
            **({} if args.localizer else
               {"fallback_range_m": args.fallback_range}))
        factory()  # validate the spec before spawning the fleet
    except ValueError as error:
        return _fail(str(error))
    config = ShardConfig(window_s=args.window, batch_size=args.batch)
    try:
        engine = ShardedEngine(
            factory, shards=args.shards, transport=args.transport,
            config=config, checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            publish_batch=args.publish_batch, resume=args.resume)
    except (ServiceError, ValueError) as error:
        return _fail(str(error))

    stop_event = threading.Event()
    # Signal handlers only install from the main thread (tests drive
    # this handler from workers; there the deadline is the only stop).
    previous = {}
    if threading.current_thread() is threading.main_thread():
        previous = {signum: signal.signal(signum,
                                          lambda *_: stop_event.set())
                    for signum in (signal.SIGINT, signal.SIGTERM)}
    try:
        with contextlib.ExitStack() as stack:
            if injector is not None:
                # Process-wide: the socket transports' reader/sender
                # threads must see the faults too.
                stack.enter_context(
                    faults.use_injector(injector, all_threads=True))
            server = stack.enter_context(
                ServiceServer(engine, host=args.host, port=args.port,
                              allow_chaos=args.chaos))
            host, port = server.address
            print(f"Serving {args.shards} shard(s) [{args.transport}] "
                  f"on http://{host}:{port}", flush=True)
            if args.ingest_port is not None:
                gateway = stack.enter_context(
                    FrameIngestServer(engine, host=args.host,
                                      port=args.ingest_port))
                ghost, gport = gateway.address
                print(f"Ingest gateway on {ghost}:{gport}", flush=True)
            if capture_path is not None:
                try:
                    engine.ingest_stream(
                        iter_capture(capture_path,
                                     strict=not args.lenient,
                                     format=args.format))
                    stats = engine.drain()
                except OSError as error:
                    engine.stop()
                    return _fail(
                        f"cannot read capture {capture_path!r}: {error}")
                except (ValueError, KeyError) as error:
                    engine.stop()
                    return _fail(
                        f"corrupt capture {capture_path!r}: {error}")
                print(f"Ingest complete: {stats.frames_ingested} "
                      f"frames, {stats.devices_seen} devices, "
                      f"{stats.estimates_emitted} localizations.",
                      flush=True)
            # Serve until the deadline or a signal; queries (and chaos
            # kills + supervised restarts) keep flowing meanwhile.
            stop_event.wait(timeout=args.serve_seconds)
            print("Draining fleet for shutdown...", flush=True)
            engine.stop()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if injector is not None:
        fired = injector.fired()
        if fired:
            summary = ", ".join(f"{site} x{count}"
                                for site, count in sorted(fired.items()))
            print(f"Injected faults: {summary}")
        else:
            print("Injected faults: none fired")
    final = engine.stats()
    print(f"Served fleet stopped cleanly "
          f"({final.estimates_emitted} localizations total).")
    return 0


def _cmd_ingest(args) -> int:
    from repro.faults import ReproError
    from repro.service import stream_capture_to

    host, sep, port_text = args.connect.rpartition(":")
    if not sep or not host:
        return _fail(f"--connect must be HOST:PORT, got "
                     f"{args.connect!r}")
    try:
        port = int(port_text)
    except ValueError:
        return _fail(f"--connect port must be an integer, got "
                     f"{port_text!r}")
    if args.batch_records < 1:
        return _fail(f"--batch-records must be >= 1, got "
                     f"{args.batch_records}")
    if args.window < 1:
        return _fail(f"--window must be >= 1, got {args.window}")
    try:
        stats = stream_capture_to(
            args.capture, (host, port),
            batch_records=args.batch_records, window=args.window,
            client_id=args.client_id, format=args.format,
            strict=not args.lenient)
    except OSError as error:
        return _fail(f"cannot stream {args.capture!r} to "
                     f"{args.connect}: {error}")
    except (ReproError, ValueError, KeyError) as error:
        return _fail(str(error))
    print(f"Ingest complete: {stats.frames} frames in {stats.batches} "
          f"batches to {args.connect} "
          f"({stats.reconnects} reconnects, "
          f"{stats.batches_resent} batches resent).")
    return 0


def _cmd_metrics(args) -> int:
    import json
    from pathlib import Path

    from repro import obs

    try:
        data = json.loads(Path(args.snapshot).read_text(encoding="utf-8"))
    except OSError as error:
        return _fail(f"cannot read snapshot {args.snapshot!r}: {error}")
    except ValueError as error:
        return _fail(f"corrupt snapshot {args.snapshot!r}: {error}")
    if not isinstance(data, dict):
        return _fail(f"corrupt snapshot {args.snapshot!r}: expected a "
                     "JSON object")
    if args.prometheus:
        registry = obs.MetricsRegistry()
        try:
            registry.merge(data)
        except (KeyError, TypeError, ValueError) as error:
            return _fail(
                f"corrupt snapshot {args.snapshot!r}: {error}")
        print(registry.render_prometheus(), end="")
    else:
        print(obs.format_snapshot(data))
    return 0


if __name__ == "__main__":
    sys.exit(main())
