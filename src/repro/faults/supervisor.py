"""Worker-chunk supervision: timeouts, broken pools, bounded re-dispatch.

``Localizer.locate_batch`` fans a micro-batch across a process pool as
one future per chunk.  A hung worker (or a pool whose process died)
would otherwise wedge the merge loop forever — the classic way a
long-running capture campaign dies at hour six.  The
:class:`WorkerSupervisor` collects chunk futures *in submission order*
(preserving the engine's determinism guarantee) with a per-chunk
timeout; on a timeout, cancellation, broken pool, or typed
:class:`~repro.faults.errors.ReproError` escaping a chunk it notifies
the owner (who replaces the executor), re-dispatches every uncollected
chunk, and gives up with :class:`WorkerError` only after a bounded
number of dispatches of the same chunk.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, CancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, List, Optional, Sequence

from repro.faults.errors import ReproError, WorkerError


class _FailedDispatch:
    """Placeholder future for a submission that itself raised."""

    def __init__(self, error: BaseException):
        self.error = error


class WorkerSupervisor:
    """Collects fan-out futures with timeout and bounded re-dispatch.

    Parameters
    ----------
    timeout_s:
        Per-chunk wall-clock budget for ``future.result``; ``None``
        waits forever (timeouts disabled, pool breakage still handled).
    max_dispatches:
        How many times one chunk may be dispatched before the
        supervisor raises :class:`WorkerError`.
    on_failure:
        ``on_failure(index, error)`` notification before a re-dispatch
        (or the final failure).  The engine uses it to count the event
        and replace its executor, so the re-submissions land on a
        fresh pool.
    current_executor:
        Optional zero-arg callable returning the executor to submit on
        *now* — consulted by the caller's submit closure after a pool
        replacement.
    """

    #: Failure shapes that trigger re-dispatch rather than propagation.
    FAILURES = (FutureTimeoutError, CancelledError, BrokenExecutor,
                ReproError)

    def __init__(self, timeout_s: Optional[float] = None,
                 max_dispatches: int = 3,
                 on_failure: Optional[Callable[[int, BaseException],
                                               None]] = None,
                 current_executor: Optional[Callable[[], object]] = None):
        if timeout_s is not None and timeout_s <= 0.0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if max_dispatches < 1:
            raise ValueError(
                f"max_dispatches must be >= 1, got {max_dispatches}")
        self.timeout_s = timeout_s
        self.max_dispatches = max_dispatches
        self.on_failure = on_failure
        self.current_executor = current_executor

    def _try_submit(self, submit, task):
        try:
            return submit(task)
        except self.FAILURES as error:
            return _FailedDispatch(error)

    def run(self, submit: Callable[[object], object],
            tasks: Sequence[object]) -> List[object]:
        """Dispatch every task and return results in task order.

        ``submit(task)`` returns a future (or raises, which counts as
        that task's dispatch failing).  On a failure of task *i*, every
        not-yet-collected future is cancelled and re-submitted — after
        ``on_failure`` has had the chance to swap the pool — but only
        task *i*'s dispatch count increases, so one poison chunk cannot
        exhaust its neighbors' budgets.
        """
        tasks = list(tasks)
        futures = [self._try_submit(submit, task) for task in tasks]
        dispatches = [1] * len(tasks)
        results: List[object] = [None] * len(tasks)
        index = 0
        while index < len(tasks):
            entry = futures[index]
            try:
                if isinstance(entry, _FailedDispatch):
                    raise entry.error
                results[index] = entry.result(self.timeout_s)
            except self.FAILURES as error:
                if self.on_failure is not None:
                    self.on_failure(index, error)
                if dispatches[index] >= self.max_dispatches:
                    raise WorkerError(
                        f"worker chunk {index} failed after "
                        f"{dispatches[index]} dispatch(es): "
                        f"{type(error).__name__}: {error}") from error
                for later in futures[index:]:
                    if not isinstance(later, _FailedDispatch):
                        later.cancel()
                for position in range(index, len(tasks)):
                    futures[position] = self._try_submit(
                        submit, tasks[position])
                dispatches[index] += 1
                continue
            index += 1
        return results
