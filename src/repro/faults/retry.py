"""Retry with exponential backoff, deterministic and clock-injectable.

The engine wraps its fallible stages — sink emission, worker-chunk
execution, scheduled re-fits — in a :class:`RetryPolicy`.  The policy
is deliberately boring: a fixed attempt budget, an exponential delay
schedule with optional seeded jitter, and a *type-based* retryable
filter (the :mod:`repro.faults.errors` hierarchy exists precisely so
this filter never string-matches).

Determinism: the jitter stream restarts from ``seed`` on every
:meth:`call`, so each supervised call sees the same schedule and two
runs of the same stream back off identically.  ``sleep`` is injectable
so tests assert the schedule against a fake clock without sleeping.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional, Tuple, Type

from repro.faults.errors import ReproError


class RetryPolicy:
    """Exponential-backoff retry over typed, retryable failures.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` = no retries).
    base_delay:
        Delay before the first retry, seconds.
    multiplier:
        Backoff factor between consecutive retries.
    max_delay:
        Cap applied before jitter.
    jitter:
        Fraction of extra randomized delay: each delay is multiplied by
        ``1 + jitter * u`` with ``u`` uniform in [0, 1) from the seeded
        stream.  ``0`` disables jitter entirely.
    retryable:
        Exception types worth retrying; anything else propagates
        immediately.
    seed:
        Seed for the jitter stream (restarted per :meth:`call`).
    sleep:
        The clock; tests inject a recorder instead of sleeping.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 jitter: float = 0.0,
                 retryable: Tuple[Type[BaseException], ...] = (ReproError,),
                 seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep):
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0.0:
            raise ValueError(f"base_delay must be >= 0, got {base_delay}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.retryable = tuple(retryable)
        self.seed = seed
        self._sleep = sleep

    def delays(self) -> List[float]:
        """The deterministic backoff schedule (one delay per retry)."""
        rng = random.Random(self.seed)
        schedule: List[float] = []
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay,
                        self.base_delay * self.multiplier ** attempt)
            if self.jitter:
                delay *= 1.0 + self.jitter * rng.random()
            schedule.append(delay)
        return schedule

    def call(self, fn: Callable[[], object], *,
             on_retry: Optional[Callable[[int, BaseException, float],
                                         None]] = None):
        """Run ``fn`` under the policy; returns its result.

        ``on_retry(attempt, error, delay)`` is invoked before each
        backoff sleep (attempt numbering starts at 1 for the failed
        attempt).  The final failure re-raises the original exception.
        """
        schedule = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except self.retryable as error:
                if attempt >= self.max_attempts:
                    raise
                delay = schedule[attempt - 1]
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                if delay > 0.0:
                    self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
