"""The typed exception hierarchy for the whole reproduction.

Every failure the fault-tolerance layer supervises is classified here,
rooted at :class:`ReproError`, so policies can be written by *type*
(``retryable=(ReproError,)``) instead of string-matching messages or
status fields.

Several classes double-inherit a builtin exception on purpose:
callers that predate the hierarchy catch ``ValueError`` around
checkpoint loads and ``RuntimeError`` around LP solves, and those
handlers must keep working while the typed layer is adopted.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base of every typed failure raised by this reproduction."""


class CaptureError(ReproError, ValueError):
    """A capture file or record could not be read or parsed."""


class SolverError(ReproError, RuntimeError):
    """An LP solve did not produce an optimum."""

    #: The solver status that triggered the failure, when known.
    status: str = ""

    def __init__(self, message: str = "", status: str = ""):
        super().__init__(message or status or "LP solve failed")
        self.status = status


class InfeasibleError(SolverError):
    """The LP has no feasible point."""

    def __init__(self, message: str = ""):
        super().__init__(message or "LP is infeasible",
                         status="infeasible")


class UnboundedError(SolverError):
    """The LP objective is unbounded over the feasible region."""

    def __init__(self, message: str = ""):
        super().__init__(message or "LP is unbounded",
                         status="unbounded")


class SinkError(ReproError):
    """A sink rejected an emitted estimate."""


class CheckpointError(ReproError, ValueError):
    """A checkpoint could not be written, or no valid one could be read."""


class WorkerError(ReproError, RuntimeError):
    """A worker chunk was lost: timeout, pool breakage, or poison task."""
