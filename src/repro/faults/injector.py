"""Deterministic fault injection behind cheap no-op hooks.

Production code never branches on "is chaos testing on" — it simply
calls :func:`hook` at named *sites*::

    faults.hook("engine.flush")                 # may raise / delay
    record = faults.hook("capture.record", rec) # may corrupt / drop

When no :class:`FaultInjector` is installed (the normal case) a hook is
one module attribute read and a ``None`` check, then returns its value
unchanged.  Installing an injector (:func:`use_injector`) arms the
configured :class:`FaultSpec` list; everything the injector does is a
pure function of its specs and seed, so a chaos run is exactly
reproducible.

Sites are plain dotted strings; the conventional ones are

=================  ====================================================
``capture.record`` each record yielded by :func:`~repro.sniffer.replay.iter_capture`
``engine.flush``   the start of a micro-batch localization attempt
``engine.localize``per-device localization on the degraded path
``engine.refit``   the start of a scheduled model re-fit
``engine.checkpoint`` between the checkpoint temp-write and the rename
``lp.solve``       entry of :meth:`repro.lp.LpProblem.solve`
``sink.emit``      each (sink, estimate) delivery attempt
``worker.chunk``   each worker-chunk dispatch (local or pooled)
``bus.publish``    each router → shard bus message (key = shard index)
``bus.collect``    each shard → router bus read (key = shard index)
``socket.send``    each encoded wire frame before the TCP write
``socket.recv``    each decoded wire frame after the TCP read
=================  ====================================================

The socket sites fire inside the transport's background reader and
sender threads, which never see a :func:`use_injector` block entered on
the main thread — arm those with ``use_injector(..., all_threads=True)``
(the CLI's ``--inject`` does this automatically when a socket transport
is selected).

Spec strings (CLI ``--inject``) look like::

    sink.emit:raise=SinkError,times=3
    lp.solve:delay=0.05,times=2
    capture.record:drop,p=0.01
    engine.localize:raise=SolverError,match=02:00:00:00:00:07

Every fired fault is counted in the current
:class:`~repro.obs.MetricsRegistry` under
``repro.faults.injected{site=...,mode=...}``, so a chaos run's fault
history lands in the same snapshot as the engine's own counters.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro import obs
from repro.faults.errors import (
    CaptureError,
    CheckpointError,
    InfeasibleError,
    ReproError,
    SinkError,
    SolverError,
    UnboundedError,
    WorkerError,
)

#: Sentinel returned by a ``drop``-mode fault: the caller discards the
#: value it offered (a capture record, an emission) and moves on.
DROPPED = object()

_MODES = ("raise", "delay", "corrupt", "drop")

#: Exception names a ``raise``-mode spec may name.
ERROR_TYPES: Dict[str, type] = {
    "ReproError": ReproError,
    "CaptureError": CaptureError,
    "SolverError": SolverError,
    "InfeasibleError": InfeasibleError,
    "UnboundedError": UnboundedError,
    "SinkError": SinkError,
    "CheckpointError": CheckpointError,
    "WorkerError": WorkerError,
    "OSError": OSError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}


@dataclass
class FaultSpec:
    """One configured fault: where, what, and how often.

    Parameters
    ----------
    site:
        Site pattern the spec arms (``fnmatch`` glob, so
        ``"worker.*"`` matches every worker site).
    mode:
        ``"raise"`` | ``"delay"`` | ``"corrupt"`` | ``"drop"``.
    times:
        Fire at most this many times (``None`` = every eligible call).
    after:
        Skip the first ``after`` eligible calls before firing.
    probability:
        Fire each eligible call with this probability (seeded, so the
        pattern is deterministic per injector seed).
    error:
        Exception type name for ``raise`` mode (see :data:`ERROR_TYPES`).
    message:
        Message for the raised exception.
    delay_s:
        Sleep length for ``delay`` mode.
    match:
        Optional glob the hook's ``key`` must match (e.g. one device's
        MAC) before the spec is eligible.
    mutate:
        Optional transform for ``corrupt`` mode; the default corruption
        empties dicts, reverses strings, and otherwise returns ``None``.
    """

    site: str
    mode: str = "raise"
    times: Optional[int] = None
    after: int = 0
    probability: float = 1.0
    error: str = "ReproError"
    message: str = ""
    delay_s: float = 0.0
    match: Optional[str] = None
    mutate: Optional[Callable[[object], object]] = field(
        default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"fault mode must be one of {_MODES}, got {self.mode!r}")
        if self.mode == "raise" and self.error not in ERROR_TYPES:
            known = ", ".join(ERROR_TYPES)
            raise ValueError(
                f"unknown fault error type {self.error!r}; "
                f"expected one of: {known}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")

    def build_error(self) -> Exception:
        cls = ERROR_TYPES[self.error]
        message = self.message or f"injected fault at {self.site}"
        return cls(message)


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a CLI spec string into a :class:`FaultSpec`.

    Grammar: ``site:mode[=arg][,key=value,...]`` where ``mode`` is one
    of ``raise`` (arg = error type name), ``delay`` (arg = seconds),
    ``corrupt``, ``drop``, and keys are ``times``, ``after``,
    ``p``/``probability``, ``match``, ``message``.
    """
    site, sep, tail = text.partition(":")
    site = site.strip()
    if not sep or not site or not tail.strip():
        raise ValueError(
            f"malformed fault spec {text!r} (expected site:mode[,opts])")
    parts = [part.strip() for part in tail.split(",") if part.strip()]
    mode_part, parts = parts[0], parts[1:]
    mode, _, mode_arg = mode_part.partition("=")
    kwargs: Dict[str, object] = {"site": site, "mode": mode.strip()}
    mode_arg = mode_arg.strip()
    if mode_arg:
        if mode == "raise":
            kwargs["error"] = mode_arg
        elif mode == "delay":
            kwargs["delay_s"] = float(mode_arg)
        else:
            raise ValueError(
                f"mode {mode!r} takes no argument in spec {text!r}")
    for part in parts:
        key, sep, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not key:
            raise ValueError(
                f"malformed option {part!r} in fault spec {text!r}")
        if key == "times":
            kwargs["times"] = int(value)
        elif key == "after":
            kwargs["after"] = int(value)
        elif key in ("p", "probability"):
            kwargs["probability"] = float(value)
        elif key == "match":
            kwargs["match"] = value
        elif key == "message":
            kwargs["message"] = value
        else:
            raise ValueError(
                f"unknown option {key!r} in fault spec {text!r}")
    return FaultSpec(**kwargs)


def _default_corrupt(value):
    if isinstance(value, dict):
        return {}
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, bytes):
        return bytes(b ^ 0xFF for b in value)
    return None


class FaultInjector:
    """Fires configured :class:`FaultSpec` faults at hook sites.

    Deterministic: the per-spec probability stream is seeded from
    ``seed`` and the spec's position, so two injectors built with the
    same specs and seed fire identically.  ``sleep`` is injectable so
    tests can fake the clock for ``delay`` faults.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep):
        self.specs = list(specs)
        self.seed = seed
        self._sleep = sleep
        self._hits = [0] * len(self.specs)
        self._fires = [0] * len(self.specs)
        # Hooks fire from transport background threads when the
        # injector is armed process-wide; the eligibility bookkeeping
        # (hit counts, probability streams) stays consistent under one
        # lock, released before any delay-mode sleep.
        self._lock = threading.Lock()
        self._rngs = [
            random.Random((seed << 16)
                          ^ zlib.crc32(f"{index}:{spec.site}".encode()))
            for index, spec in enumerate(self.specs)
        ]

    def fired(self) -> Dict[str, int]:
        """Fire counts per ``site:mode`` (the CLI's chaos summary)."""
        summary: Dict[str, int] = {}
        for spec, fires in zip(self.specs, self._fires):
            key = f"{spec.site}:{spec.mode}"
            summary[key] = summary.get(key, 0) + fires
        return summary

    @property
    def total_fired(self) -> int:
        return sum(self._fires)

    def _eligible(self, index: int, spec: FaultSpec, site: str,
                  key: Optional[str]) -> bool:
        if not fnmatchcase(site, spec.site):
            return False
        if spec.match is not None and not fnmatchcase(key or "",
                                                      spec.match):
            return False
        self._hits[index] += 1
        if self._hits[index] <= spec.after:
            return False
        if spec.times is not None and self._fires[index] >= spec.times:
            return False
        if (spec.probability < 1.0
                and self._rngs[index].random() >= spec.probability):
            return False
        return True

    def fire(self, site: str, value=None, key: Optional[str] = None):
        """Apply every eligible spec; returns the (possibly replaced)
        value, or raises / delays per the spec modes."""
        for index, spec in enumerate(self.specs):
            with self._lock:
                if not self._eligible(index, spec, site, key):
                    continue
                self._fires[index] += 1
            obs.current_registry().counter(
                "repro.faults.injected", site=site, mode=spec.mode).inc()
            if spec.mode == "raise":
                raise spec.build_error()
            if spec.mode == "delay":
                self._sleep(spec.delay_s)
            elif spec.mode == "corrupt":
                mutate = spec.mutate or _default_corrupt
                value = mutate(value)
            elif spec.mode == "drop":
                return DROPPED
        return value


# ----------------------------------------------------------------------
# The hook seam
# ----------------------------------------------------------------------

_tls = threading.local()

#: Process-wide fallback injector (``use_injector(all_threads=True)``);
#: a thread-local injector still wins on threads that armed one.
_global_injector: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` (the production default)."""
    injector = getattr(_tls, "injector", None)
    return injector if injector is not None else _global_injector


@contextmanager
def use_injector(injector: FaultInjector,
                 all_threads: bool = False) -> Iterator[FaultInjector]:
    """Arm ``injector`` for the duration of the block.

    By default the injector is visible only to the arming thread —
    chaos in one test never leaks into a neighbor.  With
    ``all_threads=True`` it becomes the process-wide fallback, which
    the socket transports need: their reader, sender, and heartbeat
    threads are spawned internally and never enter the caller's
    ``with`` block.
    """
    global _global_injector
    if all_threads:
        previous = _global_injector
        _global_injector = injector
        try:
            yield injector
        finally:
            _global_injector = previous
        return
    previous = getattr(_tls, "injector", None)
    _tls.injector = injector
    try:
        yield injector
    finally:
        _tls.injector = previous


def hook(site: str, value=None, key: Optional[str] = None):
    """The production-side seam: a no-op unless an injector is armed.

    Returns ``value`` unchanged in the no-op case; with an injector it
    may raise, sleep, return a corrupted value, or return
    :data:`DROPPED`.
    """
    injector = getattr(_tls, "injector", None)
    if injector is None:
        injector = _global_injector
        if injector is None:
            return value
    return injector.fire(site, value, key=key)
