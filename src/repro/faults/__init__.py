"""``repro.faults`` — the fault-tolerance substrate.

Four pieces (DESIGN.md §7):

* **Typed errors** — the :class:`ReproError` hierarchy every supervised
  failure is classified under, so retry/degradation policies select by
  type, never by message.
* **Injection** — a seeded, deterministic :class:`FaultInjector` armed
  via :func:`use_injector`; production code calls the cheap no-op
  :func:`hook` at named sites (``engine.flush``, ``lp.solve``,
  ``sink.emit``, ``worker.chunk``, ...).
* **Retry** — :class:`RetryPolicy`, exponential backoff with a
  deterministic seeded jitter stream and an injectable clock.
* **Supervision** — :class:`WorkerSupervisor`, per-chunk timeouts and
  bounded re-dispatch over the process-pool fan-out.

Nothing here imports outside the standard library and :mod:`repro.obs`,
so any layer — capture, LP, engine — can depend on it without cycles.
"""

from repro.faults.errors import (
    CaptureError,
    CheckpointError,
    InfeasibleError,
    ReproError,
    SinkError,
    SolverError,
    UnboundedError,
    WorkerError,
)
from repro.faults.injector import (
    DROPPED,
    ERROR_TYPES,
    FaultInjector,
    FaultSpec,
    active_injector,
    hook,
    parse_fault_spec,
    use_injector,
)
from repro.faults.retry import RetryPolicy
from repro.faults.supervisor import WorkerSupervisor

__all__ = [
    "ReproError",
    "CaptureError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "SinkError",
    "CheckpointError",
    "WorkerError",
    "FaultInjector",
    "FaultSpec",
    "parse_fault_spec",
    "use_injector",
    "active_injector",
    "hook",
    "DROPPED",
    "ERROR_TYPES",
    "RetryPolicy",
    "WorkerSupervisor",
]
