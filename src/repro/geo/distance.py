"""Distance helpers on the sphere and in ECEF space."""

from __future__ import annotations

import math

from repro.geo.ecef import EcefCoordinate
from repro.geo.wgs84 import GeodeticCoordinate

#: Mean Earth radius used by the haversine approximation (meters).
MEAN_EARTH_RADIUS_M = 6371008.8


def haversine_distance(a: GeodeticCoordinate,
                       b: GeodeticCoordinate) -> float:
    """Great-circle distance in meters between two geodetic coordinates.

    Spherical approximation — accurate to ~0.5 % which is plenty for
    sanity-checking the planar campus frames against GPS traces.
    """
    lat1 = math.radians(a.latitude_deg)
    lat2 = math.radians(b.latitude_deg)
    dlat = lat2 - lat1
    dlon = math.radians(b.longitude_deg - a.longitude_deg)
    h = (math.sin(dlat / 2.0) ** 2
         + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2)
    return 2.0 * MEAN_EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def ecef_distance(a: EcefCoordinate, b: EcefCoordinate) -> float:
    """Straight-line (chord) distance in meters between ECEF points."""
    return math.sqrt((a.x - b.x) ** 2 + (a.y - b.y) ** 2 + (a.z - b.z) ** 2)
