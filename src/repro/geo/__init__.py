"""Geodetic coordinate substrate.

The paper notes that "all coordinates used in the three algorithms are
for the Earth-Centered, Earth-Fixed (ECEF) Cartesian coordinate system".
External knowledge (WiGLE) and wardriving (GPS) produce WGS-84
latitude/longitude, while the disc-intersection geometry is planar.
This package provides the full conversion pipeline:

    WGS-84 geodetic  ↔  ECEF Cartesian  ↔  local ENU tangent plane

plus great-circle (haversine) distance for sanity checks.  Campus-scale
experiments run in a :class:`LocalTangentPlane` anchored at the sniffer,
where east/north coordinates are meters and the disc model applies
directly.
"""

from repro.geo.wgs84 import (
    GeodeticCoordinate,
    WGS84_A,
    WGS84_B,
    WGS84_E2,
    WGS84_F,
)
from repro.geo.ecef import EcefCoordinate, ecef_to_geodetic, geodetic_to_ecef
from repro.geo.enu import LocalTangentPlane
from repro.geo.distance import ecef_distance, haversine_distance

__all__ = [
    "GeodeticCoordinate",
    "EcefCoordinate",
    "LocalTangentPlane",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "haversine_distance",
    "ecef_distance",
    "WGS84_A",
    "WGS84_B",
    "WGS84_E2",
    "WGS84_F",
]
