"""WGS-84 geodetic ↔ ECEF Cartesian conversion.

ECEF ("Earth-Centered, Earth-Fixed") is the Cartesian frame the paper
states its algorithms use.  The forward conversion is closed form; the
reverse uses Bowring's method, which is accurate to well under a
millimeter for terrestrial altitudes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.wgs84 import (
    GeodeticCoordinate,
    WGS84_A,
    WGS84_B,
    WGS84_E2,
    WGS84_EP2,
)


@dataclass(frozen=True)
class EcefCoordinate:
    """An ECEF Cartesian coordinate in meters."""

    x: float
    y: float
    z: float


def geodetic_to_ecef(coordinate: GeodeticCoordinate) -> EcefCoordinate:
    """Convert WGS-84 geodetic coordinates to ECEF meters."""
    lat = math.radians(coordinate.latitude_deg)
    lon = math.radians(coordinate.longitude_deg)
    alt = coordinate.altitude_m
    sin_lat = math.sin(lat)
    cos_lat = math.cos(lat)
    # Prime-vertical radius of curvature.
    n = WGS84_A / math.sqrt(1.0 - WGS84_E2 * sin_lat * sin_lat)
    x = (n + alt) * cos_lat * math.cos(lon)
    y = (n + alt) * cos_lat * math.sin(lon)
    z = (n * (1.0 - WGS84_E2) + alt) * sin_lat
    return EcefCoordinate(x, y, z)


def ecef_to_geodetic(coordinate: EcefCoordinate) -> GeodeticCoordinate:
    """Convert ECEF meters back to WGS-84 geodetic (Bowring's method)."""
    x, y, z = coordinate.x, coordinate.y, coordinate.z
    lon = math.atan2(y, x)
    p = math.hypot(x, y)
    if p < 1e-12:
        # On the polar axis: latitude is ±90 and altitude is |z| - b.
        lat = math.copysign(math.pi / 2.0, z) if z != 0.0 else 0.0
        alt = abs(z) - WGS84_B
        return GeodeticCoordinate(math.degrees(lat), math.degrees(lon), alt)
    # Bowring's parametric latitude seed followed by one correction,
    # then two fixed-point refinements for sub-millimeter accuracy.
    theta = math.atan2(z * WGS84_A, p * WGS84_B)
    sin_t = math.sin(theta)
    cos_t = math.cos(theta)
    lat = math.atan2(z + WGS84_EP2 * WGS84_B * sin_t ** 3,
                     p - WGS84_E2 * WGS84_A * cos_t ** 3)
    for _ in range(2):
        sin_lat = math.sin(lat)
        n = WGS84_A / math.sqrt(1.0 - WGS84_E2 * sin_lat * sin_lat)
        alt = p / math.cos(lat) - n
        lat = math.atan2(z, p * (1.0 - WGS84_E2 * n / (n + alt)))
    sin_lat = math.sin(lat)
    n = WGS84_A / math.sqrt(1.0 - WGS84_E2 * sin_lat * sin_lat)
    alt = p / math.cos(lat) - n
    return GeodeticCoordinate(math.degrees(lat), math.degrees(lon), alt)
