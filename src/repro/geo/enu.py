"""Local East-North-Up tangent plane anchored at a reference point.

Campus-scale localization runs in a planar frame where the disc model
applies directly.  :class:`LocalTangentPlane` converts between WGS-84
geodetic coordinates (what GPS / WiGLE report) and planar east/north
meters (what :mod:`repro.geometry` consumes), going through ECEF as the
paper prescribes.
"""

from __future__ import annotations

import math

from repro.geo.ecef import (
    EcefCoordinate,
    ecef_to_geodetic,
    geodetic_to_ecef,
)
from repro.geo.wgs84 import GeodeticCoordinate
from repro.geometry.point import Point


class LocalTangentPlane:
    """An ENU frame anchored at a reference geodetic coordinate.

    The ``up`` component is carried through the conversions but the
    planar :class:`~repro.geometry.point.Point` projection simply drops
    it — campus terrain relief is handled separately by the propagation
    models, not by the localization geometry.
    """

    def __init__(self, origin: GeodeticCoordinate):
        self.origin = origin
        self._origin_ecef = geodetic_to_ecef(origin)
        lat = math.radians(origin.latitude_deg)
        lon = math.radians(origin.longitude_deg)
        sin_lat, cos_lat = math.sin(lat), math.cos(lat)
        sin_lon, cos_lon = math.sin(lon), math.cos(lon)
        # Rows of the ECEF→ENU rotation matrix.
        self._east = (-sin_lon, cos_lon, 0.0)
        self._north = (-sin_lat * cos_lon, -sin_lat * sin_lon, cos_lat)
        self._up = (cos_lat * cos_lon, cos_lat * sin_lon, sin_lat)

    def to_enu(self, coordinate: GeodeticCoordinate) -> tuple:
        """Convert geodetic → (east, north, up) meters."""
        ecef = geodetic_to_ecef(coordinate)
        dx = ecef.x - self._origin_ecef.x
        dy = ecef.y - self._origin_ecef.y
        dz = ecef.z - self._origin_ecef.z
        east = self._east[0] * dx + self._east[1] * dy + self._east[2] * dz
        north = (self._north[0] * dx + self._north[1] * dy
                 + self._north[2] * dz)
        up = self._up[0] * dx + self._up[1] * dy + self._up[2] * dz
        return (east, north, up)

    def from_enu(self, east: float, north: float,
                 up: float = 0.0) -> GeodeticCoordinate:
        """Convert (east, north, up) meters → geodetic."""
        dx = (self._east[0] * east + self._north[0] * north
              + self._up[0] * up)
        dy = (self._east[1] * east + self._north[1] * north
              + self._up[1] * up)
        dz = (self._east[2] * east + self._north[2] * north
              + self._up[2] * up)
        ecef = EcefCoordinate(self._origin_ecef.x + dx,
                              self._origin_ecef.y + dy,
                              self._origin_ecef.z + dz)
        return ecef_to_geodetic(ecef)

    def to_point(self, coordinate: GeodeticCoordinate) -> Point:
        """Project a geodetic coordinate to a planar east/north point."""
        east, north, _ = self.to_enu(coordinate)
        return Point(east, north)

    def from_point(self, point: Point,
                   up: float = 0.0) -> GeodeticCoordinate:
        """Lift a planar east/north point back to geodetic coordinates."""
        return self.from_enu(point.x, point.y, up)
