"""The paper's experiment sites, as ready-made tangent planes.

"We conducted experiments on two campuses: University of Massachusetts
Lowell (UML) and George Washington University (GWU). ... we set up the
tracking system on the roof of [the] Computer Science Department
building at UML and [the] Academic building at GWU."

The coordinates are the public campus locations (the paper does not
list exact rooftop coordinates); they anchor the planar frames used by
examples and the replay CLI.
"""

from __future__ import annotations

from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate

#: UMass Lowell north campus (the main test site; ~1 km coverage).
UML_NORTH_CAMPUS = GeodeticCoordinate(42.6555, -71.3262, 30.0)

#: George Washington University, Foggy Bottom campus.
GWU_CAMPUS = GeodeticCoordinate(38.8997, -77.0486, 20.0)


def uml_plane() -> LocalTangentPlane:
    """A tangent plane anchored at the UML north campus."""
    return LocalTangentPlane(UML_NORTH_CAMPUS)


def gwu_plane() -> LocalTangentPlane:
    """A tangent plane anchored at the GWU campus."""
    return LocalTangentPlane(GWU_CAMPUS)
