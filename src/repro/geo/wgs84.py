"""WGS-84 ellipsoid constants and the geodetic coordinate type."""

from __future__ import annotations

from dataclasses import dataclass

#: Semi-major axis (equatorial radius) in meters.
WGS84_A = 6378137.0
#: Flattening.
WGS84_F = 1.0 / 298.257223563
#: Semi-minor axis (polar radius) in meters.
WGS84_B = WGS84_A * (1.0 - WGS84_F)
#: First eccentricity squared.
WGS84_E2 = WGS84_F * (2.0 - WGS84_F)
#: Second eccentricity squared.
WGS84_EP2 = WGS84_E2 / (1.0 - WGS84_E2)


@dataclass(frozen=True)
class GeodeticCoordinate:
    """A WGS-84 geodetic coordinate (degrees, degrees, meters)."""

    latitude_deg: float
    longitude_deg: float
    altitude_m: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(
                f"latitude must be in [-90, 90], got {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 180.0:
            raise ValueError(
                f"longitude must be in [-180, 180], got {self.longitude_deg}")
