"""One shard: a StreamingEngine driven by bus messages.

:class:`ShardRuntime` is the transport-agnostic worker body.  The same
loop runs inside a thread (:class:`~repro.service.bus.QueueBus`) or an
OS process (:class:`~repro.service.bus.MpQueueBus`): it pulls envelopes
off its inbox, feeds frame batches through a bounded
:class:`~repro.engine.reorder.ReorderBuffer` into its private
:class:`~repro.engine.StreamingEngine`, and answers the serving-layer
requests (`locate`, `health`, `stats`, `metrics`, `snapshot`, `drain`)
on its outbox.

Checkpoints are the shard's own durability: a ``("checkpoint", marker)``
barrier drains the reorder buffer (so the checkpoint covers every frame
delivered before the barrier), writes a v3 engine checkpoint, and acks
the marker — at which point the router may trim its retention buffer.
A shard that dies is restarted from that file plus a replay of the
retained frames, which reproduces the lost state exactly because engine
ingest is deterministic.

Message protocol (all tuples, all picklable)::

    router -> shard                      shard -> router
    ("frames", [ReceivedFrame, ...])
    ("checkpoint", marker)               ("ckpt_ack", marker)
    ("request", req_id, kind, payload)   ("reply", req_id, result)
    ("stop",)
    ("crash",)          # test/chaos: die without cleanup
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs
from repro.engine import ReorderBuffer, StreamingEngine, make_sink
from repro.engine.stats import EngineStats
from repro.faults import ReproError
from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.mac import MacAddress


@dataclass(frozen=True)
class ShardConfig:
    """Per-shard engine configuration (picklable, shared by the fleet).

    Mirrors the :class:`~repro.engine.StreamingEngine` constructor
    surface the service exposes, plus the shard-ingest reorder bound.
    """

    window_s: float = 30.0
    batch_size: int = 32
    cache_size: int = 4096
    refit_every: int = 0
    quarantine_after: int = 3
    reorder_capacity: int = 64
    checkpoint_keep: int = 1
    #: Sink spec strings built per shard via
    #: :func:`repro.engine.make_sink` ("null", "latest", ...).  Specs
    #: only — live objects would not survive the process transport.
    sink_specs: Tuple[str, ...] = ()


#: Zero-arg callable building a fresh localizer for one shard.  For the
#: process transport it must be picklable — ``functools.partial`` of a
#: module-level factory (e.g. ``make_localizer``) qualifies.
LocalizerFactory = Callable[[], Localizer]


class ShardRuntime:
    """The worker body: one engine, one reorder buffer, one mailbox."""

    def __init__(self, shard_id: int, factory: LocalizerFactory,
                 config: ShardConfig = ShardConfig(),
                 checkpoint_path: Optional[str] = None,
                 resume: bool = False,
                 service_run_id: Optional[str] = None):
        self.shard_id = shard_id
        self.config = config
        self.checkpoint_path = checkpoint_path
        self.service_run_id = service_run_id
        self.reorder: ReorderBuffer = ReorderBuffer(config.reorder_capacity)
        sinks = [make_sink(spec) for spec in config.sink_specs]
        if resume and checkpoint_path is not None:
            self.engine = StreamingEngine.load_checkpoint(
                checkpoint_path, factory(), sinks=sinks)
        else:
            self.engine = StreamingEngine(
                factory(),
                window_s=config.window_s,
                batch_size=config.batch_size,
                cache_size=config.cache_size,
                sinks=sinks,
                refit_every=config.refit_every,
                quarantine_after=config.quarantine_after)
        self._c_messages = self.engine.registry.counter(
            "repro.service.shard.messages", shard=shard_id)
        self._c_checkpoints = self.engine.registry.counter(
            "repro.service.shard.checkpoints", shard=shard_id)

    # ------------------------------------------------------------------
    # Message loop
    # ------------------------------------------------------------------

    def serve(self, inbox, outbox, crash_event=None) -> None:
        """Consume the inbox until ``stop`` / ``crash`` (blocking).

        ``crash_event`` (thread transport only) simulates a hard crash:
        once set, the runtime abandons its engine — no drain, no
        checkpoint — exactly like a killed process.
        """
        while True:
            message = inbox.get()
            if crash_event is not None and crash_event.is_set():
                return
            self._c_messages.inc()
            kind = message[0]
            if kind == "frames":
                self._ingest_batch(message[1])
            elif kind == "checkpoint":
                self._checkpoint(outbox, message[1])
            elif kind == "request":
                _, req_id, what, payload = message
                outbox.put(("reply", req_id, self._answer(what, payload)))
            elif kind == "stop":
                self.engine.close()
                return
            elif kind == "crash":
                return
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown bus message kind {kind!r}")

    def _ingest_batch(self, frames) -> None:
        engine = self.engine
        with obs.use_registry(engine.registry):
            for received in frames:
                for ready in self.reorder.push(received.rx_timestamp,
                                               received):
                    engine.ingest(ready)

    def _checkpoint(self, outbox, marker: int) -> None:
        """Checkpoint barrier: settle the reorder buffer, write, ack."""
        engine = self.engine
        with obs.use_registry(engine.registry):
            for ready in self.reorder.drain():
                engine.ingest(ready)
        if self.checkpoint_path is None:
            outbox.put(("ckpt_ack", marker))
            return
        try:
            # The marker rides inside the checkpoint (CRC-covered), so
            # even if this ack is lost with a crash, the router can
            # recover exactly how much retention the file covers.
            engine.save_checkpoint(self.checkpoint_path,
                                   keep=self.config.checkpoint_keep,
                                   extra={"service_marker": marker,
                                          "service_run": self.service_run_id,
                                          "shard": self.shard_id})
        except (ReproError, OSError) as error:
            # No ack: the router keeps its retention, so nothing is
            # lost — the next barrier tries again.
            engine.registry.counter(
                "repro.service.shard.checkpoint_failures",
                error=type(error).__name__).inc()
            return
        self._c_checkpoints.inc()
        outbox.put(("ckpt_ack", marker))

    # ------------------------------------------------------------------
    # Request answers (the serving layer's read side)
    # ------------------------------------------------------------------

    def _answer(self, what: str, payload) -> Any:
        if what == "locate":
            return self._locate(MacAddress.parse(payload))
        if what == "snapshot":
            return self._snapshot()
        if what == "health":
            return self._health()
        if what == "stats":
            return self.engine.stats()
        if what == "metrics":
            return self.engine.metrics_snapshot()
        if what == "drain":
            return self._drain()
        raise ValueError(f"unknown request kind {what!r}")

    def _locate(self, mobile: MacAddress
                ) -> Optional[Tuple[float, LocalizationEstimate]]:
        point = self.engine.tracker.latest(mobile)
        if point is None:
            return None
        return point.timestamp, point.estimate

    def _snapshot(self) -> Dict[MacAddress,
                                Tuple[float, LocalizationEstimate]]:
        tracker = self.engine.tracker
        fixes = {}
        for mobile in tracker.devices():
            point = tracker.latest(mobile)
            if point is not None:
                fixes[mobile] = (point.timestamp, point.estimate)
        return fixes

    def _health(self) -> dict:
        engine = self.engine
        return {
            "shard": self.shard_id,
            "alive": True,
            "frames_ingested": int(engine._c_frames.value),
            "devices_seen": int(engine._g_devices.value),
            "dirty_pending": engine.scheduler.pending(),
            "reorder_pending": self.reorder.pending,
            "quarantined": len(engine.quarantined()),
        }

    def _drain(self) -> dict:
        """Settle the shard completely and hand everything back."""
        engine = self.engine
        with obs.use_registry(engine.registry):
            for ready in self.reorder.drain():
                engine.ingest(ready)
        emitted = engine.drain()
        return {
            "shard": self.shard_id,
            "emitted": emitted,
            "stats": engine.stats(),
            "fixes": self._snapshot(),
            "metrics": engine.metrics_snapshot(),
        }


def run_shard(shard_id: int, factory: LocalizerFactory,
              config: ShardConfig, checkpoint_path: Optional[str],
              resume: bool, service_run_id: Optional[str],
              inbox, outbox, crash_event=None) -> None:
    """Worker entry point (module-level, so process targets pickle).

    A construction failure (corrupt checkpoint, factory error) is
    reported on the outbox instead of silently dying, so the router's
    supervised restart can surface it.

    On the way out — clean stop, simulated crash, or construction
    failure — endpoints that hold transport resources (the socket
    transport's :class:`~repro.service.socketbus.ShardChannel`) are
    closed, so no reconnect thread outlives its worker.  Queue
    endpoints have no ``close`` and are left alone.
    """
    try:
        try:
            runtime = ShardRuntime(shard_id, factory, config=config,
                                   checkpoint_path=checkpoint_path,
                                   resume=resume,
                                   service_run_id=service_run_id)
        except Exception as error:
            outbox.put(("fatal", f"{type(error).__name__}: {error}"))
            raise
        runtime.serve(inbox, outbox, crash_event=crash_event)
    finally:
        from repro.service.socketbus import ShardChannel
        for endpoint in {id(inbox): inbox, id(outbox): outbox}.values():
            if isinstance(endpoint, ShardChannel):
                endpoint.close()


# Re-exported for the stats-merging router; keeps shard.py the one
# import the worker side needs.
__all__ = ["ShardConfig", "ShardRuntime", "run_shard", "EngineStats"]
