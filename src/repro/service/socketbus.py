"""SocketBus: the TCP shard transport behind the five-method Bus seam.

The :class:`~repro.service.bus.Bus` contract promises queue semantics —
``publish`` with bounded-capacity back-pressure, ``collect`` of
shard→router messages, ``reset`` to fresh endpoints after a crash —
and the queue transports get all of that for free from
``queue.Queue``.  :class:`SocketBus` rebuilds the same semantics over
TCP so shards can live on other machines:

* **Framing** — every message is one CRC-covered frame
  (:mod:`repro.service.wire`); a corrupt frame kills the connection,
  never the fleet.
* **Handshake** — a connecting shard opens with HELLO carrying the
  service ``run_id``, its shard index, and the endpoint *generation*
  stamped at :meth:`Bus.endpoints` time.  A cross-run peer, an
  out-of-range shard, or a stale pre-``reset`` endpoint is rejected
  with HELLO_REJECT, not silently mixed into the stream.
* **Flow control** — the router publishes at most ``capacity``
  unconsumed messages per shard.  The consuming endpoint sends a
  cumulative CREDIT count as its runtime consumes, so a full "inbox"
  back-pressures ``publish`` into :class:`BusTimeout` exactly like a
  full ``queue.Queue`` — the router's dead-shard probe works
  unchanged.
* **Exactly-once delivery over reconnects** — both directions number
  their DATA frames and retain sent-but-unacked messages.  A receiver
  delivers only the next-in-sequence frame (duplicates are dropped, a
  gap kills the connection), and the HELLO/HELLO_OK exchange carries
  each side's cumulative counters so a reconnect resumes by resending
  exactly the lost tail (counted under ``repro.socket.frames_resent``).
* **Liveness** — both sides heartbeat on an interval and declare a
  peer dead after ``dead_after_s`` of silence
  (``repro.socket.heartbeats_missed``); the shard side then runs a
  supervised reconnect under a :class:`~repro.faults.RetryPolicy`
  (exponential backoff, seeded jitter), and the router side lets the
  usual supervision — retention replay after
  :meth:`~repro.service.core.ShardedEngine.restart_shard` — take over
  when the peer never comes back.

``reset(shard)`` bumps the generation, discards the connection and all
stream state, and keeps listening: the supervised-restart path of the
router works over TCP exactly as it does over queues, and the
retention replay reproduces a killed shard's state byte-for-byte.
"""

from __future__ import annotations

import collections
import queue
import socket
import threading
import time
import uuid
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro import faults, obs
from repro.faults import DROPPED, ReproError, RetryPolicy
from repro.service import wire
from repro.service.bus import (Bus, BusTimeout, DEFAULT_CAPACITY,
                               empty_collect_message)

#: Default liveness knobs: heartbeat every second, declare a peer dead
#: after five silent seconds.  Tests shrink both.
DEFAULT_HEARTBEAT_S = 1.0
DEFAULT_DEAD_AFTER_S = 5.0

#: Default supervised-reconnect schedule for shard endpoints.
DEFAULT_RECONNECT = {"max_attempts": 5, "base_delay": 0.05,
                     "multiplier": 2.0, "max_delay": 1.0,
                     "jitter": 0.25, "seed": 0}

_POISON = object()


def _close_socket(sock: socket.socket) -> None:
    """Shutdown + close, waking any thread blocked in recv."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:  # pragma: no cover - already gone
        pass


class _Conn:
    """One live TCP connection: the socket plus its write lock."""

    __slots__ = ("sock", "wlock")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.wlock = threading.Lock()

    def send(self, ftype: int, payload: bytes = b"") -> None:
        with self.wlock:
            wire.send_frame(self.sock, ftype, payload)

    def close(self) -> None:
        _close_socket(self.sock)


class _Link:
    """Router-side state for one shard slot: connection + both streams."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.conn: Optional[_Conn] = None
        self.generation = 0
        self.attaches = 0           # attach count within this generation
        self.recv_queue: "queue.Queue" = queue.Queue()
        # Router -> shard stream (flow-controlled, capacity-bounded).
        self.retained: Deque[Tuple[int, Any]] = collections.deque()
        self.published = 0          # highest seq assigned by publish()
        self.consumed = 0           # cumulative CREDIT from the shard
        self.sent = 0               # resume point on the current conn
        self.max_sent = 0           # high-water mark across conns
        # Shard -> router stream (delivered straight into recv_queue).
        self.received = 0
        self.last_recv_t = time.monotonic()


class SocketBus(Bus):
    """TCP transport: shards connect back to the router's listener.

    Parameters
    ----------
    shards, capacity:
        As for the queue transports; ``capacity`` bounds the number of
        published-but-unconsumed messages per shard.
    host, port:
        Listener bind address (``port=0`` picks a free port; read it
        back from :attr:`address`).
    run_id:
        Fleet identity carried in every HELLO; a connecting peer with a
        different run id is rejected.  Defaults to a fresh UUID.
    heartbeat_s, dead_after_s:
        Liveness interval and the silent window after which a
        connected peer is declared dead.
    reconnect:
        :class:`~repro.faults.RetryPolicy` parameter dict handed to
        shard endpoints for their supervised reconnects.
    registry:
        Metrics registry for the socket counters (reconnects,
        heartbeats_missed, frames_resent, crc_rejects, ...); defaults
        to the process registry.
    """

    def __init__(self, shards: int, capacity: int = DEFAULT_CAPACITY,
                 host: str = "127.0.0.1", port: int = 0,
                 run_id: Optional[str] = None,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 dead_after_s: float = DEFAULT_DEAD_AFTER_S,
                 hello_timeout_s: float = 5.0,
                 reconnect: Optional[Dict[str, float]] = None,
                 registry: Optional[obs.MetricsRegistry] = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if heartbeat_s <= 0.0:
            raise ValueError(
                f"heartbeat_s must be > 0, got {heartbeat_s}")
        if dead_after_s <= heartbeat_s:
            raise ValueError(
                f"dead_after_s ({dead_after_s}) must exceed "
                f"heartbeat_s ({heartbeat_s})")
        self.shards = shards
        self.capacity = capacity
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex
        self.heartbeat_s = heartbeat_s
        self.dead_after_s = dead_after_s
        self.hello_timeout_s = hello_timeout_s
        self.reconnect = dict(DEFAULT_RECONNECT, **(reconnect or {}))
        registry = registry if registry is not None \
            else obs.current_registry()
        self._c_connections = registry.counter("repro.socket.connections")
        self._c_reconnects = registry.counter("repro.socket.reconnects")
        self._c_heartbeats = registry.counter("repro.socket.heartbeats")
        self._c_hb_missed = registry.counter(
            "repro.socket.heartbeats_missed")
        self._c_resent = registry.counter("repro.socket.frames_resent")
        self._c_crc_rejects = registry.counter("repro.socket.crc_rejects")
        self._c_hello_rejects = registry.counter(
            "repro.socket.hello_rejects")
        self._links = [_Link() for _ in range(shards)]
        self._closed = False
        self._stop_event = threading.Event()
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.5)
        self._threads: List[threading.Thread] = []
        self._spawn(self._accept_loop, "repro-socketbus-accept")
        self._spawn(self._heartbeat_loop, "repro-socketbus-heartbeat")
        for shard in range(shards):
            self._spawn(self._sender_loop,
                        f"repro-socketbus-send-{shard}", shard)

    def _spawn(self, target, name: str, *args) -> None:
        thread = threading.Thread(target=target, args=args, name=name,
                                  daemon=True)
        thread.start()
        self._threads.append(thread)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` shards connect back to."""
        return self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # Router side of the Bus contract
    # ------------------------------------------------------------------

    def publish(self, shard: int, message: Tuple,
                timeout: Optional[float] = None) -> None:
        message = faults.hook("bus.publish", message, key=str(shard))
        if message is DROPPED:
            return
        link = self._links[shard]
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with link.cond:
            while link.published - link.consumed >= self.capacity:
                if self._closed:
                    raise BusTimeout("bus is closed")
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0.0:
                    raise BusTimeout(
                        f"shard {shard} inbox full after {timeout}s")
                link.cond.wait(remaining)
            link.published += 1
            link.retained.append((link.published, message))
            link.cond.notify_all()

    def collect(self, shard: int,
                timeout: Optional[float] = None,
                block: bool = True) -> Tuple:
        faults.hook("bus.collect", key=str(shard))
        try:
            return self._links[shard].recv_queue.get(block=block,
                                                     timeout=timeout)
        except queue.Empty:
            raise BusTimeout(
                empty_collect_message(shard, timeout, block)) from None

    def reset(self, shard: int) -> None:
        """Drop the connection and both streams; keep listening.

        The next :meth:`endpoints` call mints a channel for the new
        generation; a leftover endpoint from before the reset is
        rejected at HELLO time.
        """
        link = self._links[shard]
        with link.cond:
            conn, link.conn = link.conn, None
            link.generation += 1
            link.attaches = 0
            link.recv_queue = queue.Queue()
            link.retained.clear()
            link.published = link.consumed = 0
            link.sent = link.max_sent = 0
            link.received = 0
            link.cond.notify_all()
        if conn is not None:
            conn.close()

    def endpoints(self, shard: int) -> Tuple[Any, Any]:
        """A picklable :class:`ShardChannel` pair for the current
        generation (the same channel serves as inbox and outbox)."""
        link = self._links[shard]
        with link.cond:
            generation = link.generation
        channel = ShardChannel(
            address=self.address, shard=shard, run_id=self.run_id,
            generation=generation, heartbeat_s=self.heartbeat_s,
            dead_after_s=self.dead_after_s,
            connect_timeout_s=self.hello_timeout_s,
            reconnect=self.reconnect)
        return channel, channel

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop_event.set()
        _close_socket(self._listener)
        for link in self._links:
            with link.cond:
                conn, link.conn = link.conn, None
                link.cond.notify_all()
            if conn is not None:
                conn.close()

    # ------------------------------------------------------------------
    # Chaos helpers
    # ------------------------------------------------------------------

    def kill_connection(self, shard: int) -> bool:
        """Abruptly sever one shard's TCP connection (chaos/testing).

        The stream state survives: when the endpoint reconnects, the
        HELLO exchange resumes both directions with no loss.  Returns
        whether a live connection was killed.
        """
        link = self._links[shard]
        with link.cond:
            conn, link.conn = link.conn, None
            link.cond.notify_all()
        if conn is None:
            return False
        conn.close()
        return True

    def connected(self, shard: int) -> bool:
        link = self._links[shard]
        with link.cond:
            return link.conn is not None

    # ------------------------------------------------------------------
    # Accept / handshake
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            threading.Thread(target=self._handshake, args=(sock,),
                             name="repro-socketbus-hello",
                             daemon=True).start()

    def _handshake(self, sock: socket.socket) -> None:
        try:
            hello = wire.read_hello(sock, timeout=self.hello_timeout_s)
        except (wire.BadMagic, wire.VersionMismatch, wire.CrcMismatch,
                wire.TruncatedFrame):
            self._c_crc_rejects.inc()
            _close_socket(sock)
            return
        except (ReproError, OSError):
            _close_socket(sock)
            return
        reason = self._vet_hello(hello)
        if reason is not None:
            self._c_hello_rejects.inc()
            try:
                wire.send_frame(sock, wire.HELLO_REJECT,
                                wire.pack_dict({"reason": reason}))
            except (ReproError, OSError):
                pass
            _close_socket(sock)
            return
        self._attach(int(hello["shard"]), _Conn(sock), hello)

    def _vet_hello(self, hello: dict) -> Optional[str]:
        if hello.get("role") != "shard":
            return f"unexpected role {hello.get('role')!r}"
        if hello.get("run_id") != self.run_id:
            return (f"wrong run: peer {hello.get('run_id')!r}, "
                    f"this bus {self.run_id!r}")
        shard = hello.get("shard")
        if not isinstance(shard, int) or not 0 <= shard < self.shards:
            return f"shard {shard!r} out of range 0..{self.shards - 1}"
        link = self._links[shard]
        with link.cond:
            generation = link.generation
        if hello.get("generation") != generation:
            return (f"stale endpoint generation "
                    f"{hello.get('generation')!r}, current {generation}")
        return None

    def _attach(self, shard: int, conn: _Conn, hello: dict) -> None:
        link = self._links[shard]
        peer_received = int(hello.get("received", 0))
        peer_consumed = int(hello.get("consumed", 0))
        # HELLO_OK must precede any DATA on this connection so the
        # endpoint can read its resume point synchronously.
        with link.cond:
            received = link.received
        try:
            conn.send(wire.HELLO_OK,
                      wire.pack_dict({"received": received}))
        except (ReproError, OSError):
            conn.close()
            return
        with link.cond:
            old, link.conn = link.conn, conn
            if peer_consumed > link.consumed:
                self._trim_locked(link, peer_consumed)
            link.sent = max(link.consumed,
                            min(peer_received, link.published))
            resend = max(0, link.max_sent - link.sent)
            if link.attaches > 0:
                self._c_reconnects.inc()
                if resend:
                    self._c_resent.inc(resend)
            link.attaches += 1
            link.last_recv_t = time.monotonic()
            link.cond.notify_all()
        if old is not None:
            old.close()
        self._c_connections.inc()
        threading.Thread(target=self._reader_loop, args=(link, conn),
                         name=f"repro-socketbus-read-{shard}",
                         daemon=True).start()

    # ------------------------------------------------------------------
    # Per-connection loops
    # ------------------------------------------------------------------

    def _detach(self, link: _Link, conn: _Conn) -> None:
        with link.cond:
            if link.conn is not conn:
                conn.close()
                return
            link.conn = None
            link.cond.notify_all()
        conn.close()

    def _trim_locked(self, link: _Link, count: int) -> None:
        """Absorb a cumulative ack (caller holds ``link.cond``)."""
        if count > link.consumed:
            link.consumed = count
            while link.retained and link.retained[0][0] <= count:
                link.retained.popleft()
            link.cond.notify_all()

    def _reader_loop(self, link: _Link, conn: _Conn) -> None:
        while True:
            try:
                ftype, payload = wire.read_frame(conn.sock)
                self._dispatch(link, conn, ftype, payload)
            except (ReproError, OSError):
                self._detach(link, conn)
                return
            with link.cond:
                if link.conn is not conn:
                    return

    def _dispatch(self, link: _Link, conn: _Conn, ftype: int,
                  payload: bytes) -> None:
        with link.cond:
            if link.conn is not conn:
                return
            link.last_recv_t = time.monotonic()
        if ftype == wire.DATA:
            seq, message = wire.unpack_data(payload)
            with link.cond:
                if link.conn is not conn:
                    return
                if seq <= link.received:
                    return  # duplicate of a delivered message
                if seq != link.received + 1:
                    raise wire.ConnectionLost(
                        f"sequence gap: expected {link.received + 1}, "
                        f"got {seq}")
                link.received = seq
                recv_queue = link.recv_queue
                received = link.received
            recv_queue.put(message)
            # The router consumes on delivery, so the ack is immediate.
            conn.send(wire.CREDIT, wire.pack_count(received))
        elif ftype == wire.CREDIT:
            count = wire.unpack_count(payload)
            with link.cond:
                self._trim_locked(link, count)
        elif ftype == wire.HEARTBEAT:
            info = wire.unpack_dict(payload)
            if "consumed" in info:
                with link.cond:
                    self._trim_locked(link, int(info["consumed"]))
        elif ftype == wire.BYE:
            raise wire.ConnectionLost("peer said BYE")

    def _sender_loop(self, shard: int) -> None:
        link = self._links[shard]
        while True:
            with link.cond:
                while not self._closed and (
                        link.conn is None or link.sent >= link.published):
                    link.cond.wait()
                if self._closed:
                    return
                conn = link.conn
                batch = [(seq, message) for seq, message in link.retained
                         if seq > link.sent]
            for seq, message in batch:
                try:
                    conn.send(wire.DATA, wire.pack_data(seq, message))
                except (ReproError, OSError):
                    self._detach(link, conn)
                    break
                with link.cond:
                    if link.conn is not conn:
                        break
                    link.sent = seq
                    if seq > link.max_sent:
                        link.max_sent = seq

    def _heartbeat_loop(self) -> None:
        while not self._stop_event.wait(self.heartbeat_s):
            now = time.monotonic()
            for link in self._links:
                with link.cond:
                    conn = link.conn
                    stale = conn is not None and \
                        now - link.last_recv_t > self.dead_after_s
                    received = link.received
                if conn is None:
                    continue
                if stale:
                    self._c_hb_missed.inc()
                    self._detach(link, conn)
                    continue
                try:
                    conn.send(wire.HEARTBEAT,
                              wire.pack_dict({"received": received}))
                    self._c_heartbeats.inc()
                except (ReproError, OSError):
                    self._detach(link, conn)


class ShardChannel:
    """The shard-side endpoint: one TCP connection posing as a queue
    pair.

    Picklable before first use (the process transport ships it to the
    worker); on first :meth:`get`/:meth:`put` it connects, handshakes,
    and starts its reader + heartbeat threads.  A lost connection is
    re-established under the configured :class:`~repro.faults.\
RetryPolicy`; when the budget is exhausted — or the router rejects the
    handshake, which means this endpoint's generation is over — the
    channel poisons itself and every pending :meth:`get` raises, so the
    worker dies visibly and the router's supervision takes over.
    """

    def __init__(self, address: Tuple[str, int], shard: int,
                 run_id: str, generation: int,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 dead_after_s: float = DEFAULT_DEAD_AFTER_S,
                 connect_timeout_s: float = 5.0,
                 reconnect: Optional[Dict[str, float]] = None):
        self.address = tuple(address)
        self.shard = shard
        self.run_id = run_id
        self.generation = generation
        self.heartbeat_s = heartbeat_s
        self.dead_after_s = dead_after_s
        self.connect_timeout_s = connect_timeout_s
        self.reconnect = dict(DEFAULT_RECONNECT, **(reconnect or {}))
        self._init_runtime()

    # -- pickling ------------------------------------------------------

    _CONFIG = ("address", "shard", "run_id", "generation", "heartbeat_s",
               "dead_after_s", "connect_timeout_s", "reconnect")

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self._CONFIG}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._init_runtime()

    def _init_runtime(self) -> None:
        self._cond = threading.Condition()
        self._conn: Optional[_Conn] = None
        self._started = False
        self._closed = False
        self._dead: Optional[str] = None
        self._delivery: "queue.Queue" = queue.Queue()
        self._in_received = 0
        self._in_consumed = 0
        self._out_seq = 0
        self._out_sent = 0
        self._out_max_sent = 0
        self._out_acked = 0
        self._out_retained: Deque[Tuple[int, Any]] = collections.deque()
        self.reconnects = 0

    # -- lifecycle -----------------------------------------------------

    def _ensure_started(self) -> None:
        with self._cond:
            if self._started or self._closed:
                return
            self._started = True
        for target, name in (
                (self._reader_main, "reader"),
                (self._sender_loop, "sender"),
                (self._heartbeat_loop, "heartbeat")):
            threading.Thread(
                target=target, daemon=True,
                name=f"repro-channel-{self.shard}-{name}").start()

    def close(self) -> None:
        """Stop reconnecting, close the socket, wake blocked readers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            conn, self._conn = self._conn, None
            self._cond.notify_all()
        self._delivery.put(_POISON)
        if conn is not None:
            conn.close()

    def _die(self, reason: str) -> None:
        with self._cond:
            if self._closed:
                return
            self._dead = reason
            conn, self._conn = self._conn, None
            self._cond.notify_all()
        self._delivery.put(_POISON)
        if conn is not None:
            conn.close()

    # -- the queue-pair surface ---------------------------------------

    def get(self, block: bool = True, timeout: Optional[float] = None):
        """Next router→shard message (the inbox side)."""
        self._ensure_started()
        try:
            message = self._delivery.get(block=block, timeout=timeout)
        except queue.Empty:
            raise BusTimeout(
                f"no message for shard {self.shard} within {timeout}s"
            ) from None
        if message is _POISON:
            self._delivery.put(_POISON)  # keep later gets failing too
            raise wire.ConnectionLost(
                self._dead or "channel closed")
        with self._cond:
            self._in_consumed += 1
            conn = self._conn
            count = self._in_consumed
        if conn is not None:
            try:
                conn.send(wire.CREDIT, wire.pack_count(count))
            except (ReproError, OSError):
                self._drop_conn(conn)
        return message

    def put(self, message) -> None:
        """Queue one shard→router message (the outbox side)."""
        self._ensure_started()
        with self._cond:
            if self._closed or self._dead is not None:
                raise wire.ConnectionLost(
                    self._dead or "channel closed")
            self._out_seq += 1
            self._out_retained.append((self._out_seq, message))
            self._cond.notify_all()

    # -- connection management ----------------------------------------

    def _drop_conn(self, conn: _Conn) -> None:
        with self._cond:
            if self._conn is conn:
                self._conn = None
                self._cond.notify_all()
        conn.close()

    def _connect_once(self) -> _Conn:
        sock = socket.create_connection(self.address,
                                        timeout=self.connect_timeout_s)
        try:
            with self._cond:
                hello = {"role": "shard", "run_id": self.run_id,
                         "shard": self.shard,
                         "generation": self.generation,
                         "received": self._in_received,
                         "consumed": self._in_consumed}
            wire.send_frame(sock, wire.HELLO, wire.pack_dict(hello))
            ftype, payload = wire.read_frame(sock)
            if ftype == wire.HELLO_REJECT:
                reason = wire.unpack_dict(payload).get("reason", "?")
                raise wire.HelloRejected(
                    f"router rejected shard {self.shard}: {reason}")
            if ftype != wire.HELLO_OK:
                raise wire.WireError(
                    f"expected HELLO_OK, got frame type {ftype}")
            acked = int(wire.unpack_dict(payload).get("received", 0))
        except BaseException:
            _close_socket(sock)
            raise
        sock.settimeout(None)
        conn = _Conn(sock)
        with self._cond:
            if self._closed:
                conn.close()
                raise wire.ConnectionLost("channel closed")
            self._absorb_ack_locked(acked)
            self._out_sent = max(self._out_acked,
                                 min(acked, self._out_seq))
            self._conn = conn
            self._cond.notify_all()
        return conn

    def _absorb_ack_locked(self, count: int) -> None:
        if count > self._out_acked:
            self._out_acked = count
            while self._out_retained \
                    and self._out_retained[0][0] <= count:
                self._out_retained.popleft()

    def _reader_main(self) -> None:
        first = True
        while True:
            with self._cond:
                if self._closed or self._dead is not None:
                    return
            policy = RetryPolicy(retryable=(wire.WireError, OSError),
                                 **self.reconnect)
            try:
                conn = policy.call(self._connect_once)
            except (ReproError, OSError) as error:
                self._die(f"reconnect failed: {error}")
                return
            if not first:
                self.reconnects += 1
            first = False
            self._read_until_failure(conn)

    def _read_until_failure(self, conn: _Conn) -> None:
        while True:
            try:
                ftype, payload = wire.read_frame(conn.sock)
                self._dispatch(conn, ftype, payload)
            except (ReproError, OSError):
                self._drop_conn(conn)
                return
            with self._cond:
                if self._conn is not conn:
                    return

    def _dispatch(self, conn: _Conn, ftype: int, payload: bytes) -> None:
        if ftype == wire.DATA:
            seq, message = wire.unpack_data(payload)
            with self._cond:
                if self._conn is not conn:
                    return
                if seq <= self._in_received:
                    return  # duplicate after a resend
                if seq != self._in_received + 1:
                    raise wire.ConnectionLost(
                        f"sequence gap: expected "
                        f"{self._in_received + 1}, got {seq}")
                self._in_received = seq
            self._delivery.put(message)
        elif ftype == wire.CREDIT:
            count = wire.unpack_count(payload)
            with self._cond:
                self._absorb_ack_locked(count)
        elif ftype == wire.HEARTBEAT:
            info = wire.unpack_dict(payload)
            if "received" in info:
                with self._cond:
                    self._absorb_ack_locked(int(info["received"]))
        elif ftype == wire.BYE:
            raise wire.ConnectionLost("peer said BYE")

    def _sender_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and self._dead is None and (
                        self._conn is None
                        or self._out_sent >= self._out_seq):
                    self._cond.wait()
                if self._closed or self._dead is not None:
                    return
                conn = self._conn
                batch = [(seq, message)
                         for seq, message in self._out_retained
                         if seq > self._out_sent]
            for seq, message in batch:
                try:
                    conn.send(wire.DATA, wire.pack_data(seq, message))
                except (ReproError, OSError):
                    self._drop_conn(conn)
                    break
                with self._cond:
                    if self._conn is not conn:
                        break
                    self._out_sent = seq
                    if seq > self._out_max_sent:
                        self._out_max_sent = seq

    def _heartbeat_loop(self) -> None:
        while True:
            time.sleep(self.heartbeat_s)
            with self._cond:
                if self._closed or self._dead is not None:
                    return
                conn = self._conn
                counters = {"received": self._in_received,
                            "consumed": self._in_consumed}
            if conn is None:
                continue
            try:
                conn.send(wire.HEARTBEAT, wire.pack_dict(counters))
            except (ReproError, OSError):
                self._drop_conn(conn)
