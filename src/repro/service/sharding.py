"""Device → shard partitioning for the sharded tracking service.

The whole service rests on one invariant: **every frame that can affect
a device's state lands on the same shard**.  The engine's per-device
state — the streaming Γ, the dirty bit, the track, quarantine — is keyed
by the mobile's MAC, so the partition function hashes the *mobile* of a
frame's evidence (not the transmitter: an AP's probe response carries
evidence about its destination).

The hash is CRC32 over the big-endian 48-bit address — stable across
processes and Python versions, unlike the salted builtin ``hash`` —
so a checkpointed fleet restarts onto the same partitioning, and a
remote transport can compute the same routing without coordination.
"""

from __future__ import annotations

import zlib

from repro.engine.ingest import extract_evidence
from repro.net80211.frames import FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame


def device_shard(mac: MacAddress, shards: int) -> int:
    """The shard owning a device (stable, uniform over the MAC space)."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return zlib.crc32(mac.value.to_bytes(6, "big")) % shards


def routing_key(received: ReceivedFrame) -> MacAddress:
    """The MAC whose shard must ingest this frame.

    Evidence frames route by the *mobile* they prove communicable (so
    Γ updates stay shard-local); probe requests route by their source
    (the probing mobile, feeding the shard's pseudonym linker);
    anything else — beacons, unmatched management traffic — routes by
    its transmitter, which only moves a frame counter.
    """
    evidence = extract_evidence(received)
    if evidence is not None:
        return evidence.mobile
    frame = received.frame
    if frame.frame_type is FrameType.PROBE_REQUEST:
        return frame.source
    return frame.source


def shard_of(received: ReceivedFrame, shards: int) -> int:
    """Compose :func:`routing_key` and :func:`device_shard`."""
    return device_shard(routing_key(received), shards)
