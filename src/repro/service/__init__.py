"""repro.service — the sharded tracking service.

The scale-out layer over :mod:`repro.engine`: devices are partitioned
across N :class:`~repro.engine.StreamingEngine` shards by a stable hash
of the device id (:mod:`repro.service.sharding`), frames flow through a
pluggable :class:`Bus` — in-process queues, multiprocessing queues, or
TCP via :class:`SocketBus` (:mod:`repro.service.socketbus`) — and one
:class:`ShardedEngine` router re-exposes the single-engine surface
— plus serving queries and a Prometheus scrape — over the fleet.
Per-shard checkpoints and router-side retention make a shard crash
invisible: the restarted shard replays to exactly the state it lost.
For geographically distributed capture, the ingest gateway
(:mod:`repro.service.gateway`) accepts framed capture batches over TCP
with at-least-once + dedup-by-sequence delivery.
"""

from repro.service.bus import (Bus, BusTimeout, MpQueueBus, QueueBus,
                               DEFAULT_CAPACITY, empty_collect_message)
from repro.service.core import ServiceError, ShardedEngine, TRANSPORTS
from repro.service.gateway import (FrameIngestServer, IngestStats,
                                   stream_capture_to)
from repro.service.http import ServiceServer, estimate_to_dict
from repro.service.shard import (LocalizerFactory, ShardConfig,
                                 ShardRuntime, run_shard)
from repro.service.sharding import device_shard, routing_key, shard_of
from repro.service.socketbus import ShardChannel, SocketBus
from repro.service.wire import (ConnectionLost, CrcMismatch,
                                HelloRejected, TruncatedFrame,
                                VersionMismatch, WireError)

__all__ = [
    "Bus", "BusTimeout", "ConnectionLost", "CrcMismatch",
    "DEFAULT_CAPACITY", "FrameIngestServer", "HelloRejected",
    "IngestStats", "LocalizerFactory", "MpQueueBus", "QueueBus",
    "ServiceError", "ServiceServer", "ShardChannel", "ShardConfig",
    "ShardRuntime", "ShardedEngine", "SocketBus", "TRANSPORTS",
    "TruncatedFrame", "VersionMismatch", "WireError", "device_shard",
    "empty_collect_message", "estimate_to_dict", "routing_key",
    "run_shard", "shard_of", "stream_capture_to",
]
