"""repro.service — the sharded tracking service.

The scale-out layer over :mod:`repro.engine`: devices are partitioned
across N :class:`~repro.engine.StreamingEngine` shards by a stable hash
of the device id (:mod:`repro.service.sharding`), frames flow through a
pluggable :class:`Bus` (in-process queues today, sockets tomorrow), and
one :class:`ShardedEngine` router re-exposes the single-engine surface
— plus serving queries and a Prometheus scrape — over the fleet.
Per-shard checkpoints and router-side retention make a shard crash
invisible: the restarted shard replays to exactly the state it lost.
"""

from repro.service.bus import (Bus, BusTimeout, MpQueueBus, QueueBus,
                               DEFAULT_CAPACITY)
from repro.service.core import ServiceError, ShardedEngine
from repro.service.http import ServiceServer, estimate_to_dict
from repro.service.shard import (LocalizerFactory, ShardConfig,
                                 ShardRuntime, run_shard)
from repro.service.sharding import device_shard, routing_key, shard_of

__all__ = [
    "Bus", "BusTimeout", "DEFAULT_CAPACITY", "LocalizerFactory",
    "MpQueueBus", "QueueBus", "ServiceError", "ServiceServer",
    "ShardConfig", "ShardRuntime", "ShardedEngine", "device_shard",
    "estimate_to_dict", "routing_key", "run_shard", "shard_of",
]
