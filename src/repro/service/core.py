"""The sharded tracking service: router, supervision, merged read side.

:class:`ShardedEngine` partitions devices across N
:class:`~repro.engine.StreamingEngine` shards by hashed device id
(:mod:`repro.service.sharding`), feeds them through a pluggable
:class:`~repro.service.bus.Bus`, and re-exposes the single-engine
surface — ``run`` / ``ingest`` / ``drain`` / ``locate`` / ``stats`` —
over the fleet:

* **Equivalence** — a device's whole frame history lands on one shard
  in order, and shard engines are plain StreamingEngines, so the final
  per-device localizations of a sharded run equal a single-engine
  run's, independent of shard count.
* **Durability** — the router retains every published frame until the
  owning shard acks a checkpoint barrier covering it.  A dead shard is
  restarted (supervised by a :class:`~repro.faults.RetryPolicy`) from
  its last checkpoint, the retained tail is replayed, and because
  ingest is deterministic the restarted shard converges to exactly the
  state the crash destroyed — invisible to the rest of the fleet.
* **Merged reads** — ``stats()`` folds per-shard
  :class:`~repro.engine.EngineStats` with the associative merge;
  ``metrics_snapshot()`` / ``render_prometheus()`` fold per-shard
  registry snapshots through :func:`repro.obs.merge_snapshots`.
"""

from __future__ import annotations

import json
import threading
import uuid
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro import obs
from repro.engine.core import load_checkpoint_data
from repro.engine.stats import EngineStats
from repro.faults import ReproError, RetryPolicy
from repro.localization.base import LocalizationEstimate
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.service.bus import Bus, BusTimeout, MpQueueBus, QueueBus
from repro.service.shard import LocalizerFactory, ShardConfig, run_shard
from repro.service.sharding import device_shard, shard_of
from repro.service.socketbus import SocketBus

PathLike = Union[str, Path]

MANIFEST_NAME = "service.manifest.json"
MANIFEST_VERSION = 1

#: Transport names and the worker flavor each runs shards as.
TRANSPORTS = ("thread", "process", "socket", "socket-process")
_THREAD_TRANSPORTS = ("thread", "socket")


class ServiceError(ReproError):
    """A sharded-service failure (dead shard, timeout, bad manifest)."""


class _ShardHandle:
    """Router-side bookkeeping for one shard."""

    def __init__(self, index: int):
        self.index = index
        self.worker = None            # Thread or Process
        self.crash_event = None       # thread transport only
        # Serializes this shard's outbox reads and request/reply pairs.
        self.lock = threading.RLock()
        # Frames published since the last acked checkpoint barrier.
        self.retention: List[ReceivedFrame] = []
        self.pending: List[ReceivedFrame] = []   # not yet published
        self.published = 0
        self.since_checkpoint = 0
        # (marker, retention length at barrier send), one in flight.
        self.inflight_checkpoint: Optional[Tuple[int, int]] = None
        self.next_request = 0
        self.restarts = 0

    def alive(self) -> bool:
        return self.worker is not None and self.worker.is_alive()


class ShardedEngine:
    """N StreamingEngine shards behind one bus and one serving surface.

    Parameters
    ----------
    localizer_factory:
        Zero-arg callable building one shard's localizer.  Each shard
        gets its own instance; for ``transport="process"`` it must be
        picklable (``functools.partial(make_localizer, spec,
        database=db)`` is the canonical form).
    shards:
        Fleet width (>= 1).
    transport:
        ``"thread"`` (QueueBus, shared process), ``"process"``
        (MpQueueBus, one OS process per shard — real parallelism),
        ``"socket"`` (SocketBus over TCP, shard threads in this
        process — the single-host shape of a distributed fleet), or
        ``"socket-process"`` (SocketBus + one OS process per shard,
        connected over TCP exactly as remote shards would be).
    config:
        Per-shard :class:`~repro.service.shard.ShardConfig`.
    checkpoint_dir:
        Directory for per-shard checkpoint-v3 files plus the fleet
        manifest.  ``None`` disables durable checkpoints; restarts then
        replay the full retention (which is never trimmed).
    checkpoint_every:
        Send a checkpoint barrier to a shard every N published frames
        (``0`` disables scheduled barriers; explicit
        :meth:`save_checkpoints` still works).
    publish_batch:
        Frames per bus message — the pickling/latency trade-off knob.
    resume:
        Restore every shard from ``checkpoint_dir`` (validating the
        manifest) instead of starting cold.
    request_timeout_s:
        Serving-request deadline per shard before the router checks for
        a dead worker.
    publish_timeout_s:
        How long one bus publish may block on a full inbox before the
        router probes the consumer for death (the back-pressure /
        crash-detection latency trade-off).
    worker_join_timeout_s:
        How long :meth:`stop` / :meth:`kill_shard` wait for a worker to
        exit before giving up on the join.
    restart_retry:
        :class:`~repro.faults.RetryPolicy` supervising shard restarts.
    """

    def __init__(self, localizer_factory: LocalizerFactory,
                 shards: int = 2, transport: str = "thread",
                 config: ShardConfig = ShardConfig(),
                 bus: Optional[Bus] = None,
                 checkpoint_dir: Optional[PathLike] = None,
                 checkpoint_every: int = 0,
                 publish_batch: int = 64,
                 resume: bool = False,
                 request_timeout_s: float = 30.0,
                 publish_timeout_s: float = 1.0,
                 worker_join_timeout_s: float = 10.0,
                 restart_retry: Optional[RetryPolicy] = None,
                 registry: Optional[obs.MetricsRegistry] = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if transport not in TRANSPORTS:
            expected = ", ".join(repr(name) for name in TRANSPORTS)
            raise ValueError(
                f"transport must be one of {expected}, got "
                f"{transport!r}")
        if publish_timeout_s <= 0.0:
            raise ValueError(
                f"publish_timeout_s must be > 0, got {publish_timeout_s}")
        if worker_join_timeout_s <= 0.0:
            raise ValueError(
                f"worker_join_timeout_s must be > 0, got "
                f"{worker_join_timeout_s}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if publish_batch < 1:
            raise ValueError(
                f"publish_batch must be >= 1, got {publish_batch}")
        self.localizer_factory = localizer_factory
        self.shards = shards
        self.transport = transport
        self.config = config
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.checkpoint_every = checkpoint_every
        self.publish_batch = publish_batch
        self.request_timeout_s = request_timeout_s
        self.publish_timeout_s = publish_timeout_s
        self.worker_join_timeout_s = worker_join_timeout_s
        self.restart_retry = restart_retry if restart_retry is not None \
            else RetryPolicy(max_attempts=3, base_delay=0.05,
                             multiplier=2.0, jitter=0.0)
        self.registry = (registry if registry is not None
                         else obs.MetricsRegistry())
        # Namespaces checkpoint markers: a marker embedded by a prior
        # service run must not trim *this* run's retention.
        self.run_id = uuid.uuid4().hex
        self._c_published = self.registry.counter(
            "repro.service.frames.published")
        self._c_restarts = self.registry.counter(
            "repro.service.shard.restarts")
        self._c_barriers = self.registry.counter(
            "repro.service.checkpoint.barriers")
        if bus is None:
            if transport == "thread":
                bus = QueueBus(shards)
            elif transport == "process":
                bus = MpQueueBus(shards)
            else:
                bus = SocketBus(shards, run_id=self.run_id,
                                registry=self.registry)
        self.bus = bus
        self._handles = [_ShardHandle(index) for index in range(shards)]
        self._drained: Optional[List[dict]] = None
        self._stopped = False
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            if resume:
                self._validate_manifest()
            else:
                self._write_manifest()
        elif resume:
            raise ServiceError("resume=True requires a checkpoint_dir")
        for handle in self._handles:
            self._start_worker(handle, resume=resume)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _checkpoint_path(self, index: int) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return str(self.checkpoint_dir / f"shard-{index:03d}.ckpt.json")

    def _write_manifest(self) -> None:
        manifest = {
            "service_manifest": MANIFEST_VERSION,
            "shards": self.shards,
            "transport": self.transport,
        }
        (self.checkpoint_dir / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8")

    def _validate_manifest(self) -> None:
        path = self.checkpoint_dir / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise ServiceError(
                f"cannot resume: unreadable manifest {path}: {error}"
            ) from error
        stored = manifest.get("shards")
        if stored != self.shards:
            # The partition function is keyed by shard count: resuming
            # with a different width would strand device state on the
            # wrong shard.
            raise ServiceError(
                f"cannot resume: checkpoint fleet has {stored} shards, "
                f"requested {self.shards}")

    def _start_worker(self, handle: _ShardHandle, resume: bool) -> None:
        inbox, outbox = self.bus.endpoints(handle.index)
        args = (handle.index, self.localizer_factory, self.config,
                self._checkpoint_path(handle.index), resume, self.run_id,
                inbox, outbox)
        if self.transport in _THREAD_TRANSPORTS:
            handle.crash_event = threading.Event()
            handle.worker = threading.Thread(
                target=run_shard, args=args + (handle.crash_event,),
                name=f"repro-shard-{handle.index}", daemon=True)
        else:
            ctx = getattr(self.bus, "_ctx", None)
            process_cls = ctx.Process if ctx is not None else None
            if process_cls is None:  # pragma: no cover - custom bus
                import multiprocessing
                process_cls = multiprocessing.get_context().Process
            handle.crash_event = None
            handle.worker = process_cls(
                target=run_shard, args=args,
                name=f"repro-shard-{handle.index}", daemon=True)
        handle.worker.start()

    def kill_shard(self, index: int) -> None:
        """Hard-kill one shard (chaos/testing): no drain, no checkpoint.

        The next interaction with the shard — a publish, a serving
        request — triggers the supervised restart path.
        """
        handle = self._handles[index]
        if self.transport in _THREAD_TRANSPORTS:
            if handle.crash_event is not None:
                handle.crash_event.set()
            # Wake a get()-blocked runtime so the event is observed.
            try:
                self.bus.publish(index, ("crash",),
                                 timeout=self.publish_timeout_s)
            except BusTimeout:  # pragma: no cover - full inbox
                pass
            if handle.worker is not None:
                handle.worker.join(timeout=self.worker_join_timeout_s)
        else:
            if handle.worker is not None:
                handle.worker.terminate()
                handle.worker.join(timeout=self.worker_join_timeout_s)

    def kill_connection(self, index: int) -> bool:
        """Sever one shard's transport connection (chaos/testing).

        Socket transports only: the worker stays alive, its TCP
        connection dies mid-stream, and the heartbeat/supervised-
        reconnect machinery must stitch the streams back together with
        no loss.  Returns whether a live connection was killed.
        """
        kill = getattr(self.bus, "kill_connection", None)
        if kill is None:
            raise ServiceError(
                f"transport {self.transport!r} has no connections "
                f"to kill")
        return kill(index)

    def restart_shard(self, index: int) -> None:
        """Supervised restart: fresh endpoints, checkpoint restore,
        retention replay.

        Safe only for a dead shard (the live engine would otherwise
        fork).  Raises :class:`ServiceError` if the shard is alive.
        """
        handle = self._handles[index]
        if handle.alive():
            raise ServiceError(
                f"shard {index} is alive; kill it before restarting")

        def attempt():
            self.bus.reset(index)
            handle.inflight_checkpoint = None
            handle.since_checkpoint = 0
            path = self._checkpoint_path(index)
            resume = path is not None and Path(path).exists()
            if resume:
                # The checkpoint may cover frames whose ack died with
                # the shard; its embedded marker says exactly how far.
                covered = self._covered_marker(path)
                acked = handle.published - len(handle.retention)
                if covered > acked:
                    del handle.retention[:covered - acked]
            self._start_worker(handle, resume=resume)
            # Deterministic replay of everything the checkpoint does
            # not cover; the restarted engine converges to the exact
            # pre-crash state.
            for start in range(0, len(handle.retention),
                               self.publish_batch):
                self.bus.publish(
                    index, ("frames",
                            handle.retention[start:start
                                             + self.publish_batch]))
            if not handle.alive():
                raise ServiceError(
                    f"shard {index} died during restart")

        self.restart_retry.call(attempt)
        handle.restarts += 1
        self._c_restarts.inc()
        if self._drained is not None:
            # The fleet was settled when this shard died: replay alone
            # rebuilds Γ but leaves the re-ingested devices unflushed.
            # Re-drain the survivor so its serving state (tracker,
            # cached report) is exactly what the crash destroyed.
            self._drained[index] = self._request(index, "drain")

    def _covered_marker(self, path: str) -> int:
        """The ingest position a shard's checkpoint file covers.

        Only markers stamped by *this* service run count; a prior run's
        marker is meaningless against this run's published counters.
        """
        try:
            data = load_checkpoint_data(path)
        except ReproError:
            return 0
        extra = data.get("extra") or {}
        if extra.get("service_run") != self.run_id:
            return 0
        return int(extra.get("service_marker", 0))

    def _ensure_alive(self, handle: _ShardHandle) -> None:
        if not handle.alive():
            self.restart_shard(handle.index)

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------

    def ingest(self, received: ReceivedFrame) -> None:
        """Route one frame to its owning shard (batched publish)."""
        if self._stopped:
            raise ServiceError("service is stopped")
        # New traffic invalidates any cached drain report.
        self._drained = None
        shard = shard_of(received, self.shards)
        handle = self._handles[shard]
        handle.pending.append(received)
        if len(handle.pending) >= self.publish_batch:
            self._publish_pending(handle)

    def ingest_stream(self, stream: Iterable[ReceivedFrame]) -> None:
        for received in stream:
            self.ingest(received)

    def ingest_batch(self, batch) -> None:
        """Route one :class:`~repro.capture.records.FrameBatch`.

        The bus carries :class:`ReceivedFrame` lists (shard workers may
        live in other processes), so batch replay materializes records
        here at the routing boundary; the per-shard columnar win is the
        replay side (zero-copy reads, block skipping), not the publish
        side.
        """
        for received in batch.iter_frames():
            self.ingest(received)

    def ingest_batches(self, stream) -> None:
        for batch in stream:
            self.ingest_batch(batch)

    def run(self, stream: Iterable[ReceivedFrame]) -> EngineStats:
        """Consume a whole stream, drain the fleet, return merged stats.

        The fleet stays up afterwards — serving requests keep working
        until :meth:`stop`.
        """
        self.ingest_stream(stream)
        self.drain()
        return self.stats()

    def _publish_pending(self, handle: _ShardHandle) -> None:
        batch = handle.pending
        if not batch:
            return
        handle.pending = []
        with handle.lock:
            self._ensure_alive(handle)
            self._publish_message(handle, ("frames", batch))
            handle.retention.extend(batch)
            handle.published += len(batch)
            handle.since_checkpoint += len(batch)
            self._c_published.inc(len(batch))
            self._pump_acks(handle)
            if (self.checkpoint_every > 0
                    and handle.since_checkpoint >= self.checkpoint_every
                    and handle.inflight_checkpoint is None):
                self._send_barrier(handle)

    def _publish_message(self, handle: _ShardHandle, message) -> None:
        """Publish with back-pressure, surviving a mid-block crash."""
        while True:
            try:
                self.bus.publish(handle.index, message,
                                 timeout=self.publish_timeout_s)
                return
            except BusTimeout:
                if not handle.alive():
                    # The inbox filled because the consumer died;
                    # restart resets the endpoints, then re-publish.
                    self.restart_shard(handle.index)

    def _send_barrier(self, handle: _ShardHandle) -> None:
        marker = handle.published
        self._publish_message(handle, ("checkpoint", marker))
        handle.inflight_checkpoint = (marker, len(handle.retention))
        handle.since_checkpoint = 0
        self._c_barriers.inc()

    def _pump_acks(self, handle: _ShardHandle,
                   block_for: Optional[int] = None,
                   timeout: Optional[float] = None):
        """Drain the shard's outbox; return a matching reply if asked.

        Processes checkpoint acks inline (trimming retention).  With
        ``block_for`` set, blocks until the reply with that request id
        arrives or ``timeout`` elapses (:class:`BusTimeout`).
        """
        while True:
            try:
                message = self.bus.collect(
                    handle.index, block=block_for is not None,
                    timeout=timeout)
            except BusTimeout:
                if block_for is None:
                    return None
                raise
            reply = self._handle_message(handle, message)
            if reply is not None and block_for is not None \
                    and reply[0] == block_for:
                return reply[1]

    def _handle_message(self, handle: _ShardHandle, message
                        ) -> Optional[Tuple[int, object]]:
        """Process one outbox message; return (req_id, result) replies."""
        kind = message[0]
        if kind == "ckpt_ack":
            inflight = handle.inflight_checkpoint
            if inflight is not None and message[1] == inflight[0]:
                del handle.retention[:inflight[1]]
                handle.inflight_checkpoint = None
            return None
        if kind == "reply":
            # A reply nobody is waiting for (an abandoned request from
            # before a restart) is dropped by the caller.
            return message[1], message[2]
        if kind == "fatal":
            raise ServiceError(
                f"shard {handle.index} failed: {message[1]}")
        return None  # pragma: no cover - unknown message

    # ------------------------------------------------------------------
    # Serving requests
    # ------------------------------------------------------------------

    def _request(self, index: int, what: str, payload=None,
                 timeout: Optional[float] = None):
        handle = self._handles[index]
        deadline = timeout if timeout is not None else \
            self.request_timeout_s
        with handle.lock:
            self._ensure_alive(handle)
            req_id = handle.next_request
            handle.next_request += 1
            self._publish_message(handle, ("request", req_id, what,
                                           payload))
            try:
                return self._pump_acks(handle, block_for=req_id,
                                       timeout=deadline)
            except BusTimeout:
                if not handle.alive():
                    # Died mid-request: restart and retry once.
                    self.restart_shard(index)
                    req_id = handle.next_request
                    handle.next_request += 1
                    self._publish_message(
                        handle, ("request", req_id, what, payload))
                    return self._pump_acks(handle, block_for=req_id,
                                           timeout=deadline)
                raise ServiceError(
                    f"shard {index} did not answer {what!r} within "
                    f"{deadline}s") from None

    def locate(self, mobile: Union[MacAddress, str]
               ) -> Optional[Tuple[float, LocalizationEstimate]]:
        """The newest (timestamp, estimate) fix for a device, or None."""
        if isinstance(mobile, str):
            mobile = MacAddress.parse(mobile)
        index = device_shard(mobile, self.shards)
        if self._stopped:
            return self._drained_fix(index, mobile)
        return self._request(index, "locate", str(mobile))

    def _drained_fix(self, index, mobile):
        if self._drained is None:
            raise ServiceError("service is stopped")
        return self._drained[index]["fixes"].get(mobile)

    def snapshot(self) -> Dict[MacAddress,
                               Tuple[float, LocalizationEstimate]]:
        """Latest fix per device, merged across the fleet."""
        if self._stopped:
            if self._drained is None:
                raise ServiceError("service is stopped")
            per_shard = [result["fixes"] for result in self._drained]
        else:
            per_shard = [self._request(index, "snapshot")
                         for index in range(self.shards)]
        merged: Dict[MacAddress, Tuple[float, LocalizationEstimate]] = {}
        for fixes in per_shard:
            merged.update(fixes)
        return merged

    def health(self) -> dict:
        """Per-shard liveness + lag; never raises for a dead shard."""
        reports = []
        for handle in self._handles:
            if not handle.alive():
                reports.append({"shard": handle.index, "alive": False,
                                "restarts": handle.restarts})
                continue
            try:
                report = self._request(handle.index, "health",
                                       timeout=self.request_timeout_s)
            except (ServiceError, BusTimeout):
                report = {"shard": handle.index, "alive": False}
            report["restarts"] = handle.restarts
            report["retained_frames"] = len(handle.retention)
            reports.append(report)
        return {
            "healthy": all(r.get("alive") for r in reports),
            "shards": reports,
        }

    def stats(self) -> EngineStats:
        """Merged fleet stats (associative per-shard fold)."""
        if self._drained is not None:
            snapshots = [result["stats"] for result in self._drained]
        else:
            snapshots = [self._request(index, "stats")
                         for index in range(self.shards)]
        return EngineStats.merge_all(snapshots)

    def metrics_snapshot(self) -> dict:
        """Merged registry snapshot: every shard plus the router."""
        if self._drained is not None:
            snapshots = [result["metrics"] for result in self._drained]
        else:
            snapshots = [self._request(index, "metrics")
                         for index in range(self.shards)]
        merged = obs.merge_snapshots(snapshots + [self.registry.snapshot()])
        return merged.snapshot()

    def render_prometheus(self) -> str:
        """One Prometheus text exposition for the whole fleet."""
        merged = obs.MetricsRegistry()
        merged.merge(self.metrics_snapshot())
        return merged.render_prometheus()

    # ------------------------------------------------------------------
    # Drain / checkpoint / stop
    # ------------------------------------------------------------------

    def flush_publishes(self) -> None:
        """Push every batched-but-unpublished frame onto the bus."""
        for handle in self._handles:
            self._publish_pending(handle)

    def drain(self) -> EngineStats:
        """Settle the whole fleet (reorder buffers, refits, flushes).

        Caches each shard's drain report — fixes, stats, metrics — so
        the read side keeps answering after :meth:`stop`.  Returns the
        merged stats.
        """
        self.flush_publishes()
        results = []
        for index in range(self.shards):
            results.append(self._request(index, "drain"))
        self._drained = results
        return EngineStats.merge_all(r["stats"] for r in results)

    def save_checkpoints(self, timeout: Optional[float] = None) -> None:
        """Synchronous checkpoint barrier across the fleet."""
        if self.checkpoint_dir is None:
            raise ServiceError(
                "save_checkpoints requires a checkpoint_dir")
        deadline = timeout if timeout is not None else \
            self.request_timeout_s
        for handle in self._handles:
            with handle.lock:
                self._ensure_alive(handle)
                self._publish_pending_locked(handle)
                if handle.inflight_checkpoint is None:
                    self._send_barrier(handle)
                while handle.inflight_checkpoint is not None:
                    try:
                        message = self.bus.collect(handle.index,
                                                   timeout=deadline)
                    except BusTimeout:
                        raise ServiceError(
                            f"shard {handle.index} did not ack its "
                            f"checkpoint within {deadline}s") from None
                    self._handle_message(handle, message)

    def _publish_pending_locked(self, handle: _ShardHandle) -> None:
        """Publish pending frames while already holding handle.lock."""
        batch = handle.pending
        if not batch:
            return
        handle.pending = []
        self._publish_message(handle, ("frames", batch))
        handle.retention.extend(batch)
        handle.published += len(batch)
        handle.since_checkpoint += len(batch)
        self._c_published.inc(len(batch))

    def stop(self) -> None:
        """Graceful shutdown: drain if needed, stop workers, close bus."""
        if self._stopped:
            return
        if self._drained is None:
            try:
                self.drain()
            except (ServiceError, BusTimeout):  # pragma: no cover
                pass
        for handle in self._handles:
            if handle.alive():
                try:
                    self._publish_message(handle, ("stop",))
                except (ServiceError, BusTimeout):  # pragma: no cover
                    continue
        for handle in self._handles:
            if handle.worker is not None:
                handle.worker.join(timeout=self.worker_join_timeout_s)
        self._stopped = True
        self.bus.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
