"""The query/serving surface over a :class:`ShardedEngine`.

A deliberately thin stdlib HTTP layer (``http.server``): every endpoint
is one :class:`~repro.service.core.ShardedEngine` call plus JSON (or
Prometheus text) encoding.  No framework, no dependency — the point is
the *service contract*, not the web stack:

====================  =====================================================
``GET /locate?device=aa:bb:cc:dd:ee:ff``  newest fix for one device
``GET /snapshot``     newest fix per device, merged across the fleet
``GET /health``       per-shard liveness + lag (``503`` when degraded)
``GET /stats``        merged :class:`~repro.engine.EngineStats`
``GET /metrics``      Prometheus text exposition of the merged registries
====================  =====================================================
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.localization.base import LocalizationEstimate
from repro.net80211.mac import MacAddress
from repro.service.core import ServiceError, ShardedEngine


def estimate_to_dict(timestamp: float,
                     estimate: LocalizationEstimate) -> dict:
    """JSON-safe rendering of one fix (region collapsed to a summary)."""
    body = {
        "timestamp": timestamp,
        "x": estimate.position.x,
        "y": estimate.position.y,
        "algorithm": estimate.algorithm,
        "used_ap_count": estimate.used_ap_count,
        "region_empty": estimate.region_empty,
        "inflation_factor": estimate.inflation_factor,
    }
    if estimate.region is not None:
        body["region_area_m2"] = estimate.area_m2
    return body


class ServiceHandler(BaseHTTPRequestHandler):
    """Dispatches the five endpoints against ``server.engine``."""

    server_version = "marauder-serve/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # quiet by default; metrics carry the signal

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        engine: ShardedEngine = self.server.engine
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/locate":
                self._locate(engine, parsed.query)
            elif parsed.path == "/snapshot":
                self._snapshot(engine)
            elif parsed.path == "/health":
                self._health(engine)
            elif parsed.path == "/stats":
                self._json(200, asdict(engine.stats()))
            elif parsed.path == "/metrics":
                self._text(200, engine.render_prometheus(),
                           content_type="text/plain; version=0.0.4")
            else:
                self._json(404, {"error": f"no route {parsed.path}"})
        except ServiceError as error:
            self._json(503, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """Admin verbs: graceful drain, and (opt-in) chaos kills."""
        engine: ShardedEngine = self.server.engine
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/drain":
                stats = engine.drain()
                self._json(200, {"drained": True,
                                 "stats": asdict(stats)})
            elif parsed.path == "/chaos/kill":
                if not getattr(self.server, "allow_chaos", False):
                    self._json(403, {"error": "chaos endpoints disabled "
                                              "(start with --chaos)"})
                    return
                shards = parse_qs(parsed.query).get("shard")
                if not shards:
                    self._json(400, {"error": "missing ?shard= parameter"})
                    return
                index = int(shards[0])
                if not 0 <= index < engine.shards:
                    self._json(400, {"error": f"shard {index} out of "
                                              f"range 0..{engine.shards - 1}"})
                    return
                engine.kill_shard(index)
                self._json(200, {"killed": index})
            elif parsed.path == "/chaos/kill-connection":
                if not getattr(self.server, "allow_chaos", False):
                    self._json(403, {"error": "chaos endpoints disabled "
                                              "(start with --chaos)"})
                    return
                shards = parse_qs(parsed.query).get("shard")
                if not shards:
                    self._json(400, {"error": "missing ?shard= parameter"})
                    return
                index = int(shards[0])
                if not 0 <= index < engine.shards:
                    self._json(400, {"error": f"shard {index} out of "
                                              f"range 0..{engine.shards - 1}"})
                    return
                # Severs the shard's TCP connection without touching
                # the worker: the reconnect machinery, not the restart
                # path, must make this invisible.
                self._json(200, {"shard": index,
                                 "killed": engine.kill_connection(index)})
            else:
                self._json(404, {"error": f"no route {parsed.path}"})
        except ServiceError as error:
            self._json(503, {"error": str(error)})

    # ------------------------------------------------------------------

    def _locate(self, engine: ShardedEngine, query: str) -> None:
        devices = parse_qs(query).get("device")
        if not devices:
            self._json(400, {"error": "missing ?device= parameter"})
            return
        try:
            mobile = MacAddress.parse(devices[0])
        except ValueError as error:
            self._json(400, {"error": str(error)})
            return
        fix = engine.locate(mobile)
        if fix is None:
            self._json(404, {"device": str(mobile), "located": False})
            return
        timestamp, estimate = fix
        self._json(200, {"device": str(mobile), "located": True,
                         "fix": estimate_to_dict(timestamp, estimate)})

    def _snapshot(self, engine: ShardedEngine) -> None:
        fixes = engine.snapshot()
        self._json(200, {
            "devices": len(fixes),
            "fixes": {str(mobile): estimate_to_dict(ts, estimate)
                      for mobile, (ts, estimate) in sorted(
                          fixes.items(), key=lambda item: str(item[0]))},
        })

    def _health(self, engine: ShardedEngine) -> None:
        report = engine.health()
        self._json(200 if report["healthy"] else 503, report)

    # ------------------------------------------------------------------

    def _json(self, status: int, body: dict) -> None:
        self._text(status, json.dumps(body, indent=2) + "\n",
                   content_type="application/json")

    def _text(self, status: int, body: str,
              content_type: str = "text/plain") -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)


class ServiceServer:
    """Owns the HTTP listener thread for a :class:`ShardedEngine`.

    ``ThreadingHTTPServer`` handles each request on its own thread; the
    engine serializes per-shard traffic internally, so concurrent
    queries are safe.
    """

    def __init__(self, engine: ShardedEngine, host: str = "127.0.0.1",
                 port: int = 0, allow_chaos: bool = False):
        self.engine = engine
        self._httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self._httpd.engine = engine
        self._httpd.allow_chaos = allow_chaos
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when 0 was asked."""
        return self._httpd.server_address[:2]

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, finish in-flight requests, release the port."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
