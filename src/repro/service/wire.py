"""The framed wire protocol under the socket transports.

Everything that crosses a TCP connection — bus envelopes, ingest
batches, heartbeats, handshakes — travels as one *frame*::

    +-------+---------+-------+-----------+-----------+---------+
    | magic | version | ftype | length u32| payload   | crc32   |
    | 4 B   | 1 B     | 1 B   | 4 B BE    | length B  | 4 B BE  |
    +-------+---------+-------+-----------+-----------+---------+

The CRC32 trailer covers version + ftype + length + payload, so a
flipped bit anywhere but the magic is caught before the payload is
unpickled.  A magic or version mismatch, a CRC failure, or a length
beyond :data:`MAX_FRAME_BYTES` each raise a distinct
:class:`WireError` subclass — the receiving side closes the connection
rather than guessing at resynchronization, and the reconnect machinery
(sequence numbers + cumulative acks, see
:mod:`repro.service.socketbus`) replays whatever the broken connection
lost.

Frame types are deliberately few:

==============  ========================================================
``HELLO``       first frame on every connection: pickled dict carrying
                ``run_id`` / ``shard`` / ``generation`` / stream
                counters, so a stale or cross-run peer is rejected
``HELLO_OK``    acceptance + the receiver's cumulative counters (the
                resume point after a reconnect)
``HELLO_REJECT``pickled reason string; the connection closes after it
``DATA``        u64 BE sequence number + pickled message
``CREDIT``      u64 BE cumulative consumed/received count (flow control
                *and* retention trim in one frame)
``HEARTBEAT``   pickled counter dict; liveness plus ack redundancy
``BYE``         clean end-of-stream (ingest clients)
==============  ========================================================

Fault-injection seams: every encoded frame passes through
``faults.hook("socket.send")`` before the write and every decoded frame
through ``faults.hook("socket.recv")`` after the read, so chaos specs
like ``socket.recv:drop`` simulate loss and exercise the
resend/reconnect paths without a real flaky network.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any, Optional, Tuple

from repro import faults
from repro.faults import DROPPED
from repro.faults.errors import ReproError

MAGIC = b"MRSB"
WIRE_VERSION = 1

#: Upper bound on one frame's payload; a corrupt length field must not
#: make the reader try to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# Frame types.
HELLO = 1
HELLO_OK = 2
HELLO_REJECT = 3
DATA = 4
CREDIT = 5
HEARTBEAT = 6
BYE = 7

_HEADER = struct.Struct(">4sBBI")   # magic, version, ftype, length
_TRAILER = struct.Struct(">I")      # crc32
_SEQ = struct.Struct(">Q")          # u64 sequence / cumulative count


class WireError(ReproError):
    """A framing-level failure; the connection is no longer trusted."""


class TruncatedFrame(WireError):
    """The stream ended mid-frame (mid-message disconnect)."""


class BadMagic(WireError):
    """The frame header did not start with :data:`MAGIC`."""


class VersionMismatch(WireError):
    """The peer speaks a different wire protocol version."""


class CrcMismatch(WireError):
    """The CRC32 trailer did not match the frame body."""


class ConnectionLost(WireError):
    """The underlying socket failed or closed."""


class HelloRejected(ReproError):
    """The peer refused the handshake (stale generation, wrong run).

    Deliberately *not* a :class:`WireError`: rejection is a protocol
    decision, not a transient link failure, so the supervised-reconnect
    retry filters (which retry :class:`WireError` and ``OSError``) let
    it propagate instead of hammering a peer that already said no.
    """


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """One wire frame: header + payload + CRC32 trailer."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit")
    body = _HEADER.pack(MAGIC, WIRE_VERSION, ftype, len(payload)) + payload
    # The CRC covers everything after the magic, magic included costs
    # nothing and keeps the check a single pass over the frame.
    return body + _TRAILER.pack(zlib.crc32(body) & 0xFFFFFFFF)


def _recv_exactly(sock: socket.socket, count: int,
                  started: bool = False) -> bytes:
    """Read exactly ``count`` bytes or raise.

    A clean EOF before any byte of a frame raises
    :class:`ConnectionLost`; an EOF after the frame started raises
    :class:`TruncatedFrame` (the mid-message disconnect case).
    """
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except OSError as error:
            raise ConnectionLost(f"socket read failed: {error}") from error
        if not chunk:
            if chunks or started:
                raise TruncatedFrame(
                    f"connection closed mid-frame "
                    f"({count - remaining} of {count} bytes read)")
            raise ConnectionLost("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one validated ``(ftype, payload)`` frame from ``sock``.

    Loops past frames a ``socket.recv:drop`` fault discards, so chaos
    runs see loss exactly where a flaky network would produce it.
    """
    while True:
        header = _recv_exactly(sock, _HEADER.size)
        magic, version, ftype, length = _HEADER.unpack(header)
        if magic != MAGIC:
            raise BadMagic(f"bad frame magic {magic!r}")
        if version != WIRE_VERSION:
            raise VersionMismatch(
                f"peer speaks wire version {version}, "
                f"this side speaks {WIRE_VERSION}")
        if length > MAX_FRAME_BYTES:
            raise WireError(
                f"frame length {length} exceeds the "
                f"{MAX_FRAME_BYTES}-byte frame limit")
        payload = _recv_exactly(sock, length, started=True) if length \
            else b""
        trailer = _recv_exactly(sock, _TRAILER.size, started=True)
        (crc,) = _TRAILER.unpack(trailer)
        if zlib.crc32(header + payload) & 0xFFFFFFFF != crc:
            raise CrcMismatch(
                f"frame CRC mismatch on {length}-byte type-{ftype} frame")
        frame = (ftype, payload)
        if faults.hook("socket.recv", frame) is DROPPED:
            continue  # simulated loss: read the next frame instead
        return frame


def send_frame(sock: socket.socket, ftype: int,
               payload: bytes = b"") -> None:
    """Encode and write one frame (caller serializes concurrent writers).

    A ``socket.send:drop`` fault swallows the frame after encoding —
    the peer simply never sees it, like a lossy link would behave.
    """
    data = faults.hook("socket.send", encode_frame(ftype, payload))
    if data is DROPPED:
        return
    try:
        sock.sendall(data)
    except OSError as error:
        raise ConnectionLost(f"socket write failed: {error}") from error


# ----------------------------------------------------------------------
# Typed payload helpers
# ----------------------------------------------------------------------

def pack_data(seq: int, message: Any) -> bytes:
    """A DATA payload: u64 sequence number + pickled message."""
    return _SEQ.pack(seq) + pickle.dumps(
        message, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_data(payload: bytes) -> Tuple[int, Any]:
    if len(payload) < _SEQ.size:
        raise WireError(
            f"DATA payload of {len(payload)} bytes is too short for a "
            f"sequence number")
    (seq,) = _SEQ.unpack_from(payload)
    return seq, pickle.loads(payload[_SEQ.size:])


def pack_count(count: int) -> bytes:
    """A CREDIT payload: one cumulative u64 count."""
    return _SEQ.pack(count)


def unpack_count(payload: bytes) -> int:
    if len(payload) != _SEQ.size:
        raise WireError(
            f"CREDIT payload must be {_SEQ.size} bytes, "
            f"got {len(payload)}")
    return _SEQ.unpack(payload)[0]


def pack_dict(mapping: dict) -> bytes:
    return pickle.dumps(mapping, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_dict(payload: bytes) -> dict:
    try:
        value = pickle.loads(payload)
    except Exception as error:  # pickle raises a zoo of types
        raise WireError(f"undecodable frame payload: {error}") from error
    if not isinstance(value, dict):
        raise WireError(
            f"expected a dict payload, got {type(value).__name__}")
    return value


def hello_payload(**fields: Any) -> bytes:
    return pack_dict(fields)


def read_hello(sock: socket.socket,
               timeout: Optional[float] = None) -> dict:
    """Read the connection-opening HELLO (with its own deadline)."""
    previous = sock.gettimeout()
    sock.settimeout(timeout)
    try:
        # A recv timeout surfaces as OSError and is wrapped into
        # ConnectionLost by the frame reader, which is exactly right: a
        # peer that connects and goes silent is a lost connection.
        ftype, payload = read_frame(sock)
    finally:
        try:
            sock.settimeout(previous)
        except OSError:  # pragma: no cover - already closed
            pass
    if ftype != HELLO:
        raise WireError(f"expected HELLO, got frame type {ftype}")
    return unpack_dict(payload)
