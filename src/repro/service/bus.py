"""The pluggable ingest bus between the router and the engine shards.

A :class:`Bus` owns, per shard, one *inbox* (router → shard: frame
batches and control messages) and one *outbox* (shard → router:
checkpoint acks and request replies).  Messages are opaque picklable
tuples — the bus moves envelopes, the shard runtime interprets them —
so a transport only has to provide queue semantics:

* :class:`QueueBus` — in-process ``queue.Queue`` pairs; shards run as
  threads.  Zero serialization cost, shared GIL.
* :class:`MpQueueBus` — ``multiprocessing.Queue`` pairs; shards run as
  OS processes.  Frames pickle across, each shard gets its own
  interpreter (and its own GIL), which is what the throughput bench
  exercises.

* :class:`~repro.service.socketbus.SocketBus` — TCP connections behind
  the same five methods; shards can live on other machines.  Nothing
  above the bus (the :class:`~repro.service.core.ShardedEngine`, the
  serving layer) changes.

Inboxes are bounded, so a slow shard back-pressures the router instead
of buffering the whole capture in memory.  :meth:`Bus.reset` replaces
one shard's endpoints with fresh queues — after a shard crash the old
queues may hold garbage (or, for a terminated process, be corrupted
mid-``put``), so a supervised restart never reuses them.
"""

from __future__ import annotations

import multiprocessing
import queue
from typing import Any, List, Optional, Tuple

from repro import faults
from repro.faults import DROPPED

#: Default inbox bound, in *messages* (a message is a frame batch or a
#: control record), giving bounded memory with enough slack that the
#: router rarely blocks.
DEFAULT_CAPACITY = 256


class BusTimeout(Exception):
    """A bounded receive elapsed with nothing to deliver."""


def empty_collect_message(shard: int, timeout: Optional[float],
                          block: bool) -> str:
    """The :class:`BusTimeout` text for an empty :meth:`Bus.collect`.

    Distinguishes the non-blocking probe ("nothing queued") from a
    timed wait, so a poll loop's routine empty read never claims a
    ``None``-second timeout elapsed.
    """
    if not block:
        return f"no message queued from shard {shard}"
    if timeout is None:
        return f"no message from shard {shard}"
    return f"no message from shard {shard} within {timeout}s"


class Bus:
    """Per-shard inbox/outbox queue pairs behind one transport seam."""

    def __init__(self, shards: int, capacity: int = DEFAULT_CAPACITY):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.shards = shards
        self.capacity = capacity
        self._inboxes: List[Any] = [self._make_queue(capacity)
                                    for _ in range(shards)]
        self._outboxes: List[Any] = [self._make_queue(0)
                                     for _ in range(shards)]

    # -- transport seam ------------------------------------------------

    def _make_queue(self, capacity: int):
        raise NotImplementedError

    # -- router side ---------------------------------------------------

    def publish(self, shard: int, message: Tuple,
                timeout: Optional[float] = None) -> None:
        """Enqueue one message for a shard.

        Blocks when the inbox is full — back-pressure, not loss.  With
        ``timeout`` set, raises :class:`BusTimeout` instead of blocking
        forever, which is how the router notices a consumer that died
        with a full inbox.

        Fault-injection seam: ``bus.publish`` (keyed by shard index)
        may raise, delay, corrupt the message, or drop it outright.
        """
        message = faults.hook("bus.publish", message, key=str(shard))
        if message is DROPPED:
            return
        try:
            self._inboxes[shard].put(message, timeout=timeout)
        except queue.Full:
            raise BusTimeout(
                f"shard {shard} inbox full after {timeout}s"
            ) from None

    def collect(self, shard: int,
                timeout: Optional[float] = None,
                block: bool = True) -> Tuple:
        """Dequeue one shard → router message.

        Raises :class:`BusTimeout` when nothing arrives in time (or,
        non-blocking, when the outbox is empty).

        Fault-injection seam: ``bus.collect`` (keyed by shard index)
        may raise or delay before the read.
        """
        faults.hook("bus.collect", key=str(shard))
        try:
            return self._outboxes[shard].get(block=block, timeout=timeout)
        except queue.Empty:
            raise BusTimeout(
                empty_collect_message(shard, timeout, block)) from None

    def reset(self, shard: int) -> None:
        """Replace one shard's endpoints with fresh queues (post-crash)."""
        self._inboxes[shard] = self._make_queue(self.capacity)
        self._outboxes[shard] = self._make_queue(0)

    # -- shard side ----------------------------------------------------

    def endpoints(self, shard: int) -> Tuple[Any, Any]:
        """The ``(inbox, outbox)`` pair a shard runtime consumes.

        For a process transport these are picklable and shipped to the
        child; the parent must not read a shard's inbox once its worker
        owns it.
        """
        return self._inboxes[shard], self._outboxes[shard]

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release transport resources (no-op for in-process queues)."""


class QueueBus(Bus):
    """In-process transport: ``queue.Queue`` pairs, shard threads."""

    def _make_queue(self, capacity: int):
        return queue.Queue(maxsize=capacity)


class MpQueueBus(Bus):
    """Multiprocess transport: ``multiprocessing.Queue`` pairs.

    Uses an explicit context so the transport is deliberate about the
    start method rather than inheriting whatever the platform default
    happens to be.
    """

    def __init__(self, shards: int, capacity: int = DEFAULT_CAPACITY,
                 context: Optional[str] = None):
        self._ctx = multiprocessing.get_context(context)
        super().__init__(shards, capacity)

    def _make_queue(self, capacity: int):
        return self._ctx.Queue(maxsize=capacity)

    def close(self) -> None:
        for q in self._inboxes + self._outboxes:
            # Cancel the feeder-thread join so interpreter shutdown
            # never blocks on a queue a dead shard stopped draining.
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass
