"""The network ingest gateway: capture frames over TCP, not files.

The paper's adversary is geographically distributed — sniffers in the
field, the tracking core elsewhere — so the capture-to-engine hop must
survive the network.  Two halves:

* :class:`FrameIngestServer` — router-side listener accepting framed
  :class:`~repro.net80211.medium.ReceivedFrame` batches
  (:mod:`repro.service.wire` frames, CRC-covered) and feeding them into
  an engine's batch-ingest path.
* :func:`stream_capture_to` — collector-side client streaming any
  :mod:`repro.capture` codec (legacy JSONL or columnar, via
  :func:`repro.sniffer.replay.iter_capture`) to a gateway address.

Delivery is **at-least-once + dedup-by-sequence**: the client numbers
its batches, retains everything unacked, and resends the tail after a
supervised reconnect (:class:`~repro.faults.RetryPolicy`); the server
remembers, per ``client_id``, the last contiguous sequence it ingested
and drops duplicates, so a batch reaches the engine exactly once no
matter how many times the connection dies mid-stream.  The HELLO
exchange returns the server's cumulative count, which is also how a
re-run of the same client id resumes instead of double-ingesting.
"""

from __future__ import annotations

import collections
import select
import socket
import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.faults import ReproError, RetryPolicy
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.service import wire
from repro.service.socketbus import DEFAULT_RECONNECT, _close_socket
from repro.sniffer.replay import iter_capture

PathLike = Union[str, Path]


class _ListBatch:
    """A plain frame list behind the ``FrameBatch`` ingest surface."""

    __slots__ = ("_frames",)

    def __init__(self, frames: List[ReceivedFrame]):
        self._frames = frames

    def __len__(self) -> int:
        return len(self._frames)

    def iter_frames(self):
        return iter(self._frames)


@dataclass
class IngestStats:
    """What one :func:`stream_capture_to` call pushed over the wire."""

    frames: int
    batches: int
    reconnects: int
    batches_resent: int


class FrameIngestServer:
    """TCP listener feeding framed capture batches into an engine.

    ``engine`` is anything with ``ingest_batch`` — a
    :class:`~repro.service.core.ShardedEngine` (the serve CLI's shape)
    or a bare :class:`~repro.engine.StreamingEngine`.  One lock
    serializes ingest across client connections, so concurrent
    collectors interleave at batch granularity, never mid-batch.

    Per-client delivery state (the last contiguous sequence ingested)
    lives for the server's lifetime: a client that reconnects — or a
    rerun of the same ``client_id`` — resumes after what already
    reached the engine.
    """

    def __init__(self, engine, host: str = "127.0.0.1", port: int = 0,
                 hello_timeout_s: float = 5.0,
                 registry: Optional[obs.MetricsRegistry] = None):
        self.engine = engine
        self.hello_timeout_s = hello_timeout_s
        registry = registry if registry is not None else getattr(
            engine, "registry", None) or obs.current_registry()
        self._c_connections = registry.counter(
            "repro.ingest.connections")
        self._c_batches = registry.counter("repro.ingest.batches")
        self._c_frames = registry.counter("repro.ingest.frames")
        self._c_duplicates = registry.counter("repro.ingest.duplicates")
        self._c_rejects = registry.counter("repro.ingest.rejects")
        self._clients: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._conns: List[socket.socket] = []
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.5)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-ingest-accept",
            daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` collectors connect to."""
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _close_socket(self._listener)
        with self._lock:
            conns, self._conns = self._conns, []
        for sock in conns:
            _close_socket(sock)

    def __enter__(self) -> "FrameIngestServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                if self._closed:
                    _close_socket(sock)
                    return
                self._conns.append(sock)
            threading.Thread(target=self._serve_client, args=(sock,),
                             name="repro-ingest-client",
                             daemon=True).start()

    def _serve_client(self, sock: socket.socket) -> None:
        try:
            self._client_session(sock)
        except (ReproError, OSError):
            pass  # the client reconnects and resumes; state is kept
        finally:
            _close_socket(sock)
            with self._lock:
                if sock in self._conns:
                    self._conns.remove(sock)

    def _client_session(self, sock: socket.socket) -> None:
        hello = wire.read_hello(sock, timeout=self.hello_timeout_s)
        client_id = hello.get("client_id")
        if hello.get("role") != "ingest" or not isinstance(client_id,
                                                          str):
            self._c_rejects.inc()
            wire.send_frame(sock, wire.HELLO_REJECT, wire.pack_dict(
                {"reason": "expected an ingest HELLO with a client_id"}))
            return
        with self._lock:
            acked = self._clients.get(client_id, 0)
        wire.send_frame(sock, wire.HELLO_OK,
                        wire.pack_dict({"received": acked}))
        self._c_connections.inc()
        while True:
            ftype, payload = wire.read_frame(sock)
            if ftype == wire.DATA:
                seq, frames = wire.unpack_data(payload)
                with self._lock:
                    acked = self._clients.get(client_id, 0)
                    if seq <= acked:
                        # A resend of something already ingested: the
                        # dedup half of at-least-once.  Re-ack it.
                        self._c_duplicates.inc()
                    elif seq == acked + 1:
                        self.engine.ingest_batch(_ListBatch(frames))
                        self._clients[client_id] = acked = seq
                        self._c_batches.inc()
                        self._c_frames.inc(len(frames))
                    else:
                        # A gap means this connection lost a frame the
                        # client believes it sent; kill it and let the
                        # reconnect resync from the acked count.
                        raise wire.ConnectionLost(
                            f"ingest sequence gap from {client_id!r}: "
                            f"expected {acked + 1}, got {seq}")
                wire.send_frame(sock, wire.CREDIT, wire.pack_count(acked))
            elif ftype == wire.HEARTBEAT:
                with self._lock:
                    acked = self._clients.get(client_id, 0)
                wire.send_frame(sock, wire.HEARTBEAT,
                                wire.pack_dict({"received": acked}))
            elif ftype == wire.BYE:
                # Settle the engine (publish flush + reorder/refit
                # drain) so every streamed frame is visible to readers
                # before the end of stream is acknowledged.
                settle = getattr(self.engine, "drain", None)
                if settle is None:
                    settle = getattr(self.engine, "flush_publishes",
                                     None)
                if settle is not None:
                    settle()
                with self._lock:
                    acked = self._clients.get(client_id, 0)
                wire.send_frame(sock, wire.CREDIT, wire.pack_count(acked))
                return
            else:
                raise wire.WireError(
                    f"unexpected ingest frame type {ftype}")


# ----------------------------------------------------------------------
# Collector-side client
# ----------------------------------------------------------------------

class _IngestSession:
    """Sequence/retention bookkeeping for one streaming client."""

    def __init__(self, address: Tuple[str, int], client_id: str,
                 window: int, reconnect: Dict[str, float],
                 connect_timeout_s: float, ack_timeout_s: float):
        self.address = address
        self.client_id = client_id
        self.window = window
        self.reconnect = reconnect
        self.connect_timeout_s = connect_timeout_s
        self.ack_timeout_s = ack_timeout_s
        self.sock: Optional[socket.socket] = None
        self.seq = 0
        self.acked = 0
        self.sent = 0
        self.max_sent = 0
        self.connects = 0
        self.batches_resent = 0
        self.retained: Deque[Tuple[int, List[ReceivedFrame]]] = \
            collections.deque()

    # -- connection ---------------------------------------------------

    def _connect_once(self) -> None:
        sock = socket.create_connection(self.address,
                                        timeout=self.connect_timeout_s)
        try:
            wire.send_frame(sock, wire.HELLO, wire.pack_dict(
                {"role": "ingest", "client_id": self.client_id}))
            sock.settimeout(self.ack_timeout_s)
            ftype, payload = wire.read_frame(sock)
            if ftype == wire.HELLO_REJECT:
                reason = wire.unpack_dict(payload).get("reason", "?")
                raise wire.HelloRejected(
                    f"gateway rejected ingest: {reason}")
            if ftype != wire.HELLO_OK:
                raise wire.WireError(
                    f"expected HELLO_OK, got frame type {ftype}")
            acked = int(wire.unpack_dict(payload).get("received", 0))
        except BaseException:
            _close_socket(sock)
            raise
        self._absorb(acked)
        self.sent = max(self.acked, min(acked, self.seq))
        self.sock = sock

    def ensure_connected(self) -> None:
        if self.sock is not None:
            return
        policy = RetryPolicy(retryable=(wire.WireError, OSError),
                             **self.reconnect)
        policy.call(self._connect_once)
        self.connects += 1

    def drop(self) -> None:
        if self.sock is not None:
            _close_socket(self.sock)
            self.sock = None

    # -- the at-least-once pump ---------------------------------------

    def _absorb(self, count: int) -> None:
        if count > self.acked:
            self.acked = count
        self._trim_acked()

    def _trim_acked(self) -> None:
        """Drop retained batches the server has already ingested.

        Beyond absorbing fresh acks, this is what makes a *resumed*
        ``client_id`` terminate: batches retained after the connect
        handshake already reported them ingested (a rerun of the same
        capture) will never earn a new ack, so they are dropped here
        instead of waiting for one.
        """
        while self.retained and self.retained[0][0] <= self.acked:
            self.retained.popleft()

    def _pump(self, wait: bool) -> None:
        """Drain server acks; with ``wait``, block until one arrives."""
        while True:
            ready = select.select([self.sock], [], [],
                                  self.ack_timeout_s if wait else 0.0)[0]
            if not ready:
                if wait:
                    raise wire.ConnectionLost(
                        f"no ingest ack within {self.ack_timeout_s}s")
                return
            ftype, payload = wire.read_frame(self.sock)
            if ftype == wire.CREDIT:
                self._absorb(wire.unpack_count(payload))
            elif ftype == wire.HEARTBEAT:
                info = wire.unpack_dict(payload)
                if "received" in info:
                    self._absorb(int(info["received"]))
            else:
                raise wire.WireError(
                    f"unexpected gateway frame type {ftype}")
            wait = False

    def _flush(self) -> None:
        self._trim_acked()
        for seq, frames in list(self.retained):
            if seq <= self.sent:
                continue
            if seq <= self.max_sent:
                self.batches_resent += 1
            wire.send_frame(self.sock, wire.DATA,
                            wire.pack_data(seq, frames))
            self.sent = seq
            if seq > self.max_sent:
                self.max_sent = seq
            self._pump(wait=False)

    def send(self, frames: List[ReceivedFrame]) -> None:
        self.seq += 1
        self.retained.append((self.seq, frames))
        while True:
            # A failed connect exhausts the retry budget and raises out
            # of here; a failure *after* connecting re-enters the
            # supervised reconnect with the retained tail intact.
            self.ensure_connected()
            try:
                self._trim_acked()
                while len(self.retained) > self.window:
                    self._pump(wait=True)
                self._flush()
                return
            except (wire.WireError, OSError):
                self.drop()

    def finish(self) -> None:
        while self.retained:
            self.ensure_connected()
            try:
                self._flush()
                while self.retained:
                    self._pump(wait=True)
            except (wire.WireError, OSError):
                self.drop()
            self._trim_acked()
        if self.sock is not None:
            try:
                wire.send_frame(self.sock, wire.BYE)
                self._pump(wait=True)  # the BYE ack flushes the router
            except (wire.WireError, OSError):
                pass
        self.drop()


def stream_capture_to(path: PathLike, address: Tuple[str, int],
                      batch_records: int = 128,
                      window: int = 8,
                      client_id: Optional[str] = None,
                      device: Optional[Union[MacAddress, str]] = None,
                      format: Optional[str] = None,
                      strict: bool = True,
                      reorder_buffer: int = 256,
                      reconnect: Optional[Dict[str, float]] = None,
                      connect_timeout_s: float = 5.0,
                      ack_timeout_s: float = 30.0) -> IngestStats:
    """Stream a capture file to a :class:`FrameIngestServer`.

    Any codec the :mod:`repro.capture` registry knows replays through
    the usual reorder buffer and goes out in ``batch_records``-sized
    numbered batches, at most ``window`` of them unacked at a time.  A
    dropped connection triggers a supervised reconnect that resumes
    from the server's acked count — nothing is lost, nothing is
    double-ingested (dedup by sequence on the server).

    ``client_id`` names the delivery stream; reusing one against the
    same server resumes it.  Default: a fresh UUID (one-shot stream).
    """
    if batch_records < 1:
        raise ValueError(
            f"batch_records must be >= 1, got {batch_records}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    session = _IngestSession(
        address=tuple(address),
        client_id=client_id if client_id is not None else uuid.uuid4().hex,
        window=window,
        reconnect=dict(DEFAULT_RECONNECT, **(reconnect or {})),
        connect_timeout_s=connect_timeout_s,
        ack_timeout_s=ack_timeout_s)
    frames = 0
    batch: List[ReceivedFrame] = []
    for received in iter_capture(path, reorder_buffer=reorder_buffer,
                                 strict=strict, device=device,
                                 format=format):
        batch.append(received)
        if len(batch) >= batch_records:
            session.send(batch)
            frames += len(batch)
            batch = []
    if batch:
        session.send(batch)
        frames += len(batch)
    session.finish()
    return IngestStats(frames=frames, batches=session.seq,
                       reconnects=max(0, session.connects - 1),
                       batches_resent=session.batches_resent)
