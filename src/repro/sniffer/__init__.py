"""The malicious sniffing system (the attack-phase hardware + software).

Maps the paper's Figure 1 architecture onto code:

* :mod:`repro.sniffer.capture` — sniffer cards (fixed-channel or
  frequency-hopping) fed by one receiver chain, capturing frames off
  the simulated medium,
* :mod:`repro.sniffer.observation` — the capture database: per-mobile
  communicable-AP sets Γ, observation windows, probing statistics,
* :mod:`repro.sniffer.receiver` — factory functions assembling the
  paper's exact receiver chains (HG2415U + RF-Lambda LNA + 4-way
  splitter + SRC cards; the laptop-card baselines),
* :mod:`repro.sniffer.active` — the active attack: spoofed
  deauthentication frames that force silent stations to re-scan,
* :mod:`repro.sniffer.tracker` — device tracks over time and the
  SSID-fingerprint pseudonym linker (Pang et al.).
"""

from repro.sniffer.capture import ChannelHopper, Sniffer, SnifferCard
from repro.sniffer.observation import ObservationStore
from repro.sniffer.receiver import (
    build_dlink_chain,
    build_hg2415u_chain,
    build_marauder_chain,
    build_marauder_sniffer,
    build_src_chain,
)
from repro.sniffer.active import ActiveAttacker
from repro.sniffer.tracker import (
    DeviceTracker,
    PseudonymLinker,
    SequenceNumberLinker,
)
from repro.sniffer.planning import (
    ChannelPlan,
    coverage_of,
    hopping_capture_probability,
    plan_channels,
)
from repro.sniffer.replay import ReplayResult, iter_capture, replay_capture

__all__ = [
    "ChannelPlan",
    "plan_channels",
    "coverage_of",
    "hopping_capture_probability",
    "ReplayResult",
    "replay_capture",
    "iter_capture",
    "SnifferCard",
    "ChannelHopper",
    "Sniffer",
    "ObservationStore",
    "build_marauder_chain",
    "build_marauder_sniffer",
    "build_hg2415u_chain",
    "build_src_chain",
    "build_dlink_chain",
    "ActiveAttacker",
    "DeviceTracker",
    "PseudonymLinker",
    "SequenceNumberLinker",
]
