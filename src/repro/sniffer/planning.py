"""Channel planning for the sniffing system.

The paper works through this decision (Section III-B1, IV-A): 11
overlapping channels, cross-channel decoding ruled out by the Fig 9
experiment, "a total of 11 cards ... not only incurs significant cost
... but also reduces the mobility", so they measure the channel
distribution and pick 1/6/11 (93.7 % of APs) for three cards.

:func:`plan_channels` automates exactly that: given a measured channel
histogram and a card budget, return the channel set maximizing the
share of AP traffic captured.  :func:`hopping_capture_probability`
quantifies the alternative (one hopping card) used in the feasibility
study: the chance of catching a periodic probe burst given dwell and
cycle times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.radio.channels import CHANNELS_80211BG


@dataclass(frozen=True)
class ChannelPlan:
    """The chosen monitoring channels and their expected coverage."""

    channels: Tuple[int, ...]
    covered_fraction: float
    histogram_total: int

    def describe(self) -> str:
        channel_list = ", ".join(str(c) for c in self.channels)
        return (f"monitor channels [{channel_list}] -> "
                f"{100 * self.covered_fraction:.1f}% of AP population")


def plan_channels(histogram: Dict[int, int], cards: int) -> ChannelPlan:
    """Pick the ``cards`` channels covering the most APs.

    Cross-channel decoding contributes essentially nothing (Fig 9), so
    coverage is simply the histogram mass on the chosen channels; the
    greedy top-k choice is optimal.  Ties break toward lower channel
    numbers for determinism.
    """
    if cards < 1:
        raise ValueError(f"cards must be >= 1, got {cards}")
    for channel in histogram:
        if channel not in CHANNELS_80211BG:
            raise ValueError(f"unknown 802.11b/g channel {channel}")
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("empty channel histogram")
    ranked = sorted(histogram.items(), key=lambda item: (-item[1], item[0]))
    chosen = tuple(sorted(channel for channel, _ in ranked[:cards]))
    covered = sum(histogram.get(channel, 0) for channel in chosen)
    return ChannelPlan(channels=chosen,
                       covered_fraction=covered / total,
                       histogram_total=total)


def coverage_of(histogram: Dict[int, int],
                channels: Sequence[int]) -> float:
    """Fraction of the AP population on the given channels."""
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("empty channel histogram")
    return sum(histogram.get(channel, 0) for channel in channels) / total


def hopping_capture_probability(dwell_s: float, cycle_s: float,
                                burst_span_s: float = 0.5,
                                bursts: int = 1) -> float:
    """Chance a hopping card catches at least one of ``bursts`` probe
    bursts on a given channel.

    A burst spanning ``burst_span_s`` is caught when it overlaps the
    card's dwell on that channel: per-burst probability
    ``min(1, (dwell + burst_span) / cycle)``; bursts are treated as
    independent (they are minutes apart).  This is the trade the
    feasibility experiment made: one card, 4 s dwell, 11-channel cycle
    — fine over a 7-day capture, hopeless for real-time tracking.
    """
    if dwell_s <= 0.0 or cycle_s <= 0.0 or dwell_s > cycle_s:
        raise ValueError("need 0 < dwell <= cycle")
    if burst_span_s < 0.0 or bursts < 1:
        raise ValueError("need burst_span >= 0 and bursts >= 1")
    per_burst = min(1.0, (dwell_s + burst_span_s) / cycle_s)
    return 1.0 - (1.0 - per_burst) ** bursts
