"""The active attack: forcing silent devices to probe.

Passive capture only sees devices that scan on their own (>50 % daily in
the paper's 7-day study).  For the rest, the paper proposes an active
attack: make the device transmit.  The canonical mechanism — and the
one we implement — is spoofed *deauthentication*: a frame forged in the
name of the victim's AP knocks the station off its association, and
every real OS immediately re-scans (emitting probe requests the sniffer
can capture) to reconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.geometry.point import Point
from repro.net80211.frames import Dot11Frame, deauthentication
from repro.net80211.mac import BROADCAST_MAC, MacAddress

#: (station MAC, association BSSID, AP channel) — what the attacker must
#: know to forge a believable deauthentication.
Association = Tuple[MacAddress, MacAddress, int]


@dataclass
class ActiveAttacker:
    """Crafts spoofed deauthentication frames.

    The attacker learns associations from captured traffic (data frames
    reveal station↔BSSID pairs) and forges deauths *from the AP* so the
    station accepts them.  ``tx_power_dbm`` reflects that the attack
    transmitter also benefits from a high-gain antenna.
    """

    position: Point
    tx_power_dbm: float = 20.0
    tx_antenna_gain_dbi: float = 15.0
    frames_sent: int = field(default=0, init=False)

    def craft_deauths(self, associations: Iterable[Association],
                      now: float) -> List[Dot11Frame]:
        """One spoofed deauthentication per known association."""
        frames: List[Dot11Frame] = []
        for station, bssid, channel in associations:
            frame = deauthentication(
                source=bssid,  # forged: pretends to be the AP
                destination=station,
                bssid=bssid,
                channel=channel,
                timestamp=now,
                tx_power_dbm=self.tx_power_dbm,
            )
            frame = self._with_gain(frame)
            frames.append(frame)
        self.frames_sent += len(frames)
        return frames

    def craft_broadcast_deauth(self, bssid: MacAddress, channel: int,
                               now: float) -> Dot11Frame:
        """A broadcast deauthentication: knocks every client of one AP.

        Broadcast deauths reach stations the attacker has not yet
        identified individually — the bluntest form of the attack.
        """
        frame = deauthentication(
            source=bssid,
            destination=BROADCAST_MAC,
            bssid=bssid,
            channel=channel,
            timestamp=now,
            tx_power_dbm=self.tx_power_dbm,
        )
        self.frames_sent += 1
        return self._with_gain(frame)

    def _with_gain(self, frame: Dot11Frame) -> Dot11Frame:
        from dataclasses import replace
        return replace(frame, tx_antenna_gain_dbi=self.tx_antenna_gain_dbi)
