"""Sniffer cards and the capture front-end.

A :class:`Sniffer` is one receiver chain feeding several cards (through
the splitter), each card pinned to a channel or driven by a
:class:`ChannelHopper` (the feasibility experiment's "frequency hopping
... with a dwell time of 4 seconds").  Every frame transmitted in the
simulated world is offered to the sniffer; the medium and decode model
decide what is actually captured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.geometry.point import Point
from repro.net80211.frames import Dot11Frame
from repro.net80211.medium import Medium, ReceivedFrame
from repro.radio.chain import ReceiverChain
from repro.sniffer.observation import ObservationStore


@dataclass
class ChannelHopper:
    """Cycles through channels with a fixed dwell time."""

    channels: Sequence[int]
    dwell_s: float = 4.0
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("hopper needs at least one channel")
        if self.dwell_s <= 0.0:
            raise ValueError(f"dwell must be > 0 s, got {self.dwell_s}")

    def channel_at(self, time_s: float) -> int:
        """The channel the card listens on at ``time_s``."""
        slot = int((time_s + self.offset_s) // self.dwell_s)
        return self.channels[slot % len(self.channels)]

    def cycle_s(self) -> float:
        """Time to sweep all channels once."""
        return self.dwell_s * len(self.channels)


@dataclass
class SnifferCard:
    """One wireless card: a fixed channel or a hopping schedule."""

    chain: ReceiverChain
    channel: Union[int, ChannelHopper]
    label: str = ""

    def channel_at(self, time_s: float) -> int:
        if isinstance(self.channel, ChannelHopper):
            return self.channel.channel_at(time_s)
        return self.channel


@dataclass
class Sniffer:
    """The full capture system at a fixed vantage point.

    ``hear`` offers a transmitted frame to every card; the first card
    that decodes it contributes the capture (duplicate decodes across
    cards are collapsed, as a real multi-card rig would dedupe on
    frame identity).

    Captures can be retained in memory (``keep_frames``) and/or
    streamed to a capture file via :meth:`attach_writer` — the
    tcpdump-style record-now-analyze-later workflow of the paper's
    feasibility study.
    """

    position: Point
    cards: List[SnifferCard]
    medium: Medium
    store: ObservationStore = field(default_factory=ObservationStore)
    keep_frames: bool = False
    captured: List[ReceivedFrame] = field(default_factory=list)
    _writer: Optional[object] = field(default=None, repr=False)

    def attach_writer(self, writer) -> None:
        """Stream every capture to a capture writer (any codec from
        :func:`repro.capture.make_capture_writer`)."""
        self._writer = writer

    def detach_writer(self) -> None:
        self._writer = None

    def hear(self, frame: Dot11Frame, tx_position: Point,
             rng: np.random.Generator) -> Optional[ReceivedFrame]:
        """Offer one on-air frame to the sniffer; return any capture."""
        for card in self.cards:
            rx_channel = card.channel_at(frame.timestamp)
            received = self.medium.deliver(frame, tx_position,
                                           self.position, card.chain,
                                           rx_channel, rng)
            if received is not None:
                self.store.ingest(received)
                if self.keep_frames:
                    self.captured.append(received)
                if self._writer is not None:
                    self._writer.write(received)
                return received
        return None

    def channels_at(self, time_s: float) -> List[int]:
        """The set of channels currently monitored."""
        return [card.channel_at(time_s) for card in self.cards]
