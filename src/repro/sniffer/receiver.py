"""Factory functions for the paper's receiver chains.

Builds the exact configurations of the paper's Figure 12:

* ``DLink``   — a D-Link DWL-G650 card with its internal antenna,
* ``SRC``     — a Ubiquiti SRC card with the 4 dBi clip-mount antenna,
* ``HG2415U`` — the 15 dBi HyperLink antenna straight into an SRC card,
* ``LNA``     — the full Marauder's-map chain: HG2415U antenna,
  RF-Lambda LNA, 4-way splitter, SRC cards,

plus :func:`build_marauder_sniffer`, which assembles the deployed
system: the LNA chain split into three cards monitoring channels
1, 6, and 11 ("most APs (93.7%) use Channels 1, 6 and 11. So we chose to
use three cards ... to monitor these three channels").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.geometry.point import Point
from repro.net80211.medium import Medium
from repro.radio.chain import ReceiverChain
from repro.radio.components import catalog
from repro.sniffer.capture import Sniffer, SnifferCard
from repro.sniffer.observation import ObservationStore

#: The channels the deployed system monitors.
DEFAULT_MONITOR_CHANNELS = (1, 6, 11)


def build_dlink_chain() -> ReceiverChain:
    """The stock-laptop baseline: DWL-G650 with its internal antenna."""
    parts = catalog()
    return ReceiverChain(antenna=parts["DLink-antenna"],
                         nic=parts["DLink"], blocks=[], name="DLink")


def build_src_chain() -> ReceiverChain:
    """SRC card with the tri-band 4 dBi clip-mount antenna."""
    parts = catalog()
    return ReceiverChain(antenna=parts["SRC-clip-antenna"],
                         nic=parts["SRC"], blocks=[], name="SRC")


def build_hg2415u_chain() -> ReceiverChain:
    """15 dBi HyperLink antenna directly into an SRC card (no LNA)."""
    parts = catalog()
    return ReceiverChain(antenna=parts["HG2415U"], nic=parts["SRC"],
                         blocks=[], name="HG2415U")


def build_marauder_chain() -> ReceiverChain:
    """The full chain: HG2415U + RF-Lambda LNA + 4-way splitter + SRC.

    This is one splitter output's view; :func:`build_marauder_sniffer`
    instantiates one card per monitored channel behind the same chain.
    """
    parts = catalog()
    return ReceiverChain(
        antenna=parts["HG2415U"],
        nic=parts["SRC"],
        blocks=[parts["RF-Lambda-LNA"], parts["4-way-splitter"]],
        name="LNA",
    )


def build_marauder_sniffer(
    position: Point,
    medium: Medium,
    channels: Sequence[int] = DEFAULT_MONITOR_CHANNELS,
    store: Optional[ObservationStore] = None,
    keep_frames: bool = False,
) -> Sniffer:
    """Assemble the deployed digital-Marauder's-map sniffer.

    One antenna + LNA + splitter feeding ``len(channels)`` cards (the
    paper deploys three on channels 1/6/11; the fourth splitter output
    is spare).
    """
    chain = build_marauder_chain()
    if len(channels) > chain.split_outputs():
        raise ValueError(
            f"chain provides {chain.split_outputs()} splitter outputs, "
            f"cannot feed {len(channels)} cards")
    cards = [SnifferCard(chain=chain, channel=channel,
                         label=f"NIC-ch{channel}")
             for channel in channels]
    return Sniffer(position=position, cards=cards, medium=medium,
                   store=store or ObservationStore(),
                   keep_frames=keep_frames)
