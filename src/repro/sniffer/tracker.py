"""Device tracking over time and pseudonym linking.

The Marauder's map is a *tracking* system, not a one-shot locator: it
maintains a per-device track of timestamped location estimates
(:class:`DeviceTracker`), which the display renders as moving tags.

For devices that randomize their MAC, the paper points to Pang et
al. [13]: "many implicit identifiers such as network names in probing
traffic may break those pseudonyms.  Combined with their schemes, the
digital Marauder's map can also track a victim in case pseudo-mac
addresses are used."  :class:`PseudonymLinker` implements that scheme's
core: probe bursts are grouped by the fingerprint of the directed-SSID
set, so different MACs leaking the same preferred-network list collapse
into one logical device.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.geometry.point import Point
from repro.localization.base import LocalizationEstimate
from repro.net80211.frames import Dot11Frame, FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid


@dataclass(frozen=True)
class TrackPoint:
    """One timestamped location estimate for one device."""

    timestamp: float
    estimate: LocalizationEstimate


class DeviceTracker:
    """Per-device tracks of location estimates."""

    def __init__(self):
        self._tracks: Dict[MacAddress, List[TrackPoint]] = defaultdict(list)

    def record(self, mobile: MacAddress, timestamp: float,
               estimate: LocalizationEstimate) -> None:
        """Append an estimate to a device's track (monotonic time)."""
        track = self._tracks[mobile]
        if track and timestamp < track[-1].timestamp:
            raise ValueError(
                f"timestamps must be non-decreasing per device: "
                f"{timestamp} < {track[-1].timestamp}")
        track.append(TrackPoint(timestamp, estimate))

    def track_of(self, mobile: MacAddress) -> List[TrackPoint]:
        return list(self._tracks.get(mobile, []))

    def devices(self) -> List[MacAddress]:
        return sorted(self._tracks.keys())

    def latest(self, mobile: MacAddress) -> Optional[TrackPoint]:
        track = self._tracks.get(mobile)
        return track[-1] if track else None

    def path_of(self, mobile: MacAddress) -> List[Point]:
        """The estimated positions, in time order."""
        return [point.estimate.position
                for point in self._tracks.get(mobile, [])]

    def total_estimates(self) -> int:
        return sum(len(track) for track in self._tracks.values())


class SequenceNumberLinker:
    """Links pseudonyms through 802.11 sequence-number continuity.

    The 12-bit sequence counter lives in the NIC, not the MAC: a naive
    pseudonym rotation keeps counting where the old identity stopped.
    When MAC B's first frames pick up (modulo 4096) within
    ``max_gap`` of where MAC A's stopped — and B appears within
    ``max_silence_s`` of A's disappearance — the two are linked.  This
    is the second implicit identifier of Pang et al.; the defense is to
    reset the counter on rotation.
    """

    def __init__(self, max_gap: int = 64, max_silence_s: float = 120.0):
        if max_gap < 1:
            raise ValueError(f"max_gap must be >= 1, got {max_gap}")
        if max_silence_s <= 0.0:
            raise ValueError(
                f"max_silence_s must be > 0, got {max_silence_s}")
        self.max_gap = max_gap
        self.max_silence_s = max_silence_s
        # mac -> (first_ts, first_seq, last_ts, last_seq)
        self._spans: Dict[MacAddress, Tuple[float, int, float, int]] = {}

    def ingest(self, frame: Dot11Frame) -> None:
        """Record one frame's (source, sequence, timestamp)."""
        if frame.frame_type is not FrameType.PROBE_REQUEST:
            return
        span = self._spans.get(frame.source)
        if span is None:
            self._spans[frame.source] = (frame.timestamp, frame.sequence,
                                         frame.timestamp, frame.sequence)
        else:
            first_ts, first_seq, _, _ = span
            self._spans[frame.source] = (first_ts, first_seq,
                                         frame.timestamp, frame.sequence)

    def linked_pairs(self) -> List[Tuple[MacAddress, MacAddress]]:
        """(predecessor, successor) pseudonym pairs by continuity."""
        pairs: List[Tuple[MacAddress, MacAddress]] = []
        spans = sorted(self._spans.items(), key=lambda kv: kv[1][0])
        for i, (mac_a, span_a) in enumerate(spans):
            _, _, last_ts_a, last_seq_a = span_a
            for mac_b, span_b in spans[i + 1:]:
                first_ts_b, first_seq_b, _, _ = span_b
                if first_ts_b < last_ts_a:
                    continue  # overlapping lifetimes: different devices
                if first_ts_b - last_ts_a > self.max_silence_s:
                    continue
                gap = (first_seq_b - last_seq_a) % 4096
                if 0 < gap <= self.max_gap:
                    pairs.append((mac_a, mac_b))
        return pairs

    def chains(self) -> List[List[MacAddress]]:
        """Maximal pseudonym chains built from the linked pairs."""
        successor: Dict[MacAddress, MacAddress] = {}
        has_predecessor: Set[MacAddress] = set()
        for predecessor, succ in self.linked_pairs():
            # Keep the tightest (first-found, time-ordered) successor.
            if predecessor not in successor:
                successor[predecessor] = succ
                has_predecessor.add(succ)
        chains: List[List[MacAddress]] = []
        for mac in self._spans:
            if mac in has_predecessor:
                continue
            chain = [mac]
            while chain[-1] in successor:
                chain.append(successor[chain[-1]])
            if len(chain) > 1:
                chains.append(chain)
        return chains


class PseudonymLinker:
    """Links randomized MACs through preferred-network fingerprints.

    Feed it every captured probe request; it accumulates, per source
    MAC, the set of directed SSIDs, and groups MACs whose fingerprints
    match.  Only locally-administered ("pseudonym-looking") MACs with a
    non-empty directed-SSID set participate in linking — a globally
    administered MAC is already a stable identifier.
    """

    def __init__(self):
        self._ssids_by_mac: Dict[MacAddress, Set[Ssid]] = defaultdict(set)
        self._macs_seen: List[MacAddress] = []

    def ingest(self, frame: Dot11Frame) -> None:
        """Record one probe request (other frame types are ignored)."""
        if frame.frame_type is not FrameType.PROBE_REQUEST:
            return
        if frame.source not in self._ssids_by_mac:
            self._macs_seen.append(frame.source)
            self._ssids_by_mac[frame.source]  # create entry
        if not frame.ssid.is_wildcard:
            self._ssids_by_mac[frame.source].add(frame.ssid)

    def fingerprint_of(self, mac: MacAddress) -> Optional[str]:
        """The SSID-set fingerprint for a MAC (None if nothing leaked)."""
        ssids = self._ssids_by_mac.get(mac)
        if not ssids:
            return None
        return Ssid.fingerprint(ssids)

    def linked_groups(self) -> List[List[MacAddress]]:
        """Groups of pseudonym MACs believed to be the same device.

        Each group shares one fingerprint; singleton groups (a
        fingerprint seen under only one MAC) are included, since they
        still name a logical device.
        """
        by_fingerprint: Dict[str, List[MacAddress]] = defaultdict(list)
        for mac in self._macs_seen:
            if not mac.is_locally_administered:
                continue
            fingerprint = self.fingerprint_of(mac)
            if fingerprint is not None:
                by_fingerprint[fingerprint].append(mac)
        return [group for _, group in sorted(by_fingerprint.items())]

    def logical_identity(self, mac: MacAddress) -> Tuple[str, str]:
        """A stable (kind, id) pair for a MAC.

        Globally-administered MACs identify themselves; pseudonyms with
        a leaked preferred-network list map to their fingerprint;
        anything else falls back to the MAC.
        """
        if not mac.is_locally_administered:
            return ("mac", str(mac))
        fingerprint = self.fingerprint_of(mac)
        if fingerprint is not None:
            return ("fingerprint", fingerprint)
        return ("mac", str(mac))
