"""Offline replay: run the attack from a recorded capture file.

The paper's pipeline separates capture from analysis ("The extracted
information is then stored in a database.  ... the adversary uses our
proposed M-Loc and AP-Rad algorithm ...").  Replay rebuilds the
observation database from a capture file (written by
:class:`repro.net80211.capture_file.CaptureWriter`) so localization can
run long after the antenna came down — the tcpdump-then-analyze
workflow of the feasibility study.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.capture_file import CaptureReader
from repro.net80211.mac import MacAddress
from repro.sniffer.observation import ObservationStore
from repro.sniffer.tracker import PseudonymLinker

PathLike = Union[str, Path]


@dataclass
class ReplayResult:
    """Everything reconstructed from one capture file."""

    store: ObservationStore
    linker: PseudonymLinker
    frames_replayed: int

    @property
    def mobiles(self) -> Set[MacAddress]:
        return self.store.seen_mobiles

    def locate_all(self, localizer: Localizer
                   ) -> Dict[MacAddress, Optional[LocalizationEstimate]]:
        """Run a localizer over every mobile's all-time Γ."""
        estimates: Dict[MacAddress, Optional[LocalizationEstimate]] = {}
        for mobile, gamma in self.store.all_observations().items():
            estimates[mobile] = localizer.locate(gamma)
        return estimates


def replay_capture(path: PathLike,
                   window_s: float = 30.0) -> ReplayResult:
    """Rebuild the observation database from a capture file."""
    store = ObservationStore(window_s=window_s)
    linker = PseudonymLinker()
    count = 0
    for received in CaptureReader(path):
        store.ingest(received)
        linker.ingest(received.frame)
        count += 1
    return ReplayResult(store=store, linker=linker, frames_replayed=count)
