"""Offline replay: run the attack from a recorded capture file.

The paper's pipeline separates capture from analysis ("The extracted
information is then stored in a database.  ... the adversary uses our
proposed M-Loc and AP-Rad algorithm ...").  Replay rebuilds the
observation database from a capture file (any format the
:mod:`repro.capture` codec registry knows — legacy JSONL or the
columnar block store) so localization can run long after the antenna
came down — the tcpdump-then-analyze workflow of the feasibility
study.

Two replay surfaces:

* :func:`iter_capture` — record-at-a-time :class:`ReceivedFrame`
  iteration through a reorder buffer, for consumers built on
  ``StreamingEngine.ingest``;
* :func:`iter_capture_batches` — whole :class:`FrameBatch` slices
  (zero-copy for columnar captures), for the vectorized
  ``StreamingEngine.ingest_batch`` hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Set, Union

from repro import faults, obs
from repro.capture import FrameBatch, open_capture
from repro.engine.reorder import ReorderBuffer
from repro.faults import DROPPED, CaptureError
from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.sniffer.observation import ObservationStore
from repro.sniffer.tracker import PseudonymLinker

PathLike = Union[str, Path]


def iter_capture(path: PathLike,
                 reorder_buffer: int = 256,
                 strict: bool = True,
                 device: Optional[Union[MacAddress, str]] = None,
                 format: Optional[str] = None) -> Iterator[ReceivedFrame]:
    """Yield a capture's frames in rx-timestamp order, streaming.

    The streaming engine's ingest path consumes this: memory stays
    O(``reorder_buffer``) regardless of capture size, unlike
    :func:`replay_capture`-era list materialization.  Multi-card
    captures interleave channels, so records can be locally out of
    order; a bounded min-heap look-ahead restores timestamp order
    exactly whenever no record is displaced by more than
    ``reorder_buffer`` positions.  ``reorder_buffer=0`` yields file
    order unchanged.

    ``strict=False`` skips (and counts, under
    ``repro.sniffer.replay.skipped``) malformed capture records instead
    of raising :class:`~repro.faults.CaptureError` on the first one —
    the right posture for week-long field captures.

    ``device`` restricts replay to records mentioning one MAC; on
    columnar captures the per-block bloom filters skip whole blocks
    (``repro.capture.blocks_skipped``) without touching their bytes.
    ``format`` pins a codec; default sniffs the file.
    """
    if reorder_buffer < 0:
        raise ValueError(
            f"reorder_buffer must be >= 0, got {reorder_buffer}")
    # Resolved at generator start, not per frame: replay counts flow to
    # whichever registry is routed when iteration begins (the engine's,
    # when this feeds StreamingEngine.run).
    registry = obs.current_registry()
    frames = registry.counter("repro.sniffer.replay.frames")
    skips = registry.counter("repro.sniffer.replay.skipped")
    reader = open_capture(
        path, format=format, strict=strict, device=device,
        on_skip=lambda line_number, reason: skips.inc())

    def records() -> Iterator[ReceivedFrame]:
        for received in reader:
            # Fault-injection seam: a spec on ``capture.record`` can
            # drop or corrupt records to exercise the lenient path.
            received = faults.hook("capture.record", received)
            if received is DROPPED:
                skips.inc()
                continue
            if not isinstance(received, ReceivedFrame):
                if strict:
                    raise CaptureError(
                        f"corrupt capture record: {received!r}")
                skips.inc()
                continue
            frames.inc()
            yield received

    buffer: ReorderBuffer[ReceivedFrame] = ReorderBuffer(reorder_buffer)
    for received in records():
        yield from buffer.push(received.rx_timestamp, received)
    yield from buffer.drain()


def iter_capture_batches(path: PathLike,
                         batch_records: Optional[int] = None,
                         strict: bool = True,
                         device: Optional[Union[MacAddress, str]] = None,
                         format: Optional[str] = None,
                         start_ts: Optional[float] = None,
                         end_ts: Optional[float] = None
                         ) -> Iterator[FrameBatch]:
    """Yield a capture as :class:`FrameBatch` slices, block order.

    The batch counterpart of :func:`iter_capture`, feeding
    ``StreamingEngine.ingest_batch``: columnar captures hand out
    zero-copy views of the memory-mapped file; JSONL captures decode
    into batches so both formats drive the same engine path.  No
    reorder buffer runs here — batch replay assumes a sorted (written
    in order, or compacted) capture; unsorted columnar blocks are
    sorted per block on read.  The per-record fault-injection seam
    (``capture.record``) also does not apply on this path.

    ``device``/``start_ts``/``end_ts`` push down into the codec, where
    the columnar reader's bloom filters and time index skip whole
    blocks.
    """
    registry = obs.current_registry()
    frames = registry.counter("repro.sniffer.replay.frames")
    reader = open_capture(path, format=format, strict=strict)
    iter_batches = getattr(reader, "iter_batches", None)
    if iter_batches is None:
        raise CaptureError(
            f"capture codec {getattr(reader, 'format', '?')!r} has no "
            "batch replay support")
    for batch in iter_batches(batch_records=batch_records, device=device,
                              start_ts=start_ts, end_ts=end_ts):
        frames.inc(len(batch))
        yield batch


@dataclass
class ReplayResult:
    """Everything reconstructed from one capture file."""

    store: ObservationStore
    linker: PseudonymLinker
    frames_replayed: int

    @property
    def mobiles(self) -> Set[MacAddress]:
        return self.store.seen_mobiles

    def locate_all(self, localizer: Localizer
                   ) -> Dict[MacAddress, Optional[LocalizationEstimate]]:
        """Run a localizer over every mobile's all-time Γ."""
        estimates: Dict[MacAddress, Optional[LocalizationEstimate]] = {}
        for mobile, gamma in self.store.all_observations().items():
            estimates[mobile] = localizer.locate(gamma)
        return estimates


def replay_capture(path: PathLike,
                   window_s: float = 30.0,
                   strict: bool = True) -> ReplayResult:
    """Rebuild the observation database from a capture file."""
    store = ObservationStore(window_s=window_s)
    linker = PseudonymLinker()
    count = 0
    for received in iter_capture(path, strict=strict):
        store.ingest(received)
        linker.ingest(received.frame)
        count += 1
    return ReplayResult(store=store, linker=linker, frames_replayed=count)
