"""The sniffer's capture database.

"Each thread of wireless signal is captured by a wireless card, which
processes and extracts useful information such as SSIDs and AP MAC
addresses from the recorded packets ... The extracted information is
then stored in a database."

The store answers the three questions the attack needs:

* Γ(mobile) — which APs has this mobile communicated with?  Fed by
  probe responses (an AP answering the mobile proves two-way
  communicability) and association traffic.
* observation windows — Γ per time window, which is the AP-Rad corpus:
  co-observation "within a short period of time" is evidence that the
  radii overlap, so windows must be short relative to mobility.
* probing statistics — which mobiles were seen at all, and which sent
  probe requests (the Fig 10/11 feasibility numbers).
The store persists to JSON (:meth:`ObservationStore.save` /
:meth:`ObservationStore.load`) — Figure 1's "stored in a database"
component, so long captures survive across analysis sessions.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.net80211.frames import FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ObservationWindow:
    """Γ for one mobile in one time window."""

    mobile: MacAddress
    window_start: float
    observed: FrozenSet[MacAddress]


class ObservationStore:
    """Accumulates (mobile, AP, time) communication evidence.

    Parameters
    ----------
    window_s:
        Width of the co-observation window.  Two APs seen from the same
        mobile within one window are treated as co-observed for the
        AP-Rad linear program.
    """

    def __init__(self, window_s: float = 30.0):
        if window_s <= 0.0:
            raise ValueError(f"window must be > 0 s, got {window_s}")
        self.window_s = window_s
        # mobile -> ap -> list of observation times
        self._events: Dict[MacAddress, Dict[MacAddress, List[float]]] = (
            defaultdict(lambda: defaultdict(list)))
        self._probing_mobiles: Set[MacAddress] = set()
        self._seen_mobiles: Set[MacAddress] = set()
        self._known_aps: Set[MacAddress] = set()
        # mobile -> (bssid, channel) learned from data frames — the
        # associations a targeted deauthentication attack needs.
        self._associations: Dict[MacAddress,
                                 Tuple[MacAddress, int]] = {}
        self._frame_count = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, received: ReceivedFrame) -> None:
        """Extract communicability evidence from one captured frame."""
        frame = received.frame
        self._frame_count += 1
        if frame.frame_type is FrameType.PROBE_REQUEST:
            self._seen_mobiles.add(frame.source)
            self._probing_mobiles.add(frame.source)
            return
        if frame.frame_type in (FrameType.PROBE_RESPONSE,
                                FrameType.ASSOCIATION_RESPONSE):
            # AP -> mobile: proof the pair can communicate.
            if frame.bssid is None:
                return
            mobile = frame.destination
            if mobile.is_multicast:
                return
            self._seen_mobiles.add(mobile)
            self._known_aps.add(frame.bssid)
            self._events[mobile][frame.bssid].append(received.rx_timestamp)
            if frame.frame_type is FrameType.ASSOCIATION_RESPONSE:
                # The handshake completion reveals the association the
                # targeted deauth attack needs.
                self._associations[mobile] = (frame.bssid, frame.channel)
            return
        if frame.frame_type is FrameType.BEACON:
            self._known_aps.add(frame.source)
            return
        if frame.frame_type is FrameType.DATA and frame.bssid is not None:
            # Data to/from an AP also proves communicability — and
            # reveals the association the active attack can target.
            mobile = (frame.source if frame.source != frame.bssid
                      else frame.destination)
            if mobile.is_multicast:
                return
            self._seen_mobiles.add(mobile)
            self._known_aps.add(frame.bssid)
            self._events[mobile][frame.bssid].append(received.rx_timestamp)
            self._associations[mobile] = (frame.bssid, frame.channel)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def frame_count(self) -> int:
        return self._frame_count

    @property
    def seen_mobiles(self) -> Set[MacAddress]:
        """All mobiles observed at all (probing or via AP replies)."""
        return set(self._seen_mobiles)

    @property
    def probing_mobiles(self) -> Set[MacAddress]:
        """Mobiles that sent at least one probe request."""
        return set(self._probing_mobiles)

    @property
    def observed_aps(self) -> Set[MacAddress]:
        return set(self._known_aps)

    def known_associations(self) -> List[Tuple[MacAddress, MacAddress,
                                               int]]:
        """(station, BSSID, channel) triples learned from data frames.

        Exactly the input the targeted deauthentication attack needs
        (see :class:`repro.sniffer.active.ActiveAttacker`).
        """
        return [(mobile, bssid, channel)
                for mobile, (bssid, channel)
                in sorted(self._associations.items())]

    def probing_fraction(self) -> float:
        """Fraction of seen mobiles that probed (the Fig 11 metric)."""
        if not self._seen_mobiles:
            return 0.0
        return len(self._probing_mobiles) / len(self._seen_mobiles)

    def gamma(self, mobile: MacAddress,
              at_time: Optional[float] = None) -> Set[MacAddress]:
        """Γ for a mobile: all-time, or restricted to one window.

        With ``at_time`` given, only APs observed within ``window_s`` of
        that instant count — the form the localization of a *moving*
        device needs.
        """
        events = self._events.get(mobile)
        if not events:
            return set()
        if at_time is None:
            return set(events.keys())
        half = self.window_s / 2.0
        return {
            ap for ap, times in events.items()
            if any(abs(t - at_time) <= half for t in times)
        }

    def all_observations(self) -> Dict[MacAddress, Set[MacAddress]]:
        """All-time Γ for every mobile with AP evidence."""
        return {mobile: set(events.keys())
                for mobile, events in self._events.items() if events}

    def windows(self) -> List[ObservationWindow]:
        """Γ per (mobile, time-window) — the AP-Rad observation corpus.

        Windows are aligned to multiples of ``window_s``; a mobile
        observed in three windows yields three corpus entries, so a
        device walking across campus contributes co-observation evidence
        only between APs it saw *near-simultaneously*.
        """
        grouped: Dict[Tuple[MacAddress, int], Set[MacAddress]] = (
            defaultdict(set))
        for mobile, events in self._events.items():
            for ap, times in events.items():
                for timestamp in times:
                    bucket = int(math.floor(timestamp / self.window_s))
                    grouped[(mobile, bucket)].add(ap)
        return [
            ObservationWindow(mobile=mobile,
                              window_start=bucket * self.window_s,
                              observed=frozenset(aps))
            for (mobile, bucket), aps in sorted(
                grouped.items(), key=lambda item: (item[0][1], item[0][0]))
        ]

    def corpus(self) -> List[Set[MacAddress]]:
        """The bare Γ sets of :meth:`windows` (AP-Rad's input shape)."""
        return [set(window.observed) for window in self.windows()]

    def merge(self, other: "ObservationStore") -> None:
        """Fold another store's evidence into this one.

        Supports multi-vantage deployments (a future-work extension of
        the paper's single-antenna design): each sniffer accumulates
        its own store and the analysis side merges them — Γ sets union,
        probing/seen sets union, newest association wins.
        """
        for mobile, events in other._events.items():
            for ap, times in events.items():
                self._events[mobile][ap].extend(times)
        self._probing_mobiles |= other._probing_mobiles
        self._seen_mobiles |= other._seen_mobiles
        self._known_aps |= other._known_aps
        self._associations.update(other._associations)
        self._frame_count += other._frame_count

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the full store to JSON-compatible types."""
        return {
            "window_s": self.window_s,
            "events": {
                str(mobile): {str(ap): times
                              for ap, times in events.items()}
                for mobile, events in self._events.items()
            },
            "probing": sorted(str(m) for m in self._probing_mobiles),
            "seen": sorted(str(m) for m in self._seen_mobiles),
            "aps": sorted(str(a) for a in self._known_aps),
            "associations": {
                str(mobile): [str(bssid), channel]
                for mobile, (bssid, channel)
                in self._associations.items()
            },
            "frame_count": self._frame_count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObservationStore":
        """Rebuild a store serialized by :meth:`to_dict`."""
        store = cls(window_s=float(data["window_s"]))
        for mobile_text, events in data.get("events", {}).items():
            mobile = MacAddress.parse(mobile_text)
            for ap_text, times in events.items():
                ap = MacAddress.parse(ap_text)
                store._events[mobile][ap] = [float(t) for t in times]
        store._probing_mobiles = {
            MacAddress.parse(m) for m in data.get("probing", [])}
        store._seen_mobiles = {
            MacAddress.parse(m) for m in data.get("seen", [])}
        store._known_aps = {
            MacAddress.parse(a) for a in data.get("aps", [])}
        store._associations = {
            MacAddress.parse(mobile): (MacAddress.parse(bssid),
                                       int(channel))
            for mobile, (bssid, channel)
            in data.get("associations", {}).items()
        }
        store._frame_count = int(data.get("frame_count", 0))
        return store

    def save(self, path: PathLike) -> None:
        """Write the store to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict()),
                              encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "ObservationStore":
        """Read a store written by :meth:`save`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)
