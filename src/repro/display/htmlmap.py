"""Standalone HTML wrapper for the Marauder's-map SVG."""

from __future__ import annotations

import html
from pathlib import Path
from typing import Optional, Union

from repro.display.svgmap import (
    COLOR_AP,
    COLOR_ESTIMATE,
    COLOR_SNIFFER,
    COLOR_TRUE,
    MapRenderer,
)

PathLike = Union[str, Path]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font-family: Georgia, serif; margin: 2em; background: #fbfaf7; }}
  h1 {{ font-size: 1.4em; }}
  .legend span {{ margin-right: 1.6em; font-size: 0.95em; }}
  .dot {{ display: inline-block; width: 10px; height: 10px;
         border-radius: 50%; margin-right: 0.4em; }}
  .sq  {{ display: inline-block; width: 10px; height: 10px;
         margin-right: 0.4em; }}
  figure {{ margin: 1em 0; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p class="legend">
  <span><i class="dot" style="background:{color_true}"></i>real mobile
  location</span>
  <span><i class="dot" style="background:{color_estimate}"></i>estimated
  mobile location</span>
  <span><i class="dot" style="background:{color_ap}"></i>access point</span>
  <span><i class="sq" style="background:{color_sniffer}"></i>sniffer</span>
</p>
<figure>
{svg}
</figure>
<p><em>{caption}</em></p>
</body>
</html>
"""


def render_html_map(renderer: MapRenderer,
                    title: str = "The Digital Marauder's Map",
                    caption: str = "",
                    output_path: Optional[PathLike] = None) -> str:
    """Wrap a rendered map in a standalone HTML page.

    Returns the HTML text; also writes it to ``output_path`` if given.
    """
    page = _PAGE.format(
        title=html.escape(title),
        caption=html.escape(caption),
        svg=renderer.to_svg(),
        color_true=COLOR_TRUE,
        color_estimate=COLOR_ESTIMATE,
        color_ap=COLOR_AP,
        color_sniffer=COLOR_SNIFFER,
    )
    if output_path is not None:
        Path(output_path).write_text(page, encoding="utf-8")
    return page
