"""The digital Marauder's-map display.

The paper overlays AP locations, real mobile locations (red tags), and
estimated mobile locations (blue tags) on Google Maps (Fig 7).  Offline,
we render the same information as a self-contained SVG
(:mod:`repro.display.svgmap`) wrapped in a standalone HTML page with a
legend (:mod:`repro.display.htmlmap`).
"""

from repro.display.svgmap import MapRenderer
from repro.display.htmlmap import render_html_map
from repro.display.geojson import export_geojson

__all__ = ["MapRenderer", "render_html_map", "export_geojson"]
