"""GeoJSON export: the Marauder's map for real GIS tools.

The paper overlays results on Google Maps.  GeoJSON is today's
interchange equivalent: this module converts AP knowledge and
localization estimates into a FeatureCollection (through a
:class:`~repro.geo.enu.LocalTangentPlane`) that drops straight into
QGIS, Leaflet, geojson.io, or Google My Maps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.geo.enu import LocalTangentPlane
from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase
from repro.localization.base import LocalizationEstimate
from repro.net80211.mac import MacAddress

PathLike = Union[str, Path]


def _point_feature(plane: LocalTangentPlane, position: Point,
                   properties: Dict) -> Dict:
    coordinate = plane.from_point(position)
    return {
        "type": "Feature",
        "geometry": {
            "type": "Point",
            "coordinates": [round(coordinate.longitude_deg, 7),
                            round(coordinate.latitude_deg, 7)],
        },
        "properties": properties,
    }


def export_geojson(
    plane: LocalTangentPlane,
    database: Optional[ApDatabase] = None,
    estimates: Optional[Dict[MacAddress,
                             Optional[LocalizationEstimate]]] = None,
    truths: Optional[Iterable[Tuple[MacAddress, Point]]] = None,
    output_path: Optional[PathLike] = None,
) -> Dict:
    """Build (and optionally write) the GeoJSON FeatureCollection.

    * APs get ``kind: "access_point"`` features with SSID/BSSID/channel,
    * estimates get ``kind: "estimate"`` features with the algorithm,
      constraining-AP count, and region area,
    * ground-truth positions (when known, e.g. in simulation) get
      ``kind: "truth"`` features — the paper's red tags.
    """
    features = []
    for record in (database or []):
        features.append(_point_feature(plane, record.location, {
            "kind": "access_point",
            "bssid": str(record.bssid),
            "ssid": record.ssid.name,
            "channel": record.channel,
            "max_range_m": record.max_range_m,
        }))
    for mobile, estimate in (estimates or {}).items():
        if estimate is None:
            continue
        features.append(_point_feature(plane, estimate.position, {
            "kind": "estimate",
            "mobile": str(mobile),
            "algorithm": estimate.algorithm,
            "used_ap_count": estimate.used_ap_count,
            "region_area_m2": round(estimate.area_m2, 1),
        }))
    for mobile, position in (truths or []):
        features.append(_point_feature(plane, position, {
            "kind": "truth",
            "mobile": str(mobile),
        }))
    collection = {"type": "FeatureCollection", "features": features}
    if output_path is not None:
        Path(output_path).write_text(json.dumps(collection, indent=2),
                                     encoding="utf-8")
    return collection
