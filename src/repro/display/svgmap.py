"""SVG rendering of the Marauder's map.

Draws, in the planar campus frame:

* AP markers (dots) with optional coverage discs,
* the sniffer vantage point,
* real mobile positions as red tags and estimates as blue tags —
  the paper's Fig 7 color convention,
* optional tracks (polylines) per device.

The renderer accumulates layers and emits one SVG string; no third-party
graphics dependency.
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection

#: Fig 7 convention: "the real mobile location in red tags and estimated
#: mobile location in blue tags".
COLOR_TRUE = "#cc2222"
COLOR_ESTIMATE = "#2244cc"
COLOR_AP = "#444444"
COLOR_COVERAGE = "#88aadd"
COLOR_SNIFFER = "#118833"


@dataclass
class _Element:
    markup: str


@dataclass
class MapRenderer:
    """Accumulates map layers and renders SVG.

    ``width_m``/``height_m`` define the world rectangle; output is
    scaled into a ``pixels``-wide image (aspect preserved, y-axis
    flipped so north is up).
    """

    width_m: float
    height_m: float
    pixels: int = 800
    _elements: List[_Element] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("map dimensions must be positive")
        self._scale = self.pixels / self.width_m

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------

    def _px(self, point: Point) -> Tuple[float, float]:
        return (point.x * self._scale,
                (self.height_m - point.y) * self._scale)

    @property
    def height_px(self) -> float:
        return self.height_m * self._scale

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------

    def add_access_point(self, position: Point, label: str = "",
                         coverage_radius_m: Optional[float] = None) -> None:
        """An AP dot, optionally with its coverage disc."""
        x, y = self._px(position)
        if coverage_radius_m is not None:
            r = coverage_radius_m * self._scale
            self._elements.append(_Element(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" '
                f'fill="{COLOR_COVERAGE}" fill-opacity="0.08" '
                f'stroke="{COLOR_COVERAGE}" stroke-opacity="0.4"/>'))
        title = (f"<title>{html.escape(label)}</title>" if label else "")
        self._elements.append(_Element(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
            f'fill="{COLOR_AP}">{title}</circle>'))

    def add_sniffer(self, position: Point, label: str = "sniffer") -> None:
        x, y = self._px(position)
        self._elements.append(_Element(
            f'<rect x="{x - 6:.1f}" y="{y - 6:.1f}" width="12" height="12" '
            f'fill="{COLOR_SNIFFER}"><title>{html.escape(label)}</title>'
            f'</rect>'))

    def add_true_position(self, position: Point, label: str = "") -> None:
        """A red tag: where the mobile really is."""
        self._add_tag(position, COLOR_TRUE, label)

    def add_estimate(self, position: Point, label: str = "") -> None:
        """A blue tag: where the attack places the mobile."""
        self._add_tag(position, COLOR_ESTIMATE, label)

    def add_region(self, region: DiscIntersection,
                   color: str = COLOR_ESTIMATE) -> None:
        """Overlay an intersected region (the localization uncertainty).

        Renders the exact arc-polygon boundary: straight chords between
        the region's vertices replaced by SVG elliptical-arc segments of
        the supporting circles.  Empty regions and single-disc regions
        fall back to nothing / a plain circle.
        """
        if region.is_empty:
            return
        arcs = region._arcs or []
        vertices = region.vertices
        if not arcs or len(vertices) < 2:
            # Nested/single-disc region: draw the bounding disc.
            full = region._full_disc
            if full is not None:
                x, y = self._px(full.center)
                r = full.radius * self._scale
                self._elements.append(_Element(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" '
                    f'fill="{color}" fill-opacity="0.15" '
                    f'stroke="{color}"/>'))
            return
        path: List[str] = []
        for index, (circle, start_angle, sweep) in enumerate(arcs):
            start = circle.point_at(start_angle)
            end = circle.point_at(start_angle + sweep)
            sx, sy = self._px(start)
            ex, ey = self._px(end)
            radius_px = circle.radius * self._scale
            large = 1 if sweep > math.pi else 0
            # The y-axis flip mirrors orientation: CCW world arcs become
            # CW screen arcs (sweep flag 0).
            if index == 0:
                path.append(f"M {sx:.2f} {sy:.2f}")
            path.append(f"A {radius_px:.2f} {radius_px:.2f} 0 "
                        f"{large} 0 {ex:.2f} {ey:.2f}")
        path.append("Z")
        self._elements.append(_Element(
            f'<path d="{" ".join(path)}" fill="{color}" '
            f'fill-opacity="0.15" stroke="{color}" stroke-width="1"/>'))

    def add_track(self, positions: Sequence[Point], color: str = COLOR_ESTIMATE
                  ) -> None:
        """A polyline through a device's successive estimates."""
        if len(positions) < 2:
            return
        points = " ".join(f"{x:.1f},{y:.1f}"
                          for x, y in (self._px(p) for p in positions))
        self._elements.append(_Element(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.5" stroke-opacity="0.7"/>'))

    def _add_tag(self, position: Point, color: str, label: str) -> None:
        x, y = self._px(position)
        title = (f"<title>{html.escape(label)}</title>" if label else "")
        # A map-pin: circle head on a short stem.
        self._elements.append(_Element(
            f'<g>{title}'
            f'<line x1="{x:.1f}" y1="{y:.1f}" x2="{x:.1f}" y2="{y - 10:.1f}" '
            f'stroke="{color}" stroke-width="2"/>'
            f'<circle cx="{x:.1f}" cy="{y - 13:.1f}" r="5" fill="{color}"/>'
            f'</g>'))

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_svg(self) -> str:
        """Render all layers to a complete SVG document."""
        body = "\n  ".join(element.markup for element in self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.pixels}" height="{self.height_px:.0f}" '
            f'viewBox="0 0 {self.pixels} {self.height_px:.0f}">\n'
            f'  <rect width="100%" height="100%" fill="#f6f4ee"/>\n'
            f'  {body}\n'
            f'</svg>'
        )
