"""Propagation models — the simulated stand-in for the real campus RF.

The paper's Theorem 1 uses the free-space model as the *worst case*
("this spherical model overestimates the AP coverage").  Its Figure 12
experiment, however, is shaped by the real environment: "the area is not
flat and the sniffer is obstructed by small hills", which flattens the
LNA advantage.  We therefore provide:

* :class:`FreeSpaceModel` — the analytic baseline of Theorem 1,
* :class:`LogDistanceModel` — urban path-loss exponent with
  deterministic per-link log-normal shadowing (reproducible: the
  shadowing draw is keyed on the endpoint coordinates),
* :class:`ObstructedModel` — any base model plus an obstruction
  callable (terrain, buildings) contributing extra loss.

All models map a (tx point, rx point, frequency) triple to a path loss
in dB; the medium and link-budget layers consume that number.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.geometry.point import Point
from repro.radio.units import SPEED_OF_LIGHT_M_S

#: Loss below this separation is clamped to the 1 m free-space value so
#: that co-located endpoints never produce negative path loss.
_MIN_DISTANCE_M = 1.0


class PropagationModel:
    """Interface: path loss in dB between two planar points."""

    def path_loss_db(self, tx: Point, rx: Point,
                     frequency_hz: float) -> float:
        raise NotImplementedError


@dataclass
class FreeSpaceModel(PropagationModel):
    """Free-space (Friis) path loss — Theorem 1's worst-case model."""

    def path_loss_db(self, tx: Point, rx: Point,
                     frequency_hz: float) -> float:
        distance = max(_MIN_DISTANCE_M, tx.distance_to(rx))
        wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * distance / wavelength)


@dataclass
class LogDistanceModel(PropagationModel):
    """Log-distance path loss with deterministic log-normal shadowing.

    ``PL(d) = PL_fs(d0) + 10 n log10(d / d0) + X``, where ``n`` is the
    path-loss exponent (≈2 free space, 2.7–3.5 urban) and ``X`` a
    zero-mean Gaussian in dB with standard deviation
    ``shadowing_sigma_db``, drawn deterministically per unordered link
    (so the channel is reciprocal and every simulation run with the same
    ``seed`` sees the same radio environment).
    """

    exponent: float = 3.0
    reference_distance_m: float = 1.0
    shadowing_sigma_db: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.exponent <= 0.0:
            raise ValueError(f"exponent must be > 0, got {self.exponent}")
        if self.reference_distance_m <= 0.0:
            raise ValueError("reference distance must be > 0 m")
        if self.shadowing_sigma_db < 0.0:
            raise ValueError("shadowing sigma must be >= 0 dB")

    def path_loss_db(self, tx: Point, rx: Point,
                     frequency_hz: float) -> float:
        distance = max(_MIN_DISTANCE_M, tx.distance_to(rx))
        wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
        reference_loss = 20.0 * math.log10(
            4.0 * math.pi * self.reference_distance_m / wavelength)
        loss = reference_loss + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance_m)
        if self.shadowing_sigma_db > 0.0:
            loss += self.shadowing_sigma_db * self._shadowing_draw(tx, rx)
        return loss

    def _shadowing_draw(self, tx: Point, rx: Point) -> float:
        """Standard-normal draw keyed on the unordered endpoint pair."""
        a = (round(tx.x, 3), round(tx.y, 3))
        b = (round(rx.x, 3), round(rx.y, 3))
        low, high = (a, b) if a <= b else (b, a)
        payload = struct.pack("<4dq", low[0], low[1], high[0], high[1],
                              self.seed)
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        key = int.from_bytes(digest, "little")
        return float(np.random.default_rng(key).standard_normal())


@dataclass
class ObstructedModel(PropagationModel):
    """A base model plus an obstruction loss callable.

    ``obstruction_db(tx, rx)`` returns extra attenuation in dB — the
    campus terrain model (:mod:`repro.sim.terrain`) supplies hills and
    buildings through this hook without the radio layer knowing about
    world geometry.
    """

    base: PropagationModel
    obstruction_db: Callable[[Point, Point], float]

    def path_loss_db(self, tx: Point, rx: Point,
                     frequency_hz: float) -> float:
        extra = self.obstruction_db(tx, rx)
        if extra < 0.0:
            raise ValueError(
                f"obstruction loss must be >= 0 dB, got {extra}")
        return self.base.path_loss_db(tx, rx, frequency_hz) + extra
