"""Theorem 1: the link budget that bounds the coverage radius.

Implements the paper's equations:

* free-space path loss (eq. (9)),
* received power (eq. (10)),
* receiver sensitivity (eq. (11)/(16)),
* the Theorem 1 coverage bound (eq. (6)/(18))::

      20 log10 D < G_rx - NF - SNR_min + C
      C = P_tx + G_tx - 20 log10(4π/λ) - 10 log10 B + 174

The free-space model is the paper's stated *worst case*: it
overestimates AP coverage, so localization built on it never excludes
the true location.  Urban attenuation is layered on separately by
:mod:`repro.radio.propagation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.radio.chain import ReceiverChain
from repro.radio.units import (
    SPEED_OF_LIGHT_M_S,
    THERMAL_NOISE_DBM_PER_HZ,
)

#: Default carrier: 802.11b/g channel 6 center (2.437 GHz).
DEFAULT_FREQUENCY_HZ = 2.437e9


@dataclass(frozen=True)
class Transmitter:
    """The remote end of the link: a mobile device or AP transmitting."""

    power_dbm: float
    antenna_gain_dbi: float = 0.0
    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT_M_S / self.frequency_hz

    @property
    def eirp_dbm(self) -> float:
        """Effective isotropic radiated power."""
        return self.power_dbm + self.antenna_gain_dbi


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Free-space path loss, paper eq. (9): ``20 log10(4 π D / λ)``."""
    if distance_m <= 0.0:
        raise ValueError(f"distance must be > 0 m, got {distance_m}")
    wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


def received_power_dbm(transmitter: Transmitter, receiver_gain_dbi: float,
                       distance_m: float) -> float:
    """Received power at the antenna reference plane, paper eq. (10)."""
    return (transmitter.power_dbm + transmitter.antenna_gain_dbi
            + receiver_gain_dbi
            - free_space_path_loss_db(distance_m, transmitter.frequency_hz))


def receiver_sensitivity_dbm(noise_figure_db: float, snr_min_db: float,
                             bandwidth_hz: float) -> float:
    """Receiver sensitivity, paper eq. (11): ``-174 + NF + SNR + 10logB``."""
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be > 0 Hz, got {bandwidth_hz}")
    return (THERMAL_NOISE_DBM_PER_HZ + noise_figure_db + snr_min_db
            + 10.0 * math.log10(bandwidth_hz))


def theorem1_constant_c(transmitter: Transmitter,
                        bandwidth_hz: float) -> float:
    """The constant ``C`` of Theorem 1 (paper eq. (7))."""
    wavelength = transmitter.wavelength_m
    return (transmitter.power_dbm + transmitter.antenna_gain_dbi
            - 20.0 * math.log10(4.0 * math.pi / wavelength)
            - 10.0 * math.log10(bandwidth_hz)
            - THERMAL_NOISE_DBM_PER_HZ)


def coverage_radius_m(receiver_gain_dbi: float, noise_figure_db: float,
                      snr_min_db: float, transmitter: Transmitter,
                      bandwidth_hz: float) -> float:
    """Theorem 1's free-space coverage radius.

    Solves ``20 log10 D = G_rx - NF - SNR_min + C`` for ``D``; signals
    from any closer transmitter clear the chain sensitivity.
    """
    c = theorem1_constant_c(transmitter, bandwidth_hz)
    exponent = (receiver_gain_dbi - noise_figure_db - snr_min_db + c) / 20.0
    return 10.0 ** exponent


@dataclass
class LinkBudget:
    """A transmitter paired with a receiver chain.

    Ties Theorem 1 to concrete hardware: ask it for received power, SNR,
    decodability at a distance, or the coverage radius of the chain.
    """

    transmitter: Transmitter
    chain: ReceiverChain

    def received_power_dbm(self, distance_m: float) -> float:
        """Antenna-referred received power at ``distance_m`` (free space)."""
        return received_power_dbm(self.transmitter,
                                  self.chain.antenna_gain_dbi, distance_m)

    def snr_db(self, distance_m: float) -> float:
        """Demodulator SNR at ``distance_m`` (free space)."""
        return self.chain.snr_db(self.received_power_dbm(distance_m))

    def can_receive(self, distance_m: float) -> bool:
        """True when a frame at ``distance_m`` clears the sensitivity."""
        return self.snr_db(distance_m) >= self.chain.nic.snr_min_db

    def coverage_radius_m(self) -> float:
        """The Theorem 1 radius for this transmitter/chain pair."""
        return coverage_radius_m(
            self.chain.antenna_gain_dbi,
            self.chain.noise_figure_db,
            self.chain.nic.snr_min_db,
            self.transmitter,
            self.chain.nic.bandwidth_hz,
        )

    def link_margin_db(self, distance_m: float) -> float:
        """Spare SNR above the decode threshold at ``distance_m``."""
        return self.snr_db(distance_m) - self.chain.nic.snr_min_db
