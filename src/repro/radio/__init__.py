"""Radio substrate: link budget, RF components, propagation, channels.

This package models the paper's *wireless receiver chain* (Section II-B
component 1 and Section III-A): high-gain antenna → low-noise amplifier
→ signal splitter → wireless NICs, with the cascaded noise figure
(Friis formula, paper equation (12)) and the Theorem 1 link budget that
bounds the coverage radius.  It also provides the propagation models the
simulator uses in place of the real 2.4 GHz campus environment, and the
802.11 channel plan with the adjacent-channel decode model behind the
paper's Figure 9 experiment.
"""

from repro.radio.units import (
    db_to_linear,
    dbm_to_milliwatts,
    linear_to_db,
    milliwatts_to_dbm,
    noise_factor_to_figure,
    noise_figure_to_factor,
)
from repro.radio.components import (
    Antenna,
    Connector,
    LowNoiseAmplifier,
    Splitter,
    WirelessNic,
    catalog,
)
from repro.radio.chain import ReceiverChain
from repro.radio.link_budget import (
    LinkBudget,
    Transmitter,
    coverage_radius_m,
    free_space_path_loss_db,
    receiver_sensitivity_dbm,
)
from repro.radio.propagation import (
    FreeSpaceModel,
    LogDistanceModel,
    ObstructedModel,
    PropagationModel,
)
from repro.radio.channels import (
    CHANNELS_80211A,
    CHANNELS_80211BG,
    NON_OVERLAPPING_BG,
    adjacent_channel_rejection_db,
    center_frequency_mhz,
    decode_probability,
    spectral_overlap_fraction,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_milliwatts",
    "milliwatts_to_dbm",
    "noise_figure_to_factor",
    "noise_factor_to_figure",
    "Antenna",
    "Connector",
    "LowNoiseAmplifier",
    "Splitter",
    "WirelessNic",
    "catalog",
    "ReceiverChain",
    "LinkBudget",
    "Transmitter",
    "coverage_radius_m",
    "free_space_path_loss_db",
    "receiver_sensitivity_dbm",
    "PropagationModel",
    "FreeSpaceModel",
    "LogDistanceModel",
    "ObstructedModel",
    "CHANNELS_80211BG",
    "CHANNELS_80211A",
    "NON_OVERLAPPING_BG",
    "center_frequency_mhz",
    "spectral_overlap_fraction",
    "adjacent_channel_rejection_db",
    "decode_probability",
]
