"""Decibel / power unit conversions used throughout the radio stack.

Conventions:

* ``dB`` — dimensionless power ratio in decibels.
* ``dBm`` — absolute power referenced to 1 mW.
* *noise factor* ``F`` — linear ratio (paper: "the ratio of the noise
  produced by a real resistor to the thermal noise of an ideal
  resistor"); *noise figure* ``NF = 10 log10(F)`` is its dB form.
"""

from __future__ import annotations

import math

#: Thermal noise power density at the NIC input impedance, dBm/Hz
#: (paper equation (7): "-174 (dBm/Hz) is the value of the noise power
#: density of the wireless NIC input impedance (normally 50 Ohm)").
THERMAL_NOISE_DBM_PER_HZ = -174.0

#: Speed of light, m/s.
SPEED_OF_LIGHT_M_S = 299_792_458.0


def db_to_linear(db: float) -> float:
    """Convert a dB power ratio to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be > 0, got {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_milliwatts(dbm: float) -> float:
    """Convert absolute power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def milliwatts_to_dbm(milliwatts: float) -> float:
    """Convert absolute power in milliwatts to dBm."""
    if milliwatts <= 0.0:
        raise ValueError(f"power must be > 0 mW, got {milliwatts}")
    return 10.0 * math.log10(milliwatts)


def noise_figure_to_factor(noise_figure_db: float) -> float:
    """Noise figure (dB) → noise factor (linear)."""
    return db_to_linear(noise_figure_db)


def noise_factor_to_figure(noise_factor: float) -> float:
    """Noise factor (linear) → noise figure (dB)."""
    return linear_to_db(noise_factor)


def wavelength_m(frequency_hz: float) -> float:
    """Free-space wavelength in meters for a carrier frequency in Hz."""
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be > 0 Hz, got {frequency_hz}")
    return SPEED_OF_LIGHT_M_S / frequency_hz
