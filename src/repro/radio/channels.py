"""802.11 channel plan, spectral overlap, and the cross-channel decode model.

The paper devotes Section III-B1 to channel selection: 802.11b/g has 11
overlapping 22 MHz channels of which only 1/6/11 are disjoint.  Prior
belief held that 3 cards on channels 3/6/9 could capture everything; the
paper's Figure 9 experiment refutes this — "a card listening on
neighboring channels may not correctly recognize the signal because the
signal picked up at neighboring channels is distorted and the card
cannot decode the signal correctly."

This module encodes:

* the b/g and a channel plans (center frequencies),
* the *spectral overlap fraction* between two b/g channels (how much of
  the transmitted 22 MHz lands inside the listener's filter),
* an *adjacent-channel rejection* penalty in dB,
* :func:`decode_probability` — the empirical decode model that
  reproduces Figure 9: near-certain decode co-channel, a small residual
  probability one channel off, and effectively nothing beyond that,
  regardless of SNR, because the leaked energy is distorted rather than
  merely weak.
"""

from __future__ import annotations

import math
from typing import Dict

#: 802.11b/g channels (2.4 GHz band).
CHANNELS_80211BG = tuple(range(1, 12))
#: The only mutually non-overlapping b/g channels.
NON_OVERLAPPING_BG = (1, 6, 11)
#: 802.11a channels referenced by the paper ("support for 802.11a
#: requires 12 cards") — the U-NII-1/2 set.
CHANNELS_80211A = (36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112)

#: Channel width used by the paper's analysis (DSSS/OFDM at 2.4 GHz).
CHANNEL_WIDTH_MHZ = 22.0
#: Spacing between adjacent b/g channel centers.
CHANNEL_SPACING_MHZ = 5.0

#: Maximum decode probability by absolute channel offset, independent of
#: SNR.  Offset 0 is limited only by SNR; offsets >= 1 are capped low
#: because the out-of-channel signal is *distorted* — this is the
#: paper's Figure 9 finding ("recognize few or none of those packets").
_DISTORTION_CAP: Dict[int, float] = {0: 1.0, 1: 0.06, 2: 0.01}


def is_bg_channel(channel: int) -> bool:
    """True for a valid 802.11b/g channel number."""
    return channel in CHANNELS_80211BG


def is_a_channel(channel: int) -> bool:
    """True for a valid 802.11a channel number (the paper's 12)."""
    return channel in CHANNELS_80211A


def center_frequency_mhz(channel: int) -> float:
    """Center frequency of a channel in MHz (b/g or a)."""
    if is_bg_channel(channel):
        return 2412.0 + CHANNEL_SPACING_MHZ * (channel - 1)
    if is_a_channel(channel):
        return 5000.0 + 5.0 * channel
    raise ValueError(f"unknown 802.11 channel {channel}")


def center_frequency_hz(channel: int) -> float:
    """Center frequency of a channel in Hz."""
    return center_frequency_mhz(channel) * 1e6


def spectral_overlap_fraction(tx_channel: int, rx_channel: int) -> float:
    """Fraction of the transmitted band inside the receiver's filter.

    Both filters are modeled as ideal 22 MHz-wide rectangles centered on
    their channels, so the overlap is a pure geometry computation:
    channels 5 apart (e.g. 1 and 6) share nothing; adjacent channels
    share 17/22 of the band in *energy* — yet almost none of it is
    *decodable* (see :func:`decode_probability`).
    """
    if is_a_channel(tx_channel) or is_a_channel(rx_channel):
        # 802.11a channels are 20 MHz on 20 MHz centers: disjoint unless
        # equal for the subset the paper considers.
        return 1.0 if tx_channel == rx_channel else 0.0
    if not (is_bg_channel(tx_channel) and is_bg_channel(rx_channel)):
        raise ValueError(
            f"invalid channel pair ({tx_channel}, {rx_channel})")
    separation = abs(center_frequency_mhz(tx_channel)
                     - center_frequency_mhz(rx_channel))
    overlap_mhz = max(0.0, CHANNEL_WIDTH_MHZ - separation)
    return overlap_mhz / CHANNEL_WIDTH_MHZ


def adjacent_channel_rejection_db(tx_channel: int, rx_channel: int) -> float:
    """Power penalty (dB) for listening off the transmit channel.

    Derived from the spectral overlap: the receiver only captures the
    overlapping energy, so the penalty is ``-10 log10(overlap)``, capped
    at 60 dB for fully disjoint channels.
    """
    overlap = spectral_overlap_fraction(tx_channel, rx_channel)
    if overlap <= 1e-6:
        return 60.0
    return min(60.0, -10.0 * math.log10(overlap))


def decode_probability(snr_db: float, tx_channel: int, rx_channel: int,
                       snr_min_db: float = 10.0) -> float:
    """Probability a frame transmitted on ``tx_channel`` is decoded by a
    card listening on ``rx_channel``.

    Two multiplicative factors:

    1. an SNR factor — a smooth ramp from 0 at ``snr_min_db - 3`` to 1
       at ``snr_min_db + 3`` applied to the *offset-penalized* SNR,
    2. a distortion cap by channel offset — co-channel 1.0, one channel
       off 0.06, two off 0.01, three or more 0.0.

    The cap is what makes Figure 9 come out: even a strong transmitter
    one channel away is rarely decodable, so monitoring channels 3/6/9
    does *not* cover the band.
    """
    offset = _channel_offset(tx_channel, rx_channel)
    cap = _DISTORTION_CAP.get(offset, 0.0)
    if cap <= 0.0:
        return 0.0
    effective_snr = snr_db - adjacent_channel_rejection_db(
        tx_channel, rx_channel)
    snr_factor = _ramp(effective_snr, snr_min_db - 3.0, snr_min_db + 3.0)
    return cap * snr_factor


def _channel_offset(tx_channel: int, rx_channel: int) -> int:
    if is_a_channel(tx_channel) or is_a_channel(rx_channel):
        return 0 if tx_channel == rx_channel else 99
    return abs(tx_channel - rx_channel)


def _ramp(value: float, low: float, high: float) -> float:
    """Piecewise-linear ramp: 0 below ``low``, 1 above ``high``."""
    if value <= low:
        return 0.0
    if value >= high:
        return 1.0
    return (value - low) / (high - low)
