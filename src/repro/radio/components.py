"""RF components of the wireless receiver chain.

Parametric models of the hardware the paper uses (Section IV-A):

* HyperLink HG2415U 2.4 GHz 15 dBi omnidirectional antenna,
* RF-Lambda narrow-band LNA (45 dB gain, 1.5 dB noise figure),
* HyperLink 4-way signal splitter,
* Ubiquiti Super Range Cardbus SRC 300 mW 802.11a/b/g card,
* D-Link DWL-G650 PCMCIA card (the "stock laptop" baseline of Fig 12).

Each component contributes (gain_db, noise_factor) to the Friis cascade
in :mod:`repro.radio.chain`.  Passive components (antenna, connector,
splitter) are modeled as noiseless per the paper's assumption that
"non-powered blocks don't introduce noise".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.radio.units import (
    db_to_linear,
    noise_figure_to_factor,
)


@dataclass(frozen=True)
class Antenna:
    """A receive (or transmit) antenna with gain in dBi."""

    name: str
    gain_dbi: float

    @property
    def gain_db(self) -> float:
        return self.gain_dbi

    @property
    def noise_factor(self) -> float:
        return 1.0  # passive, noiseless per the paper's model


@dataclass(frozen=True)
class Connector:
    """A cable/connector with insertion loss in dB (loss >= 0)."""

    name: str
    loss_db: float = 0.5

    def __post_init__(self) -> None:
        if self.loss_db < 0.0:
            raise ValueError(f"connector loss must be >= 0, got {self.loss_db}")

    @property
    def gain_db(self) -> float:
        return -self.loss_db

    @property
    def noise_factor(self) -> float:
        return 1.0


@dataclass(frozen=True)
class LowNoiseAmplifier:
    """A powered LNA: high gain, low noise figure.

    The paper's RF-Lambda unit: 45 dB gain, NF 1.5 dB.  Being the first
    powered block after the antenna, its noise figure dominates the
    chain noise figure (paper equation (15)).
    """

    name: str
    gain_db: float
    noise_figure_db: float

    def __post_init__(self) -> None:
        if self.gain_db < 0.0:
            raise ValueError(f"LNA gain must be >= 0 dB, got {self.gain_db}")
        if self.noise_figure_db < 0.0:
            raise ValueError(
                f"noise figure must be >= 0 dB, got {self.noise_figure_db}")

    @property
    def noise_factor(self) -> float:
        return noise_figure_to_factor(self.noise_figure_db)


@dataclass(frozen=True)
class Splitter:
    """An N-way signal splitter.

    Splitting power N ways costs ``10 log10(N)`` dB per output plus an
    ``excess_loss_db`` implementation loss.  The paper: "With a 4-way
    splitter, each thread of signal (and noise) out of the splitter
    still achieves 45 - 10 log 4 = 39 dB of amplification."
    """

    name: str
    ways: int
    excess_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ValueError(f"splitter ways must be >= 1, got {self.ways}")
        if self.excess_loss_db < 0.0:
            raise ValueError(
                f"excess loss must be >= 0, got {self.excess_loss_db}")

    @property
    def split_loss_db(self) -> float:
        return 10.0 * math.log10(self.ways)

    @property
    def gain_db(self) -> float:
        return -(self.split_loss_db + self.excess_loss_db)

    @property
    def noise_factor(self) -> float:
        return 1.0


@dataclass(frozen=True)
class WirelessNic:
    """A wireless network interface card (the chain's final block).

    ``snr_min_db`` is the minimum SNR for acceptable demodulation and
    ``bandwidth_hz`` the baseband filter bandwidth — together with the
    chain noise figure they define the sensitivity (paper eq. (11)).
    ``tx_power_dbm``/``tx_antenna_gain_dbi`` describe the card when it
    transmits (used for the AP/mobile side of the link).
    """

    name: str
    noise_figure_db: float
    snr_min_db: float = 10.0
    bandwidth_hz: float = 22e6
    tx_power_dbm: float = 15.0
    tx_antenna_gain_dbi: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_figure_db < 0.0:
            raise ValueError(
                f"noise figure must be >= 0 dB, got {self.noise_figure_db}")
        if self.bandwidth_hz <= 0.0:
            raise ValueError(
                f"bandwidth must be > 0 Hz, got {self.bandwidth_hz}")

    @property
    def noise_factor(self) -> float:
        return noise_figure_to_factor(self.noise_figure_db)

    @property
    def gain_db(self) -> float:
        return 0.0


def catalog() -> Dict[str, object]:
    """The paper's hardware, by the names used in its Figure 12.

    Returns a dict of ready-made component instances:

    * ``"HG2415U"`` — HyperLink 15 dBi omni antenna,
    * ``"RF-Lambda-LNA"`` — 45 dB gain, 1.5 dB NF LNA,
    * ``"4-way-splitter"`` — HyperLink splitter,
    * ``"SRC"`` — Ubiquiti Super Range Cardbus (300 mW ≈ 24.8 dBm),
    * ``"SRC-clip-antenna"`` — tri-band laptop clip mount 4 dBi antenna,
    * ``"DLink"`` — D-Link DWL-G650 with its ~2 dBi internal antenna.

    Noise figures follow the paper's ranges ("a common WNIC has a noise
    figure around 4.0 ~ 6.0 dB"; the RF-Lambda LNA "is 1.5 dB").
    """
    return {
        "HG2415U": Antenna("HyperLink HG2415U", gain_dbi=15.0),
        "RF-Lambda-LNA": LowNoiseAmplifier(
            "RF-Lambda Narrow Band LNA", gain_db=45.0, noise_figure_db=1.5),
        "4-way-splitter": Splitter("HyperLink 4-way splitter", ways=4,
                                   excess_loss_db=0.5),
        "SRC": WirelessNic(
            "Ubiquiti Super Range Cardbus SRC",
            noise_figure_db=4.0, snr_min_db=10.0, bandwidth_hz=22e6,
            tx_power_dbm=24.8, tx_antenna_gain_dbi=0.0),
        "SRC-clip-antenna": Antenna(
            "Tri-band laptop clip mount", gain_dbi=4.0),
        "DLink": WirelessNic(
            "D-Link DWL-G650",
            noise_figure_db=6.0, snr_min_db=10.0, bandwidth_hz=22e6,
            tx_power_dbm=15.0, tx_antenna_gain_dbi=2.0),
        "DLink-antenna": Antenna("DWL-G650 internal", gain_dbi=2.0),
    }
