"""The wireless receiver chain and its cascaded noise figure.

Models the paper's receiver chain (antenna → connector → LNA → splitter
→ wireless NIC) and computes:

* the cascaded noise figure via the Friis formula (paper eq. (12)–(14)),
* the pre-NIC gain, including the splitter loss (the "39 dB of
  amplification" remark),
* the effective sensitivity of the chain (paper eq. (16)),

which feed the Theorem 1 link budget in :mod:`repro.radio.link_budget`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Union

from repro.radio.components import (
    Antenna,
    Connector,
    LowNoiseAmplifier,
    Splitter,
    WirelessNic,
)
from repro.radio.units import (
    THERMAL_NOISE_DBM_PER_HZ,
    db_to_linear,
    linear_to_db,
    noise_factor_to_figure,
)

MidBlock = Union[Connector, LowNoiseAmplifier, Splitter]


@dataclass
class ReceiverChain:
    """An ordered receiver chain: antenna, middle blocks, then a NIC.

    Parameters
    ----------
    antenna:
        The receive antenna (its gain is the Theorem 1 ``G_rx``; it is
        *not* part of the noise cascade, matching the link-budget
        convention where antenna gain enters the signal term).
    blocks:
        Connectors, LNAs, and splitters between antenna and card, in
        physical order.
    nic:
        The wireless card terminating the chain.
    """

    antenna: Antenna
    nic: WirelessNic
    blocks: List[MidBlock] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            parts = [self.antenna.name] + [b.name for b in self.blocks]
            parts.append(self.nic.name)
            self.name = " -> ".join(parts)

    # ------------------------------------------------------------------
    # Gains
    # ------------------------------------------------------------------

    @property
    def antenna_gain_dbi(self) -> float:
        """Theorem 1's ``G_rx``."""
        return self.antenna.gain_dbi

    @property
    def pre_nic_gain_db(self) -> float:
        """Net gain between antenna output and NIC input (dB).

        For the paper's chain this is 45 dB (LNA) − ~6 dB (4-way split)
        ≈ 39 dB: "each thread of signal (and noise) out of the splitter
        still achieves 45 − 10log4 = 39 dB of amplification".
        """
        return sum(block.gain_db for block in self.blocks)

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------

    @property
    def noise_factor(self) -> float:
        """Cascaded noise factor via Friis (paper eq. (12)).

        The cascade covers the middle blocks and the NIC.  Passive
        blocks are treated as noiseless unity-noise-factor stages whose
        (negative) gain still divides downstream noise contributions —
        their loss therefore raises the effective NF exactly as in
        practice.
        """
        total = 1.0
        gain_product = 1.0
        stages: List = list(self.blocks) + [self.nic]
        for stage in stages:
            stage_factor = stage.noise_factor
            total += (stage_factor - 1.0) / gain_product
            gain_product *= db_to_linear(stage.gain_db)
        return total

    @property
    def noise_figure_db(self) -> float:
        """Cascaded noise figure in dB.

        With a high-gain LNA first, this collapses to (approximately)
        the LNA's own noise figure — paper eq. (15):
        ``NF = 10 log(F_lna) = NF_lna``.
        """
        return noise_factor_to_figure(self.noise_factor)

    # ------------------------------------------------------------------
    # Sensitivity
    # ------------------------------------------------------------------

    @property
    def sensitivity_dbm(self) -> float:
        """Minimum antenna-referred signal power the chain can decode.

        Paper eq. (16): ``P_rx,min = -174 + NF + SNR_min + 10 log B``,
        with the cascaded NF of the whole chain.
        """
        return (THERMAL_NOISE_DBM_PER_HZ
                + self.noise_figure_db
                + self.nic.snr_min_db
                + 10.0 * math.log10(self.nic.bandwidth_hz))

    def snr_db(self, signal_dbm_at_antenna: float) -> float:
        """SNR at the demodulator for an antenna-referred signal level.

        The antenna-referred noise floor is
        ``-174 + NF + 10 log B`` dBm; gain between antenna and NIC
        amplifies signal and noise alike, so SNR is computed at the
        antenna reference plane.
        """
        noise_floor = (THERMAL_NOISE_DBM_PER_HZ
                       + self.noise_figure_db
                       + 10.0 * math.log10(self.nic.bandwidth_hz))
        return signal_dbm_at_antenna - noise_floor

    def can_decode(self, signal_dbm_at_antenna: float) -> bool:
        """True when the signal clears the chain sensitivity."""
        return self.snr_db(signal_dbm_at_antenna) >= self.nic.snr_min_db

    def split_outputs(self) -> int:
        """Number of NIC feeds the chain's splitters provide."""
        outputs = 1
        for block in self.blocks:
            if isinstance(block, Splitter):
                outputs *= block.ways
        return outputs

    def describe(self) -> str:
        """Human-readable chain summary (used by the CLI and examples)."""
        lines = [f"Receiver chain: {self.name}"]
        lines.append(f"  antenna gain     : {self.antenna_gain_dbi:+.1f} dBi")
        lines.append(f"  pre-NIC gain     : {self.pre_nic_gain_db:+.1f} dB")
        lines.append(f"  noise figure     : {self.noise_figure_db:.2f} dB")
        lines.append(f"  sensitivity      : {self.sensitivity_dbm:.1f} dBm")
        lines.append(f"  splitter outputs : {self.split_outputs()}")
        return "\n".join(lines)
