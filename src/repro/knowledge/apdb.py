"""The AP knowledge base (the adversary's "external knowledge").

Mirrors what wireless geographic logging sites provide: per-AP identity,
location, channel, and — usually *not* — the maximum transmission
distance ("only location but not distance information is available at
wigle").  :meth:`ApDatabase.with_position_noise` models the fact that
logged positions are themselves estimates with meters of error.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid


@dataclass(frozen=True)
class ApRecord:
    """One AP as known to the adversary.

    ``max_range_m`` is ``None`` when the knowledge source (e.g. WiGLE)
    only provides locations — the AP-Rad scenario.
    """

    bssid: MacAddress
    ssid: Ssid
    location: Point
    max_range_m: Optional[float] = None
    channel: Optional[int] = None

    def coverage_disc(self, fallback_range_m: Optional[float] = None) -> Circle:
        """The coverage disc, using ``fallback_range_m`` when unknown."""
        radius = self.max_range_m
        if radius is None:
            radius = fallback_range_m
        if radius is None:
            raise ValueError(
                f"AP {self.bssid} has no known range and no fallback given")
        return Circle(self.location, radius)


class ApDatabase:
    """A collection of :class:`ApRecord`, keyed by BSSID."""

    def __init__(self, records: Iterable[ApRecord] = ()):
        self._records: Dict[MacAddress, ApRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: ApRecord) -> None:
        """Insert or replace the record for a BSSID."""
        self._records[record.bssid] = record

    def get(self, bssid: MacAddress) -> Optional[ApRecord]:
        return self._records.get(bssid)

    def __contains__(self, bssid: MacAddress) -> bool:
        return bssid in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ApRecord]:
        return iter(self._records.values())

    @property
    def bssids(self) -> List[MacAddress]:
        return list(self._records.keys())

    def records_for(self, bssids: Iterable[MacAddress],
                    skip_unknown: bool = True) -> List[ApRecord]:
        """Records for an observed AP set Γ, in a stable order.

        Unknown BSSIDs (APs the sniffer heard but the database lacks)
        are skipped by default — a real WiGLE snapshot never covers
        everything.
        """
        found: List[ApRecord] = []
        for bssid in sorted(bssids):
            record = self._records.get(bssid)
            if record is None:
                if skip_unknown:
                    continue
                raise KeyError(f"AP {bssid} not in knowledge base")
            found.append(record)
        return found

    def subset(self, bssids: Set[MacAddress]) -> "ApDatabase":
        """A new database restricted to the given BSSIDs."""
        return ApDatabase(r for r in self if r.bssid in bssids)

    def with_position_noise(self, rng: np.random.Generator,
                            sigma_m: float) -> "ApDatabase":
        """A copy with i.i.d. Gaussian noise added to every location.

        Models the positioning error of crowd-sourced databases; the
        Fig 13–16 benches use this as the adversary's knowledge while
        the simulator keeps the exact ground truth.
        """
        if sigma_m < 0.0:
            raise ValueError(f"sigma must be >= 0, got {sigma_m}")
        noisy: List[ApRecord] = []
        for record in self:
            dx, dy = rng.normal(0.0, sigma_m, size=2)
            noisy.append(replace(
                record,
                location=Point(record.location.x + dx,
                               record.location.y + dy)))
        return ApDatabase(noisy)

    def without_ranges(self) -> "ApDatabase":
        """A copy with all ``max_range_m`` dropped (the WiGLE scenario)."""
        return ApDatabase(replace(r, max_range_m=None) for r in self)

    def observable_from(self, point: Point) -> Set[MacAddress]:
        """Ground-truth Γ at ``point``, for databases that carry ranges.

        Raises if any record lacks a range — this helper is for
        simulation oracles, not for the adversary's (range-less) view.
        """
        observed: Set[MacAddress] = set()
        for record in self:
            if record.max_range_m is None:
                raise ValueError(
                    f"AP {record.bssid} lacks a range; "
                    "observable_from needs ground-truth ranges")
            if record.location.distance_to(point) <= record.max_range_m:
                observed.add(record.bssid)
        return observed
