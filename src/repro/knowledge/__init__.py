"""External knowledge about APs, and how the adversary acquires it.

The three localization algorithms differ only in what they know about
APs (paper Section III-C):

* M-Loc — locations *and* maximum transmission distances known,
* AP-Rad — only locations known (e.g. from WiGLE),
* AP-Loc — nothing known; a short wardriving/warwalking *training
  phase* collects (location, observed-AP-set) tuples first.

This package holds that knowledge: :class:`ApDatabase` (with the
measurement noise real databases carry), WiGLE-format CSV import/export,
and the wardriving collector producing :class:`TrainingTuple` records.
"""

from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.knowledge.wardrive import TrainingTuple, Wardriver
from repro.knowledge.wigle import export_wigle_csv, import_wigle_csv

__all__ = [
    "ApRecord",
    "ApDatabase",
    "TrainingTuple",
    "Wardriver",
    "import_wigle_csv",
    "export_wigle_csv",
]
