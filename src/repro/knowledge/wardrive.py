"""Wardriving / warwalking: the optional training phase.

"an adversary initiates the training phase by equipping its mobile
device with GPS and wireless sniffing tools ... travels through the
target area where the sniffing tools constantly probe APs and record
training data including (i) the wireless packets ... and (ii) the
spatial coordinates at which those wireless packets are captured."

Each :class:`TrainingTuple` is exactly the paper's training data tuple:
"an identifier which consists of the longitude and latitude of a
training location, and a set of APs a mobile device can communicate with
at the training location."  :class:`Wardriver` collects them along a
route against any observation oracle (the simulated world, or a plain
disc oracle built from ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, List, Sequence

from repro.geometry.point import Point
from repro.net80211.mac import MacAddress

#: An oracle mapping a training location to the set of observable APs.
ObservationOracle = Callable[[Point], Iterable[MacAddress]]


@dataclass(frozen=True)
class TrainingTuple:
    """One wardriving sample: where we stood, which APs answered."""

    location: Point
    observed: FrozenSet[MacAddress]
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.observed, frozenset):
            object.__setattr__(self, "observed", frozenset(self.observed))


class Wardriver:
    """Collects training tuples along a route.

    The oracle abstracts the sniffing tool: in simulation it is the
    world's communicability test; against recorded captures it can be a
    lookup of probe responses near each GPS fix.
    """

    def __init__(self, oracle: ObservationOracle):
        self._oracle = oracle

    def collect(self, route: Sequence[Point],
                start_time: float = 0.0,
                seconds_per_stop: float = 5.0) -> List[TrainingTuple]:
        """Drive the route, recording one tuple per stop."""
        tuples: List[TrainingTuple] = []
        timestamp = start_time
        for location in route:
            observed = frozenset(self._oracle(location))
            tuples.append(TrainingTuple(location, observed, timestamp))
            timestamp += seconds_per_stop
        return tuples


def aps_in_training_data(tuples: Iterable[TrainingTuple]) -> FrozenSet[MacAddress]:
    """Every AP that appears in at least one training tuple."""
    seen = set()
    for entry in tuples:
        seen.update(entry.observed)
    return frozenset(seen)


def tuples_observing(tuples: Iterable[TrainingTuple],
                     bssid: MacAddress) -> List[TrainingTuple]:
    """The training tuples whose location could communicate with ``bssid``.

    These are the disc centers AP-Loc intersects to place the AP.
    """
    return [entry for entry in tuples if bssid in entry.observed]
