"""WiGLE-style CSV import/export for the AP knowledge base.

WiGLE exposes per-network records with a BSSID (``netid``), SSID,
trilaterated latitude/longitude (``trilat``/``trilong``), and channel.
We read/write that shape, converting to the planar frame through a
:class:`~repro.geo.enu.LocalTangentPlane` so the localization geometry
can run in meters.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid

PathLike = Union[str, Path]

FIELDNAMES = ["netid", "ssid", "trilat", "trilong", "channel"]


def import_wigle_csv(path: PathLike,
                     plane: LocalTangentPlane) -> ApDatabase:
    """Load a WiGLE-style CSV into an :class:`ApDatabase`.

    Locations are projected into ``plane``; ranges are left unknown
    (WiGLE does not publish them), which is exactly the AP-Rad input.
    """
    database = ApDatabase()
    with Path(path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(FIELDNAMES) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"CSV is missing columns: {sorted(missing)}")
        for row in reader:
            coordinate = GeodeticCoordinate(float(row["trilat"]),
                                            float(row["trilong"]))
            channel_text = (row.get("channel") or "").strip()
            database.add(ApRecord(
                bssid=MacAddress.parse(row["netid"]),
                ssid=Ssid(row.get("ssid") or ""),
                location=plane.to_point(coordinate),
                max_range_m=None,
                channel=int(channel_text) if channel_text else None,
            ))
    return database


def export_wigle_csv(database: ApDatabase, path: PathLike,
                     plane: LocalTangentPlane) -> None:
    """Write an :class:`ApDatabase` in WiGLE-style CSV."""
    with Path(path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDNAMES)
        writer.writeheader()
        for record in database:
            coordinate = plane.from_point(record.location)
            writer.writerow({
                "netid": str(record.bssid),
                "ssid": record.ssid.name,
                "trilat": f"{coordinate.latitude_deg:.8f}",
                "trilong": f"{coordinate.longitude_deg:.8f}",
                "channel": record.channel if record.channel else "",
            })
