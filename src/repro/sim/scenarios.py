"""Canned experiment scenarios shared by benches, examples, and tests.

Two levels of fidelity:

* :func:`build_attack_scenario` — the *full* event-loop world: stations
  scanning, APs answering, frames flowing through the medium into the
  Marauder's-map sniffer.  Used by the examples and integration tests.
* :func:`build_disc_model_experiment` — the *disc-model* experiment the
  accuracy figures need: ground-truth Γ sets from the coverage-disc
  oracle, degraded into the adversary's imperfect knowledge (WiGLE
  position noise, measured-radius noise, missed observations).  This is
  the direct analogue of the paper's Fig 13–17 methodology and runs in
  seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Set

import numpy as np

from repro.analysis.experiments import TestCase
from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase
from repro.net80211.ap import AccessPoint
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.net80211.ssid import Ssid
from repro.net80211.station import PROFILES, MobileStation
from repro.numerics.rng import make_rng, spawn_rngs
from repro.radio.propagation import (
    FreeSpaceModel,
    LogDistanceModel,
    ObstructedModel,
)
from repro.sim.campus import CampusConfig, generate_campus
from repro.sim.mobility import FixedRoute, RandomWaypoint, grid_route
from repro.sim.terrain import Building, Terrain
from repro.sim.world import CampusWorld
from repro.sniffer.receiver import build_marauder_sniffer


@dataclass
class AttackScenario:
    """A fully-wired campus world with a victim walking a route."""

    world: CampusWorld
    truth_db: ApDatabase
    access_points: List[AccessPoint]
    victim: MobileStation
    victim_route: FixedRoute
    seed: int


def build_attack_scenario(seed: int = 7, ap_count: int = 90,
                          area_m: float = 600.0,
                          bystander_count: int = 12) -> AttackScenario:
    """Build the full event-loop scenario (sniffer on the 'roof').

    The sniffer sits at the campus center with the paper's LNA chain on
    channels 1/6/11; a victim station walks a loop; bystanders random-
    waypoint around, generating the background probe traffic AP-Rad
    feeds on.
    """
    rng = make_rng(seed)
    campus_rng, station_rng, *walk_rngs = spawn_rngs(
        rng, 2 + bystander_count)
    config = CampusConfig(width_m=area_m, height_m=area_m,
                          ap_count=ap_count)
    access_points, truth_db = generate_campus(config, campus_rng)

    medium = Medium(propagation=FreeSpaceModel())
    center = Point(area_m / 2.0, area_m / 2.0)
    sniffer = build_marauder_sniffer(center, medium)
    world = CampusWorld(access_points, medium, sniffer=sniffer, seed=seed)

    # The victim: an aggressive scanner walking a rectangular loop.
    margin = 0.15 * area_m
    loop = [
        Point(margin, margin), Point(area_m - margin, margin),
        Point(area_m - margin, area_m - margin),
        Point(margin, area_m - margin), Point(margin, margin),
    ]
    victim_route = FixedRoute(loop, speed_m_s=1.4)
    victim = MobileStation(
        mac=MacAddress.random(station_rng),
        position=loop[0],
        profile=PROFILES["aggressive"],
        preferred_networks=[Ssid("home-wifi-42"), Ssid("CoffeeShopFree")],
    )
    world.add_station(victim, victim_route)

    for walker_rng in walk_rngs:
        profile_name = ["aggressive", "standard", "standard",
                        "conservative"][int(walker_rng.integers(0, 4))]
        walker = RandomWaypoint(0.0, 0.0, area_m, area_m, walker_rng)
        station = MobileStation(
            mac=MacAddress.random(walker_rng),
            position=walker.position,
            profile=PROFILES[profile_name],
        )
        world.add_station(station, walker)

    return AttackScenario(world=world, truth_db=truth_db,
                          access_points=access_points, victim=victim,
                          victim_route=victim_route, seed=seed)


def build_urban_scenario(seed: int = 38, ap_count: int = 90,
                         area_m: float = 500.0,
                         bystander_count: int = 8,
                         block_size_m: float = 70.0,
                         street_width_m: float = 30.0,
                         building_loss_db: float = 14.0
                         ) -> AttackScenario:
    """A GWU-style dense-urban scenario: a Manhattan grid of buildings.

    The paper's second campus sits in downtown Washington; urban
    blockage is exactly why it dismisses signal-strength/AOA methods
    ("obstructing buildings often prevent the signal strength and AOA
    from being accurately measured") while the disc-model attack, which
    only needs *whether* frames arrive, keeps working.  The medium is a
    log-distance channel (n = 2.8) plus per-building penetration loss;
    the victim walks the streets.
    """
    rng = make_rng(seed)
    campus_rng, station_rng, *walk_rngs = spawn_rngs(
        rng, 2 + bystander_count)
    config = CampusConfig(width_m=area_m, height_m=area_m,
                          ap_count=ap_count)
    access_points, truth_db = generate_campus(config, campus_rng)

    terrain = Terrain()
    pitch = block_size_m + street_width_m
    count = int(area_m // pitch)
    for i in range(count):
        for j in range(count):
            x0 = street_width_m + i * pitch
            y0 = street_width_m + j * pitch
            terrain.add_building(Building(
                x0, y0, x0 + block_size_m, y0 + block_size_m,
                loss_db=building_loss_db))
    medium = Medium(ObstructedModel(LogDistanceModel(exponent=2.8),
                                    terrain.obstruction_db))
    center = Point(area_m / 2.0, area_m / 2.0)
    sniffer = build_marauder_sniffer(center, medium)
    world = CampusWorld(access_points, medium, sniffer=sniffer, seed=seed)

    # The victim walks the street grid (between the building rows).
    street_y = street_width_m / 2.0
    loop = [
        Point(street_width_m / 2.0, street_y),
        Point(area_m - street_width_m / 2.0, street_y),
        Point(area_m - street_width_m / 2.0, area_m / 2.0),
        Point(street_width_m / 2.0, area_m / 2.0),
        Point(street_width_m / 2.0, street_y),
    ]
    victim_route = FixedRoute(loop, speed_m_s=1.4)
    victim = MobileStation(
        mac=MacAddress.random(station_rng),
        position=loop[0],
        profile=PROFILES["aggressive"],
        preferred_networks=[Ssid("dc-home"), Ssid("gwu-guest")],
    )
    world.add_station(victim, victim_route)
    for walker_rng in walk_rngs:
        walker = RandomWaypoint(0.0, 0.0, area_m, area_m, walker_rng)
        world.add_station(MobileStation(
            mac=MacAddress.random(walker_rng),
            position=walker.position,
            profile=PROFILES["standard"],
        ), walker)

    return AttackScenario(world=world, truth_db=truth_db,
                          access_points=access_points, victim=victim,
                          victim_route=victim_route, seed=seed)


@dataclass
class DiscModelExperiment:
    """Everything the Fig 13–17 benches consume."""

    truth_db: ApDatabase            # exact locations + true radii
    mloc_db: ApDatabase             # noisy locations + measured radii
    location_db: ApDatabase         # noisy locations only (WiGLE view)
    cases: List[TestCase]           # victim test points with true Γ
    corpus: List[Set[MacAddress]]   # observation corpus for the AP-Rad LP
    training_points: List[Point]    # wardriving route for AP-Loc
    r_max: float
    area_m: float
    #: Recommended AP-Rad settings for this corpus size (see
    #: :class:`repro.localization.radius_lp.RadiusEstimator`).
    aprad_min_evidence: int = 2
    aprad_overestimate: float = 1.2

    def make_aprad(self, solver: str = "scipy"):
        """An :class:`~repro.localization.aprad.APRad` wired with the
        scenario's recommended settings (not yet fitted)."""
        from repro.localization import make_localizer

        return make_localizer(
            "ap-rad", database=self.location_db, r_max=self.r_max,
            solver=solver, min_evidence=self.aprad_min_evidence,
            overestimate_factor=self.aprad_overestimate)


def build_disc_model_experiment(
    seed: int = 11,
    ap_count: int = 420,
    area_m: float = 500.0,
    range_min_m: float = 25.0,
    range_max_m: float = 60.0,
    cluster_fraction: float = 0.75,
    cluster_sigma_m: float = 20.0,
    case_count: int = 120,
    extra_corpus: int = 800,
    detection_prob: float = 0.95,
    position_noise_sigma_m: float = 2.0,
    range_noise_frac: float = 0.04,
    range_bias_frac: float = 0.08,
    r_max: float = 80.0,
    training_rows: int = 5,
    training_points_per_row: int = 8,
) -> DiscModelExperiment:
    """Build the disc-model accuracy experiment.

    * Test cases sample the campus interior (a margin keeps the victim
      inside AP coverage, as the paper's walks stayed on campus).
    * The adversary's M-Loc knowledge adds Gaussian noise to positions
      ("WiGLE locations are trilaterated estimates") and multiplicative
      noise to radii ("we obtain the maximum transmission distances ...
      by measuring such distance while traveling around").  Measured
      radii carry a systematic ``range_bias_frac`` overestimate — the
      paper's own recommendation, since Theorem 3 shows underestimates
      collapse the coverage probability.
    * Each AP in a true Γ is *detected* with ``detection_prob`` — the
      sniffer misses some probe responses.
    """
    rng = make_rng(seed)
    campus_rng, noise_rng, case_rng, corpus_rng, drop_rng = spawn_rngs(rng, 5)
    config = CampusConfig(width_m=area_m, height_m=area_m,
                          ap_count=ap_count,
                          range_min_m=range_min_m,
                          range_max_m=range_max_m,
                          cluster_fraction=cluster_fraction,
                          cluster_sigma_m=cluster_sigma_m)
    _, truth_db = generate_campus(config, campus_rng)

    # Adversary knowledge: noisy positions; measured (noisy) radii for
    # M-Loc; no radii at all for AP-Rad.
    noisy_db = truth_db.with_position_noise(noise_rng, position_noise_sigma_m)
    mloc_records = []
    for record in noisy_db:
        true_range = truth_db.get(record.bssid).max_range_m
        factor = max(0.5, 1.0 + range_bias_frac
                     + float(noise_rng.normal(0.0, range_noise_frac)))
        mloc_records.append(replace(record,
                                    max_range_m=true_range * factor))
    mloc_db = ApDatabase(mloc_records)
    location_db = noisy_db.without_ranges()

    margin = 0.18 * area_m

    def sample_point(generator: np.random.Generator,
                     border: float = margin) -> Point:
        return Point(float(generator.uniform(border, area_m - border)),
                     float(generator.uniform(border, area_m - border)))

    def observed_gamma(point: Point,
                       generator: np.random.Generator) -> Set[MacAddress]:
        true_gamma = truth_db.observable_from(point)
        return {bssid for bssid in true_gamma
                if generator.random() < detection_prob}

    cases: List[TestCase] = []
    while len(cases) < case_count:
        point = sample_point(case_rng)
        gamma = observed_gamma(point, drop_rng)
        if gamma:
            cases.append(TestCase.of(gamma, point))

    # The corpus must sweep the *whole* campus: co-observation evidence
    # for border APs only exists if mobiles are observed near them
    # ("over a sufficient amount of time" implies full spatial mixing).
    corpus: List[Set[MacAddress]] = [set(case.observed) for case in cases]
    for _ in range(extra_corpus):
        gamma = observed_gamma(sample_point(corpus_rng, border=0.0),
                               drop_rng)
        if gamma:
            corpus.append(gamma)

    training_points = grid_route(margin, margin, area_m - margin,
                                 area_m - margin, rows=training_rows,
                                 points_per_row=training_points_per_row)

    return DiscModelExperiment(
        truth_db=truth_db, mloc_db=mloc_db, location_db=location_db,
        cases=cases, corpus=corpus, training_points=training_points,
        r_max=r_max, area_m=area_m)
