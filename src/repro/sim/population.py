"""The 7-day office population model (feasibility study, Figs 10–11).

The paper monitored an office at UML with a frequency-hopping card from
Oct 24 to Oct 30, 2008 and reports:

* more mobiles on weekdays than weekends (students bring laptops),
* probing percentage above 50 % every day,
* probing percentage *lower* on weekdays than weekends (the weekday
  population is dominated by laptops that sit associated to the campus
  network, sending data rather than probe requests; weekend devices are
  transient and keep scanning), peaking at 91.61 % on Oct 25 — a
  Saturday.

The model: each present device draws an OS scan profile from a
day-type-dependent mix; a device counts as *found* when the sniffer
captures any of its traffic over the day (near-certain for an
hours-long presence) and as *probing* when its profile actively scans.
The active attack converts non-probing-but-associated devices by
deauth-forcing a rescan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

#: Oct 24, 2008 was a Friday; the study window is Fri..Thu.
WEEK_LABELS = (
    ("Oct 24", "Fri"), ("Oct 25", "Sat"), ("Oct 26", "Sun"),
    ("Oct 27", "Mon"), ("Oct 28", "Tue"), ("Oct 29", "Wed"),
    ("Oct 30", "Thu"),
)

WEEKEND_DAYS = {"Sat", "Sun"}


@dataclass
class PopulationConfig:
    """Knobs of the weekly population model."""

    weekday_mobiles_mean: float = 110.0
    weekend_mobiles_mean: float = 30.0
    #: Probability a weekday device is an active scanner (the rest sit
    #: associated and only send data).
    weekday_probing_prob: float = 0.62
    #: Weekend (transient) devices scan almost constantly.
    weekend_probing_prob: float = 0.90
    #: Chance the sniffer captures at least one frame from a present
    #: device over a whole day (high: hours of presence vs. 4 s dwells).
    detection_prob: float = 0.97
    #: Chance a spoofed deauth converts a non-probing associated device
    #: into a probing one (the active attack).
    active_attack_success: float = 0.85

    def __post_init__(self) -> None:
        for name in ("weekday_probing_prob", "weekend_probing_prob",
                     "detection_prob", "active_attack_success"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.weekday_mobiles_mean <= 0 or self.weekend_mobiles_mean <= 0:
            raise ValueError("population means must be > 0")


@dataclass
class DayStats:
    """One day of the Fig 10/11 statistics."""

    label: str
    weekday: str
    found_mobiles: int
    probing_mobiles: int

    @property
    def is_weekend(self) -> bool:
        return self.weekday in WEEKEND_DAYS

    @property
    def probing_percentage(self) -> float:
        """The Fig 11 metric, in percent."""
        if self.found_mobiles == 0:
            return 0.0
        return 100.0 * self.probing_mobiles / self.found_mobiles


def simulate_week(config: PopulationConfig, rng: np.random.Generator,
                  active_attack: bool = False) -> List[DayStats]:
    """Simulate the seven monitored days.

    With ``active_attack=True``, non-probing devices are additionally
    converted with ``active_attack_success`` probability — the ablation
    showing how the active attack lifts the Fig 11 percentages.
    """
    stats: List[DayStats] = []
    for label, weekday in WEEK_LABELS:
        weekend = weekday in WEEKEND_DAYS
        mean = (config.weekend_mobiles_mean if weekend
                else config.weekday_mobiles_mean)
        probing_prob = (config.weekend_probing_prob if weekend
                        else config.weekday_probing_prob)
        present = int(rng.poisson(mean))
        found = 0
        probing = 0
        for _ in range(present):
            if rng.random() >= config.detection_prob:
                continue  # never captured: invisible to the sniffer
            found += 1
            probes = rng.random() < probing_prob
            # Always consume the conversion draw so the same seed yields
            # the same population with and without the active attack —
            # the ablation then isolates the attack's effect.
            converted = rng.random() < config.active_attack_success
            if not probes and active_attack and converted:
                probes = True
            if probes:
                probing += 1
        stats.append(DayStats(label=label, weekday=weekday,
                              found_mobiles=found,
                              probing_mobiles=probing))
    return stats


def weekly_summary(stats: List[DayStats]) -> Dict[str, float]:
    """Aggregate checks the paper states in prose."""
    weekday_found = [s.found_mobiles for s in stats if not s.is_weekend]
    weekend_found = [s.found_mobiles for s in stats if s.is_weekend]
    percentages = [s.probing_percentage for s in stats]
    return {
        "mean_weekday_mobiles": float(np.mean(weekday_found)),
        "mean_weekend_mobiles": float(np.mean(weekend_found)),
        "min_probing_percentage": float(min(percentages)),
        "max_probing_percentage": float(max(percentages)),
        "all_days_above_50": float(all(p > 50.0 for p in percentages)),
    }
