"""Terrain: obstruction losses from hills and buildings.

The paper's Fig 12 observation — "'HG2415U' can cover as large an area
as 'LNA'.  This is due to the geographical feature of the area.  The
area is not flat and the sniffer is obstructed by small hills." — means
coverage is terrain-limited, not budget-limited, beyond some distance.

:class:`Terrain` holds a set of :class:`Hill` obstacles; a radio path
crossing a hill's footprint picks up that hill's loss.  The object
plugs into :class:`repro.radio.propagation.ObstructedModel` as the
``obstruction_db`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.geometry.point import Point


@dataclass(frozen=True)
class Hill:
    """A circular obstacle with a diffraction/penetration loss in dB."""

    center: Point
    radius_m: float
    loss_db: float

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ValueError(f"hill radius must be > 0, got {self.radius_m}")
        if self.loss_db < 0.0:
            raise ValueError(f"hill loss must be >= 0, got {self.loss_db}")

    def blocks(self, tx: Point, rx: Point) -> bool:
        """True when the tx→rx segment crosses the hill footprint.

        Endpoints sitting inside the footprint do not count as blocked
        — a device *on* the hill still talks to its neighborhood.
        """
        if (tx.distance_to(self.center) < self.radius_m
                or rx.distance_to(self.center) < self.radius_m):
            return False
        return _segment_distance(tx, rx, self.center) < self.radius_m


@dataclass(frozen=True)
class Building:
    """An axis-aligned rectangular obstacle (urban-canyon walls).

    The paper's urban discussion ("obstructing buildings often prevent
    the signal strength and AOA from being accurately measured") is
    what makes signal-strength-free localization attractive; buildings
    here provide the matching simulated environment for GWU-style
    dense-urban scenarios.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    loss_db: float

    def __post_init__(self) -> None:
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ValueError("degenerate building rectangle")
        if self.loss_db < 0.0:
            raise ValueError(f"building loss must be >= 0, got {self.loss_db}")

    def contains(self, point: Point) -> bool:
        return (self.min_x <= point.x <= self.max_x
                and self.min_y <= point.y <= self.max_y)

    def blocks(self, tx: Point, rx: Point) -> bool:
        """True when the tx→rx segment crosses the building.

        Endpoints inside the building don't count as blocked (a device
        indoors still talks through its own walls via the base loss).
        """
        if self.contains(tx) or self.contains(rx):
            return False
        return _segment_hits_rect(tx, rx, self.min_x, self.min_y,
                                  self.max_x, self.max_y)


@dataclass
class Terrain:
    """Hills and buildings; total obstruction sums the crossed losses."""

    hills: List[Hill] = field(default_factory=list)
    buildings: List[Building] = field(default_factory=list)

    def add_hill(self, hill: Hill) -> None:
        self.hills.append(hill)

    def add_building(self, building: Building) -> None:
        self.buildings.append(building)

    def obstruction_db(self, tx: Point, rx: Point) -> float:
        """Total obstruction loss along the path, in dB."""
        total = sum(hill.loss_db for hill in self.hills
                    if hill.blocks(tx, rx))
        total += sum(building.loss_db for building in self.buildings
                     if building.blocks(tx, rx))
        return total

    def line_of_sight(self, tx: Point, rx: Point) -> bool:
        """True when no obstacle lies between the endpoints."""
        return self.obstruction_db(tx, rx) == 0.0


def _segment_hits_rect(a: Point, b: Point, min_x: float, min_y: float,
                       max_x: float, max_y: float) -> bool:
    """Liang-Barsky style segment/AABB intersection test."""
    dx = b.x - a.x
    dy = b.y - a.y
    t0, t1 = 0.0, 1.0
    for p, q in ((-dx, a.x - min_x), (dx, max_x - a.x),
                 (-dy, a.y - min_y), (dy, max_y - a.y)):
        if p == 0.0:
            if q < 0.0:
                return False  # parallel and outside
            continue
        t = q / p
        if p < 0.0:
            if t > t1:
                return False
            t0 = max(t0, t)
        else:
            if t < t0:
                return False
            t1 = min(t1, t)
    return t0 <= t1


def _segment_distance(a: Point, b: Point, p: Point) -> float:
    """Distance from point ``p`` to the segment ``a``–``b``."""
    ab_x = b.x - a.x
    ab_y = b.y - a.y
    length_sq = ab_x * ab_x + ab_y * ab_y
    if length_sq <= 0.0:
        return p.distance_to(a)
    t = ((p.x - a.x) * ab_x + (p.y - a.y) * ab_y) / length_sq
    t = min(1.0, max(0.0, t))
    closest = Point(a.x + t * ab_x, a.y + t * ab_y)
    return p.distance_to(closest)
