"""Campus generator: AP layouts matching the paper's measurements.

Two measured facts anchor the generator:

* the channel distribution (paper Fig 8): "most APs (93.7 %) use
  Channels 1, 6 and 11",
* AP placement on a campus is *clustered* — APs concentrate in
  buildings — which is exactly the "biased AP distribution" of Fig 4
  that breaks the Centroid baseline while leaving disc-intersection
  intact.

:func:`generate_campus` produces the simulated APs plus the ground-truth
knowledge base (locations *and* true maximum transmission distances);
benches then degrade that knowledge (noise, dropped radii) to match each
algorithm's scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.net80211.ap import AccessPoint
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid

#: Channel weights reproducing the ~93.7 % mass on 1/6/11 (Fig 8); the
#: remainder spreads thinly over the other eight channels.
DEFAULT_CHANNEL_WEIGHTS: Dict[int, float] = {
    1: 0.302, 6: 0.372, 11: 0.263,
    2: 0.008, 3: 0.010, 4: 0.007, 5: 0.006,
    7: 0.008, 8: 0.007, 9: 0.009, 10: 0.008,
}

_SSID_STEMS = (
    "linksys", "NETGEAR", "dlink", "default", "CampusNet", "eduroam",
    "UML-Guest", "CS-Lab", "home-wifi", "belkin54g", "2WIRE", "actiontec",
)


@dataclass
class CampusConfig:
    """Parameters of a generated campus.

    ``cluster_fraction`` of the APs land inside Gaussian building
    clusters; the rest are uniform over the area.  Ranges are drawn
    uniformly in ``[range_min_m, range_max_m]`` — commodity 802.11g APs
    with mixed indoor/outdoor placement.
    """

    width_m: float = 1000.0
    height_m: float = 1000.0
    ap_count: int = 120
    cluster_count: int = 6
    cluster_fraction: float = 0.6
    cluster_sigma_m: float = 40.0
    range_min_m: float = 40.0
    range_max_m: float = 120.0
    channel_weights: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_CHANNEL_WEIGHTS))

    def __post_init__(self) -> None:
        if self.ap_count < 1:
            raise ValueError(f"ap_count must be >= 1, got {self.ap_count}")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        if not 0.0 < self.range_min_m <= self.range_max_m:
            raise ValueError("need 0 < range_min_m <= range_max_m")
        total = sum(self.channel_weights.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"channel weights must sum to 1, got {total:.6f}")


def generate_campus(config: CampusConfig, rng: np.random.Generator
                    ) -> Tuple[List[AccessPoint], ApDatabase]:
    """Generate the campus APs and the ground-truth knowledge base."""
    cluster_centers = [
        Point(float(rng.uniform(0.1 * config.width_m, 0.9 * config.width_m)),
              float(rng.uniform(0.1 * config.height_m,
                                0.9 * config.height_m)))
        for _ in range(max(1, config.cluster_count))
    ]
    channels = list(config.channel_weights.keys())
    weights = np.array([config.channel_weights[c] for c in channels])
    weights = weights / weights.sum()

    access_points: List[AccessPoint] = []
    records: List[ApRecord] = []
    for index in range(config.ap_count):
        position = _draw_position(config, cluster_centers, rng)
        channel = int(rng.choice(channels, p=weights))
        max_range = float(rng.uniform(config.range_min_m,
                                      config.range_max_m))
        bssid = MacAddress.random(rng)
        ssid = _draw_ssid(index, rng)
        access_points.append(AccessPoint(
            bssid=bssid, ssid=ssid, channel=channel, position=position,
            max_range_m=max_range))
        records.append(ApRecord(
            bssid=bssid, ssid=ssid, location=position,
            max_range_m=max_range, channel=channel))
    return access_points, ApDatabase(records)


def channel_histogram(access_points: List[AccessPoint]) -> Dict[int, int]:
    """AP count per channel — the Fig 8 histogram."""
    histogram: Dict[int, int] = {}
    for ap in access_points:
        histogram[ap.channel] = histogram.get(ap.channel, 0) + 1
    return dict(sorted(histogram.items()))


def non_overlapping_share(access_points: List[AccessPoint]) -> float:
    """Fraction of APs on channels 1/6/11 (the paper reports 93.7 %)."""
    if not access_points:
        return 0.0
    on_136_11 = sum(1 for ap in access_points if ap.channel in (1, 6, 11))
    return on_136_11 / len(access_points)


def _draw_position(config: CampusConfig, clusters: List[Point],
                   rng: np.random.Generator) -> Point:
    if rng.random() < config.cluster_fraction:
        center = clusters[int(rng.integers(0, len(clusters)))]
        for _ in range(64):
            x = float(rng.normal(center.x, config.cluster_sigma_m))
            y = float(rng.normal(center.y, config.cluster_sigma_m))
            if 0.0 <= x <= config.width_m and 0.0 <= y <= config.height_m:
                return Point(x, y)
        # Cluster hugs a border: fall back to clamping.
        return Point(min(config.width_m, max(0.0, x)),
                     min(config.height_m, max(0.0, y)))
    return Point(float(rng.uniform(0.0, config.width_m)),
                 float(rng.uniform(0.0, config.height_m)))


def _draw_ssid(index: int, rng: np.random.Generator) -> Ssid:
    stem = _SSID_STEMS[int(rng.integers(0, len(_SSID_STEMS)))]
    return Ssid(f"{stem}-{index:03d}")
