"""The campus world: the event loop of the whole attack simulation.

Each simulation step:

1. stations move (fixed routes or random waypoint),
2. the active attacker (if armed) injects spoofed deauthentications,
   which reach stations in its transmit range and force rescans,
3. stations tick their scan state machines, emitting probe requests,
4. every emitted probe is offered to the sniffer, and every AP on the
   probed channel whose coverage disc contains the station answers with
   a probe response — also offered to the sniffer,
5. ground-truth positions are recorded for later error measurement.

The sniffer's observation store ends up holding exactly what a real
deployment would: per-mobile communicable-AP sets assembled from
captured probe responses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.geometry.point import Point
from repro.net80211.ap import AccessPoint
from repro.net80211.frames import Dot11Frame
from repro.net80211.medium import Medium
from repro.net80211.station import MobileStation
from repro.numerics.rng import make_rng
from repro.sim.mobility import FixedRoute, RandomWaypoint
from repro.sniffer.active import ActiveAttacker
from repro.sniffer.capture import Sniffer

Mobility = Union[FixedRoute, RandomWaypoint, None]


@dataclass(frozen=True)
class GroundTruth:
    """Where a mobile really was at a point in time."""

    timestamp: float
    mobile: "object"  # MacAddress; typed loosely to avoid import cycle
    position: Point


class CampusWorld:
    """The simulated campus tying all actors together."""

    def __init__(self, access_points: Sequence[AccessPoint],
                 medium: Medium, sniffer: Optional[Sniffer] = None,
                 seed: Optional[int] = None,
                 attacker_range_m: float = 300.0):
        self.access_points = list(access_points)
        self.medium = medium
        self.sniffer = sniffer
        self.rng = make_rng(seed)
        self.attacker: Optional[ActiveAttacker] = None
        self.attacker_interval_s: float = 60.0
        self.attacker_range_m = attacker_range_m
        self._next_attack_at = 0.0
        self._stations: List[MobileStation] = []
        self._mobility: Dict[int, Mobility] = {}
        self._route_start: Dict[int, float] = {}
        self.truths: List[GroundTruth] = []
        self.now = 0.0
        self._aps_by_channel: Dict[int, List[AccessPoint]] = defaultdict(list)
        for ap in self.access_points:
            self._aps_by_channel[ap.channel].append(ap)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def add_station(self, station: MobileStation,
                    mobility: Mobility = None) -> None:
        """Register a mobile device, optionally with a mobility model."""
        index = len(self._stations)
        station.schedule_first_scan(self.rng)
        self._stations.append(station)
        self._mobility[index] = mobility
        self._route_start[index] = self.now

    def arm_attacker(self, attacker: ActiveAttacker,
                     interval_s: float = 60.0,
                     targeted: bool = False) -> None:
        """Enable the active attack with a deauth cadence.

        ``targeted=True`` uses the associations the sniffer learned from
        captured data frames to forge per-station deauths (quieter than
        spraying broadcast deauths in every AP's name); stations the
        store has not yet seen still receive broadcast deauths.
        """
        if interval_s <= 0.0:
            raise ValueError(f"interval must be > 0 s, got {interval_s}")
        self.attacker = attacker
        self.attacker_interval_s = interval_s
        self.attacker_targeted = targeted
        self._next_attack_at = self.now

    @property
    def stations(self) -> List[MobileStation]:
        return list(self._stations)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, duration_s: float, step_s: float = 1.0,
            record_truth: bool = True) -> None:
        """Advance the world by ``duration_s`` in ``step_s`` increments."""
        if duration_s < 0.0 or step_s <= 0.0:
            raise ValueError("need duration >= 0 and step > 0")
        steps = int(round(duration_s / step_s))
        for _ in range(steps):
            self._step(step_s, record_truth)

    def _step(self, step_s: float, record_truth: bool) -> None:
        self.now += step_s
        self._move_stations(step_s)
        if self.attacker is not None and self.now >= self._next_attack_at:
            self._run_active_attack()
            self._next_attack_at = self.now + self.attacker_interval_s
        for station in self._stations:
            for frame in station.tick(self.now):
                self._transmit_from_station(station, frame)
        if record_truth:
            for station in self._stations:
                self.truths.append(GroundTruth(
                    self.now, station.mac, station.position))

    def _move_stations(self, step_s: float) -> None:
        for index, station in enumerate(self._stations):
            mobility = self._mobility[index]
            if mobility is None:
                continue
            if isinstance(mobility, RandomWaypoint):
                station.move_to(mobility.step(step_s))
            elif isinstance(mobility, FixedRoute):
                elapsed = self.now - self._route_start[index]
                station.move_to(mobility.position_at(elapsed))

    def _run_active_attack(self) -> None:
        """Spoof deauthentications (targeted where possible).

        Stations accept a deauth when it is addressed to them (or
        broadcast) from their associated BSS and the attacker is within
        radio range of the station.
        """
        assert self.attacker is not None
        targeted_macs = set()
        if (getattr(self, "attacker_targeted", False)
                and self.sniffer is not None):
            associations = self.sniffer.store.known_associations()
            frames = self.attacker.craft_deauths(associations, self.now)
            by_destination = {frame.destination: frame
                              for frame in frames}
            targeted_macs = set(by_destination)
            for station in self._stations:
                frame = by_destination.get(station.mac)
                if frame is None:
                    continue
                if (self.attacker.position.distance_to(station.position)
                        <= self.attacker_range_m):
                    station.handle_frame(frame, self.now)
        for ap in self.access_points:
            frame = self.attacker.craft_broadcast_deauth(
                ap.bssid, ap.channel, self.now)
            for station in self._stations:
                if station.mac in targeted_macs:
                    continue  # already handled by the targeted frame
                if (station.associated_bssid == ap.bssid
                        and self.attacker.position.distance_to(
                            station.position) <= self.attacker_range_m):
                    station.handle_frame(frame, self.now)

    def _transmit_from_station(self, station: MobileStation,
                               frame: Dot11Frame) -> None:
        if self.sniffer is not None:
            self.sniffer.hear(frame, station.position, self.rng)
        if not frame.is_probe_request:
            return
        # Ground-truth communicability: APs on the probed channel whose
        # coverage disc contains the station answer.
        responders: List[AccessPoint] = []
        for ap in self._aps_by_channel.get(frame.channel, []):
            if not ap.covers(station.position):
                continue
            response = ap.respond_to_probe(frame, self.now)
            if response is None:
                continue
            responders.append(ap)
            if self.sniffer is not None:
                self.sniffer.hear(response, ap.position, self.rng)
        # Supplicant behaviour: an unassociated auto-associating station
        # joins the closest AP that answered its probe, via the on-air
        # auth/assoc handshake (which the sniffer can also capture).
        if (responders and getattr(station, "auto_associate", False)
                and station.associated_bssid is None):
            closest = min(responders,
                          key=lambda ap: ap.position.distance_to(
                              station.position))
            self._perform_association(station, closest)

    def _perform_association(self, station: MobileStation,
                             ap) -> None:
        from repro.net80211.frames import association_request, authentication

        auth = authentication(station.mac, ap.bssid, ap.channel, self.now)
        request = association_request(station.mac, ap.bssid, ap.channel,
                                      self.now, ap.ssid)
        if self.sniffer is not None:
            self.sniffer.hear(auth, station.position, self.rng)
            self.sniffer.hear(request, station.position, self.rng)
        response = ap.handle_association(request, self.now)
        if response is not None and self.sniffer is not None:
            self.sniffer.hear(response, ap.position, self.rng)
        station.associate(ap.bssid, ap.channel)

    # ------------------------------------------------------------------
    # Ground-truth queries (for evaluation only)
    # ------------------------------------------------------------------

    def true_gamma(self, position: Point) -> set:
        """The exact communicable-AP set at a position (disc model)."""
        return {ap.bssid for ap in self.access_points
                if ap.covers(position)}

    def truth_at(self, mobile, timestamp: float,
                 tolerance_s: float = 0.5) -> Optional[Point]:
        """The recorded true position of ``mobile`` near ``timestamp``."""
        best: Optional[GroundTruth] = None
        for truth in self.truths:
            if truth.mobile != mobile:
                continue
            if abs(truth.timestamp - timestamp) <= tolerance_s:
                if (best is None or abs(truth.timestamp - timestamp)
                        < abs(best.timestamp - timestamp)):
                    best = truth
        return best.position if best else None
