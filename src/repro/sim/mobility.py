"""Mobility models: fixed routes and random waypoint.

Routes serve two roles in the reproduction: the victim's walk around
campus (the Fig 13–16 test points — "a mobile device is carried around
the campus") and the adversary's wardriving path (the AP-Loc training
route — "traveling around the neighborhood").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.geometry.point import Point


@dataclass
class FixedRoute:
    """Piecewise-linear motion through waypoints at constant speed."""

    waypoints: Sequence[Point]
    speed_m_s: float = 1.4  # walking pace

    def __post_init__(self) -> None:
        if len(self.waypoints) < 1:
            raise ValueError("route needs at least one waypoint")
        if self.speed_m_s <= 0.0:
            raise ValueError(f"speed must be > 0, got {self.speed_m_s}")
        self._cumulative: List[float] = [0.0]
        for i in range(1, len(self.waypoints)):
            step = self.waypoints[i - 1].distance_to(self.waypoints[i])
            self._cumulative.append(self._cumulative[-1] + step)

    @property
    def length_m(self) -> float:
        return self._cumulative[-1]

    @property
    def duration_s(self) -> float:
        return self.length_m / self.speed_m_s

    def position_at(self, time_s: float) -> Point:
        """Position after walking for ``time_s`` (clamps at the ends)."""
        if time_s <= 0.0 or len(self.waypoints) == 1:
            return self.waypoints[0]
        distance = min(self.length_m, time_s * self.speed_m_s)
        # Find the segment containing this arc length.
        for i in range(1, len(self.waypoints)):
            if distance <= self._cumulative[i] or i == len(self.waypoints) - 1:
                segment_len = self._cumulative[i] - self._cumulative[i - 1]
                if segment_len <= 0.0:
                    return self.waypoints[i]
                t = (distance - self._cumulative[i - 1]) / segment_len
                t = min(1.0, max(0.0, t))
                a, b = self.waypoints[i - 1], self.waypoints[i]
                return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
        return self.waypoints[-1]


@dataclass
class RandomWaypoint:
    """The classic random-waypoint model inside a rectangle.

    Deterministic given the generator: each device gets its own child
    stream from :func:`repro.numerics.rng.spawn_rngs`.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    rng: np.random.Generator
    speed_m_s: float = 1.4
    pause_s: float = 5.0
    _position: Point = field(init=False)
    _target: Point = field(init=False)
    _pause_left: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ValueError("degenerate rectangle for RandomWaypoint")
        self._position = self._random_point()
        self._target = self._random_point()

    def _random_point(self) -> Point:
        return Point(float(self.rng.uniform(self.min_x, self.max_x)),
                     float(self.rng.uniform(self.min_y, self.max_y)))

    @property
    def position(self) -> Point:
        return self._position

    def step(self, dt_s: float) -> Point:
        """Advance the walker by ``dt_s`` seconds; returns new position."""
        if dt_s < 0.0:
            raise ValueError(f"dt must be >= 0, got {dt_s}")
        remaining = dt_s
        while remaining > 0.0:
            if self._pause_left > 0.0:
                pause = min(self._pause_left, remaining)
                self._pause_left -= pause
                remaining -= pause
                continue
            to_target = self._position.distance_to(self._target)
            if to_target < 1e-9:
                self._target = self._random_point()
                self._pause_left = self.pause_s
                continue
            travel = self.speed_m_s * remaining
            if travel >= to_target:
                self._position = self._target
                remaining -= to_target / self.speed_m_s
                self._pause_left = self.pause_s
                self._target = self._random_point()
            else:
                t = travel / to_target
                self._position = Point(
                    self._position.x + t * (self._target.x - self._position.x),
                    self._position.y + t * (self._target.y - self._position.y))
                remaining = 0.0
        return self._position


def grid_route(min_x: float, min_y: float, max_x: float, max_y: float,
               rows: int, points_per_row: int) -> List[Point]:
    """A boustrophedon ("lawnmower") sweep — the wardriving route.

    Covers the rectangle in ``rows`` horizontal passes, alternating
    direction, with ``points_per_row`` stops per pass.
    """
    if rows < 1 or points_per_row < 2:
        raise ValueError("need rows >= 1 and points_per_row >= 2")
    route: List[Point] = []
    for row in range(rows):
        y = min_y if rows == 1 else min_y + (max_y - min_y) * row / (rows - 1)
        xs = np.linspace(min_x, max_x, points_per_row)
        if row % 2 == 1:
            xs = xs[::-1]
        route.extend(Point(float(x), float(y)) for x in xs)
    return route
