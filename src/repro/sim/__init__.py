"""The campus world simulator — the stand-in for the paper's field tests.

The paper evaluated on two real campuses (UML, GWU).  We replace the
field environment with a reproducible discrete-event world:

* :mod:`repro.sim.terrain` — hills/buildings adding obstruction loss
  (the Fig 12 effect that flattens the LNA advantage),
* :mod:`repro.sim.campus` — AP layout generator matching the measured
  channel distribution (93.7 % on 1/6/11) with clustered placement
  (the biased distributions of Fig 4),
* :mod:`repro.sim.mobility` — routes and random-waypoint walks,
* :mod:`repro.sim.world` — the event loop tying stations, APs, medium,
  sniffer, and active attacker together,
* :mod:`repro.sim.population` — the 7-day office population model
  behind the Fig 10/11 probing statistics,
* :mod:`repro.sim.scenarios` — canned configurations used by the
  benches and examples.
"""

from repro.sim.terrain import Building, Hill, Terrain
from repro.sim.campus import CampusConfig, generate_campus
from repro.sim.mobility import FixedRoute, RandomWaypoint, grid_route
from repro.sim.world import CampusWorld, GroundTruth
from repro.sim.population import DayStats, PopulationConfig, simulate_week
from repro.sim.scenarios import build_attack_scenario, build_urban_scenario

__all__ = [
    "Terrain",
    "Hill",
    "Building",
    "CampusConfig",
    "generate_campus",
    "FixedRoute",
    "RandomWaypoint",
    "grid_route",
    "CampusWorld",
    "GroundTruth",
    "PopulationConfig",
    "DayStats",
    "simulate_week",
    "build_attack_scenario",
    "build_urban_scenario",
]
