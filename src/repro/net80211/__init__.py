"""802.11 substrate: frames, devices, and the wireless medium.

The Marauder's-map attack consumes 802.11 *management traffic* — probe
requests broadcast by mobile devices, probe responses and beacons from
APs, and (for the active attack) spoofed deauthentication frames.  This
package models exactly that slice of the protocol:

* :mod:`repro.net80211.mac` / :mod:`repro.net80211.ssid` — identifiers,
* :mod:`repro.net80211.frames` — management-frame dataclasses,
* :mod:`repro.net80211.ap` — access-point behaviour (beacons, probe
  responses, maximum transmission distance),
* :mod:`repro.net80211.station` — mobile-station scanning state machine
  (active/passive scanners, preferred-network lists, deauth-triggered
  rescans),
* :mod:`repro.net80211.medium` — frame delivery through a propagation
  model, SNR, and the cross-channel decode model,
* :mod:`repro.net80211.capture_file` — deprecated capture I/O shims;
  capture persistence lives in :mod:`repro.capture` now.
"""

from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.ssid import Ssid
from repro.net80211.frames import (
    Dot11Frame,
    FrameType,
    beacon,
    deauthentication,
    probe_request,
    probe_response,
)
from repro.net80211.ap import AccessPoint
from repro.net80211.station import MobileStation, ScanProfile
from repro.net80211.medium import Medium, ReceivedFrame

__all__ = [
    "MacAddress",
    "BROADCAST_MAC",
    "Ssid",
    "FrameType",
    "Dot11Frame",
    "probe_request",
    "probe_response",
    "beacon",
    "deauthentication",
    "AccessPoint",
    "MobileStation",
    "ScanProfile",
    "Medium",
    "ReceivedFrame",
    "CaptureWriter",
    "CaptureReader",
]

_LAZY_CAPTURE_NAMES = ("CaptureReader", "CaptureWriter")


def __getattr__(name):
    # Resolved lazily (PEP 562): the deprecated capture shims now live
    # on top of repro.capture, which itself imports this package's
    # submodules — an eager import here would be a cycle.
    if name in _LAZY_CAPTURE_NAMES:
        from repro.net80211 import capture_file
        return getattr(capture_file, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_CAPTURE_NAMES))
