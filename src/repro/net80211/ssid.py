"""Service Set Identifiers.

SSIDs appear twice in the attack: APs advertise them in beacons/probe
responses (keyed into the WiGLE-style knowledge base), and mobiles leak
them in directed probe requests — the "implicit identifiers such as
network names in probing traffic" (Pang et al.) that break MAC
pseudonyms.  :meth:`Ssid.fingerprint` hashes a preferred-network list
into the implicit identifier our tracker uses when MACs are randomized.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

MAX_SSID_BYTES = 32


@dataclass(frozen=True, order=True)
class Ssid:
    """An SSID: 0–32 bytes of UTF-8 text (empty = wildcard/broadcast)."""

    name: str

    def __post_init__(self) -> None:
        if len(self.name.encode("utf-8")) > MAX_SSID_BYTES:
            raise ValueError(
                f"SSID exceeds {MAX_SSID_BYTES} bytes: {self.name!r}")

    @property
    def is_wildcard(self) -> bool:
        """True for the empty SSID used in broadcast probe requests."""
        return self.name == ""

    def __str__(self) -> str:
        return self.name or "<broadcast>"

    @staticmethod
    def fingerprint(ssids: Iterable["Ssid"]) -> str:
        """Order-insensitive digest of a preferred-network list.

        Two probe-request bursts with the same set of directed SSIDs
        produce the same fingerprint, letting the tracker link a device
        across MAC pseudonym changes (paper Section I, citing Pang et
        al. [13]).
        """
        names = sorted({s.name for s in ssids if not s.is_wildcard})
        digest = hashlib.sha256("\x00".join(names).encode("utf-8"))
        return digest.hexdigest()[:16]


#: The wildcard SSID carried by broadcast probe requests.
WILDCARD_SSID = Ssid("")
