"""Access-point behaviour.

An AP in this system is characterized by exactly what the attack needs:
identity (BSSID/SSID), channel, planar position, transmit parameters,
and its *maximum transmission distance* — the radius of the coverage
disc that M-Loc intersects.  The radius can be supplied directly (the
paper measured it "while traveling around the neighborhood") or derived
from a link budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.net80211.frames import (
    Dot11Frame,
    FrameType,
    association_response,
    beacon,
    probe_response,
)
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid


@dataclass
class AccessPoint:
    """A WiFi access point in the simulated world."""

    bssid: MacAddress
    ssid: Ssid
    channel: int
    position: Point
    max_range_m: float
    tx_power_dbm: float = 18.0
    antenna_gain_dbi: float = 2.0
    beacon_interval_s: float = 0.1024
    hidden: bool = False  # hidden SSID: beacons omit the name
    _sequence: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.max_range_m <= 0.0:
            raise ValueError(
                f"max_range_m must be > 0, got {self.max_range_m}")

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------

    @property
    def coverage_disc(self) -> Circle:
        """The maximum coverage area: disc centered at the AP.

        "we can compute a maximum coverage area for each AP as a disc
        centered as the AP's location with radius of the maximum
        transmission distance.  Such a disc is a superset of all
        locations that can communicate with the AP."
        """
        return Circle(self.position, self.max_range_m)

    def covers(self, point: Point) -> bool:
        """True when a device at ``point`` can communicate with this AP."""
        return self.position.distance_to(point) <= self.max_range_m

    # ------------------------------------------------------------------
    # Frame generation
    # ------------------------------------------------------------------

    def next_sequence(self) -> int:
        self._sequence = (self._sequence + 1) & 0xFFF
        return self._sequence

    def make_beacon(self, timestamp: float) -> Dot11Frame:
        """The periodic beacon (SSID withheld when hidden)."""
        advertised = Ssid("") if self.hidden else self.ssid
        return beacon(self.bssid, self.channel, timestamp, advertised,
                      sequence=self.next_sequence(),
                      tx_power_dbm=self.tx_power_dbm)

    def respond_to_probe(self, request: Dot11Frame,
                         timestamp: float) -> Optional[Dot11Frame]:
        """Answer a probe request heard on our channel, or ``None``.

        APs answer wildcard (broadcast) probes and probes directed at
        their own SSID; hidden APs only answer directed probes.
        """
        if not request.is_probe_request:
            return None
        if request.channel != self.channel:
            return None
        if request.ssid.is_wildcard:
            if self.hidden:
                return None
        elif request.ssid != self.ssid:
            return None
        return probe_response(self.bssid, request.source, self.channel,
                              timestamp, self.ssid,
                              sequence=self.next_sequence(),
                              tx_power_dbm=self.tx_power_dbm)

    def handle_association(self, request: Dot11Frame,
                           timestamp: float) -> Optional[Dot11Frame]:
        """Grant an association request addressed to this AP.

        Open-system: any station in range that names this BSS is
        accepted.  Returns the association response, or ``None`` for
        frames that are not association requests for us.
        """
        if request.frame_type is not FrameType.ASSOCIATION_REQUEST:
            return None
        if request.destination != self.bssid:
            return None
        if request.channel != self.channel:
            return None
        return association_response(self.bssid, request.source,
                                    self.channel, timestamp, self.ssid,
                                    sequence=self.next_sequence(),
                                    tx_power_dbm=self.tx_power_dbm)
