"""802.11 management frames (the slice the attack observes).

The tracker never needs data payloads — only who probed what, from
where, on which channel.  :class:`Dot11Frame` therefore carries exactly
the header fields the sniffer extracts ("SSIDs and AP MAC addresses from
the recorded packets") plus transmit metadata consumed by the medium.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.ssid import Ssid, WILDCARD_SSID


class FrameType(enum.Enum):
    """Management/data frame subtypes the system handles."""

    BEACON = "beacon"
    PROBE_REQUEST = "probe_request"
    PROBE_RESPONSE = "probe_response"
    DEAUTHENTICATION = "deauthentication"
    AUTHENTICATION = "authentication"
    ASSOCIATION_REQUEST = "association_request"
    ASSOCIATION_RESPONSE = "association_response"
    DATA = "data"

    @property
    def is_probe_traffic(self) -> bool:
        """Frames the localization pipeline counts as probing traffic."""
        return self in (FrameType.PROBE_REQUEST, FrameType.PROBE_RESPONSE)


@dataclass(frozen=True)
class Dot11Frame:
    """An 802.11 frame as seen on the air.

    ``source``/``destination`` are MAC addresses; ``bssid`` identifies
    the AP side (``None`` in broadcast probe requests, which are not yet
    bound to any BSS).  ``tx_power_dbm`` and ``tx_antenna_gain_dbi`` are
    physical transmit metadata used by the medium, not header fields.
    """

    frame_type: FrameType
    source: MacAddress
    destination: MacAddress
    channel: int
    timestamp: float
    ssid: Ssid = WILDCARD_SSID
    bssid: Optional[MacAddress] = None
    sequence: int = 0
    tx_power_dbm: float = 15.0
    tx_antenna_gain_dbi: float = 0.0
    elements: Dict[str, str] = field(default_factory=dict)

    @property
    def is_probe_request(self) -> bool:
        return self.frame_type is FrameType.PROBE_REQUEST

    @property
    def is_from_ap(self) -> bool:
        """True for frames an AP originates (beacon / probe response)."""
        return self.frame_type in (FrameType.BEACON,
                                   FrameType.PROBE_RESPONSE)


def probe_request(source: MacAddress, channel: int, timestamp: float,
                  ssid: Ssid = WILDCARD_SSID, sequence: int = 0,
                  tx_power_dbm: float = 15.0) -> Dot11Frame:
    """A probe request: broadcast (wildcard SSID) or directed."""
    return Dot11Frame(
        frame_type=FrameType.PROBE_REQUEST,
        source=source,
        destination=BROADCAST_MAC,
        channel=channel,
        timestamp=timestamp,
        ssid=ssid,
        sequence=sequence,
        tx_power_dbm=tx_power_dbm,
    )


def probe_response(ap_mac: MacAddress, station: MacAddress, channel: int,
                   timestamp: float, ssid: Ssid, sequence: int = 0,
                   tx_power_dbm: float = 18.0) -> Dot11Frame:
    """An AP's unicast answer to a probe request."""
    return Dot11Frame(
        frame_type=FrameType.PROBE_RESPONSE,
        source=ap_mac,
        destination=station,
        channel=channel,
        timestamp=timestamp,
        ssid=ssid,
        bssid=ap_mac,
        sequence=sequence,
        tx_power_dbm=tx_power_dbm,
    )


def beacon(ap_mac: MacAddress, channel: int, timestamp: float,
           ssid: Ssid, sequence: int = 0,
           tx_power_dbm: float = 18.0) -> Dot11Frame:
    """A periodic AP beacon."""
    return Dot11Frame(
        frame_type=FrameType.BEACON,
        source=ap_mac,
        destination=BROADCAST_MAC,
        channel=channel,
        timestamp=timestamp,
        ssid=ssid,
        bssid=ap_mac,
        sequence=sequence,
        tx_power_dbm=tx_power_dbm,
    )


def authentication(station: MacAddress, ap_mac: MacAddress, channel: int,
                   timestamp: float, sequence: int = 0,
                   tx_power_dbm: float = 15.0) -> Dot11Frame:
    """An (open-system) authentication frame, station → AP."""
    return Dot11Frame(
        frame_type=FrameType.AUTHENTICATION,
        source=station,
        destination=ap_mac,
        channel=channel,
        timestamp=timestamp,
        bssid=ap_mac,
        sequence=sequence,
        tx_power_dbm=tx_power_dbm,
    )


def association_request(station: MacAddress, ap_mac: MacAddress,
                        channel: int, timestamp: float, ssid: Ssid,
                        sequence: int = 0,
                        tx_power_dbm: float = 15.0) -> Dot11Frame:
    """An association request, station → AP (carries the SSID)."""
    return Dot11Frame(
        frame_type=FrameType.ASSOCIATION_REQUEST,
        source=station,
        destination=ap_mac,
        channel=channel,
        timestamp=timestamp,
        ssid=ssid,
        bssid=ap_mac,
        sequence=sequence,
        tx_power_dbm=tx_power_dbm,
    )


def association_response(ap_mac: MacAddress, station: MacAddress,
                         channel: int, timestamp: float, ssid: Ssid,
                         sequence: int = 0,
                         tx_power_dbm: float = 18.0) -> Dot11Frame:
    """An association response, AP → station (grants the association)."""
    return Dot11Frame(
        frame_type=FrameType.ASSOCIATION_RESPONSE,
        source=ap_mac,
        destination=station,
        channel=channel,
        timestamp=timestamp,
        ssid=ssid,
        bssid=ap_mac,
        sequence=sequence,
        tx_power_dbm=tx_power_dbm,
    )


def deauthentication(source: MacAddress, destination: MacAddress,
                     bssid: MacAddress, channel: int, timestamp: float,
                     reason_code: int = 7,
                     tx_power_dbm: float = 20.0,
                     protected: bool = False) -> Dot11Frame:
    """A deauthentication frame.

    The active attack spoofs these (source = the victim's AP) to force a
    silent station off its association so it re-scans and emits probe
    requests the sniffer can capture.

    ``protected=True`` marks the frame as carrying a valid 802.11w
    (management frame protection) integrity code — only the real AP can
    produce it, so an attacker's forgeries always have
    ``protected=False`` and PMF-enabled stations discard them.
    """
    elements = {"reason_code": str(reason_code)}
    if protected:
        elements["mic_valid"] = "1"
    return Dot11Frame(
        frame_type=FrameType.DEAUTHENTICATION,
        source=source,
        destination=destination,
        channel=channel,
        timestamp=timestamp,
        bssid=bssid,
        tx_power_dbm=tx_power_dbm,
        elements=elements,
    )
