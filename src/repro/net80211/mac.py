"""IEEE 802 MAC addresses.

The digital Marauder's map tracks mobiles by MAC address ("the digital
Marauder's map can be used for tracking mobiles with static MAC
addresses, which are common in reality"), so the address type carries
the semantics the attack relies on: stable equality/hashing, vendor OUI
extraction, and locally-administered detection (randomized pseudonyms).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")

#: A tiny OUI → vendor registry for display purposes; real deployments
#: would ship the IEEE registry.
OUI_VENDORS: Dict[str, str] = {
    "00:1b:63": "Apple",
    "00:21:6a": "Intel",
    "00:15:e9": "D-Link",
    "00:15:6d": "Ubiquiti",
    "00:1e:58": "D-Link",
    "00:23:69": "Cisco-Linksys",
    "00:0f:b5": "Netgear",
    "00:14:bf": "Cisco-Linksys",
    "00:18:39": "Cisco-Linksys",
    "00:1f:3b": "Intel",
}


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit MAC address stored as an integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise ValueError(f"MAC value out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (or ``-`` separated) notation."""
        if not _MAC_RE.match(text):
            raise ValueError(f"invalid MAC address {text!r}")
        return cls(int(text.replace("-", ":").replace(":", ""), 16))

    @classmethod
    def random(cls, rng: np.random.Generator,
               oui: Optional[str] = None) -> "MacAddress":
        """A random unicast, globally-administered address.

        ``oui`` pins the top three octets (vendor prefix) when given.
        """
        if oui is not None:
            prefix = MacAddress.parse(oui + ":00:00:00").value >> 24
        else:
            prefix = int(rng.integers(0, 1 << 24))
            prefix &= ~0x010000  # clear multicast bit
            prefix &= ~0x020000  # clear locally-administered bit
        suffix = int(rng.integers(0, 1 << 24))
        return cls((prefix << 24) | suffix)

    @classmethod
    def random_pseudonym(cls, rng: np.random.Generator) -> "MacAddress":
        """A random locally-administered address (a MAC pseudonym)."""
        value = int(rng.integers(0, 1 << 48))
        value &= ~(0x01 << 40)  # unicast
        value |= 0x02 << 40     # locally administered
        return cls(value)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF
                  for shift in (40, 32, 24, 16, 8, 0)]
        return ":".join(f"{octet:02x}" for octet in octets)

    @property
    def oui(self) -> str:
        """The vendor prefix ``aa:bb:cc``."""
        return str(self)[:8]

    @property
    def vendor(self) -> Optional[str]:
        """Vendor name when the OUI is in the registry."""
        return OUI_VENDORS.get(self.oui)

    @property
    def is_multicast(self) -> bool:
        return bool((self.value >> 40) & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        """True for randomized/pseudonym addresses (U/L bit set)."""
        return bool((self.value >> 40) & 0x02)

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1


#: ff:ff:ff:ff:ff:ff — destination of broadcast probe requests.
BROADCAST_MAC = MacAddress((1 << 48) - 1)
