"""Deprecated capture I/O shims — use :mod:`repro.capture` instead.

The JSONL capture format that lived here moved to
:mod:`repro.capture.jsonl` when the codec registry became the single
public capture I/O surface (``open_capture`` / ``make_capture_writer``
in :mod:`repro.capture`).  :class:`CaptureReader` and
:class:`CaptureWriter` keep working as thin subclasses of the moved
implementation, emitting a :class:`DeprecationWarning` at construction;
the module-level helpers (:func:`frame_to_dict`, :func:`frame_from_dict`,
:data:`FORMAT_VERSION`) re-export silently since they moved unchanged.
"""

from __future__ import annotations

import warnings

from repro.capture.jsonl import (FORMAT_VERSION, JsonlReader, JsonlWriter,
                                 frame_from_dict, frame_to_dict)

__all__ = [
    "FORMAT_VERSION",
    "CaptureReader",
    "CaptureWriter",
    "frame_from_dict",
    "frame_to_dict",
]


class CaptureWriter(JsonlWriter):
    """Deprecated alias of :class:`repro.capture.jsonl.JsonlWriter`."""

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "repro.net80211.capture_file.CaptureWriter is deprecated; "
            "use repro.capture.make_capture_writer(path, format='jsonl')",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)


class CaptureReader(JsonlReader):
    """Deprecated alias of :class:`repro.capture.jsonl.JsonlReader`."""

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "repro.net80211.capture_file.CaptureReader is deprecated; "
            "use repro.capture.open_capture(path)",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)
