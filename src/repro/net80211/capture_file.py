"""Capture persistence: a JSONL stand-in for tcpdump/pcap files.

The paper "dumped the wireless traffic by tcpdump for a duration of 7
days".  We persist captures as one JSON object per line — trivially
greppable, append-friendly, and sufficient for the management-frame
metadata the attack consumes.  :class:`CaptureWriter` and
:class:`CaptureReader` round-trip :class:`ReceivedFrame` records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro.faults import CaptureError
from repro.net80211.frames import Dot11Frame, FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def frame_to_dict(frame: Dot11Frame) -> dict:
    """Serialize a frame to plain JSON-compatible types."""
    return {
        "type": frame.frame_type.value,
        "src": str(frame.source),
        "dst": str(frame.destination),
        "bssid": str(frame.bssid) if frame.bssid is not None else None,
        "ssid": frame.ssid.name,
        "channel": frame.channel,
        "ts": frame.timestamp,
        "seq": frame.sequence,
        "tx_power_dbm": frame.tx_power_dbm,
        "tx_gain_dbi": frame.tx_antenna_gain_dbi,
        "elements": dict(frame.elements),
    }


def frame_from_dict(data: dict) -> Dot11Frame:
    """Deserialize a frame written by :func:`frame_to_dict`."""
    bssid = data.get("bssid")
    return Dot11Frame(
        frame_type=FrameType(data["type"]),
        source=MacAddress.parse(data["src"]),
        destination=MacAddress.parse(data["dst"]),
        channel=int(data["channel"]),
        timestamp=float(data["ts"]),
        ssid=Ssid(data.get("ssid", "")),
        bssid=MacAddress.parse(bssid) if bssid else None,
        sequence=int(data.get("seq", 0)),
        tx_power_dbm=float(data.get("tx_power_dbm", 15.0)),
        tx_antenna_gain_dbi=float(data.get("tx_gain_dbi", 0.0)),
        elements=dict(data.get("elements", {})),
    )


class CaptureWriter:
    """Append :class:`ReceivedFrame` records to a JSONL capture file."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._handle = self.path.open("a", encoding="utf-8")
        if self.path.stat().st_size == 0:
            header = {"capture_format": FORMAT_VERSION}
            self._handle.write(json.dumps(header) + "\n")

    def write(self, received: ReceivedFrame) -> None:
        record = {
            "frame": frame_to_dict(received.frame),
            "rssi_dbm": received.rssi_dbm,
            "snr_db": received.snr_db,
            "rx_channel": received.rx_channel,
            "rx_ts": received.rx_timestamp,
        }
        self._handle.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CaptureReader:
    """Iterate the records of a JSONL capture file.

    ``strict`` (the default) raises a typed
    :class:`~repro.faults.CaptureError` on the first malformed record —
    right for tests and for captures this codebase wrote itself.  With
    ``strict=False`` malformed *records* are skipped and counted
    (:attr:`skipped`, plus an ``on_skip`` callback per skip), the
    seven-day-tcpdump posture where one truncated line must not void a
    week of traffic.  A bad file *header* (unsupported format version)
    always raises: that is the whole capture, not one record.
    """

    def __init__(self, path: PathLike, strict: bool = True,
                 on_skip: Optional[Callable[[int, str], None]] = None):
        self.path = Path(path)
        self.strict = strict
        self.on_skip = on_skip
        #: Malformed records skipped by the most recent iteration.
        self.skipped = 0

    def __iter__(self) -> Iterator[ReceivedFrame]:
        self.skipped = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if not isinstance(data, dict):
                        raise CaptureError(
                            f"record is not a JSON object: {line[:60]!r}")
                except ValueError as error:
                    self._skip(line_number, str(error))
                    continue
                if "capture_format" in data:
                    version = data["capture_format"]
                    if version != FORMAT_VERSION:
                        raise CaptureError(
                            f"unsupported capture format {version}")
                    continue
                try:
                    received = ReceivedFrame(
                        frame=frame_from_dict(data["frame"]),
                        rssi_dbm=float(data["rssi_dbm"]),
                        snr_db=float(data["snr_db"]),
                        rx_channel=int(data["rx_channel"]),
                        rx_timestamp=float(data["rx_ts"]),
                    )
                except (KeyError, TypeError, ValueError) as error:
                    self._skip(line_number, f"{type(error).__name__}: {error}")
                    continue
                yield received

    def _skip(self, line_number: int, reason: str) -> None:
        if self.strict:
            raise CaptureError(
                f"{self.path}:{line_number}: malformed capture record "
                f"({reason})")
        self.skipped += 1
        if self.on_skip is not None:
            self.on_skip(line_number, reason)
