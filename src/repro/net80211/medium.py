"""The wireless medium: frame delivery through propagation + decode model.

Given a transmitted frame and a receiver (its position, receiver chain,
and listening channel), the medium computes the received power through
the propagation model, the SNR through the chain's noise figure, and a
decode probability through the cross-channel model — then flips a coin.
The result is a :class:`ReceivedFrame` carrying RSSI/SNR metadata (which
the localization attack pointedly does *not* need — only the fact of
reception matters to the disc model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.net80211.frames import Dot11Frame
from repro.radio.chain import ReceiverChain
from repro.radio.channels import center_frequency_hz, decode_probability
from repro.radio.propagation import PropagationModel


@dataclass(frozen=True)
class ReceivedFrame:
    """A frame as captured by a receiver, with PHY metadata."""

    frame: Dot11Frame
    rssi_dbm: float
    snr_db: float
    rx_channel: int
    rx_timestamp: float

    @property
    def source(self):
        return self.frame.source

    @property
    def frame_type(self):
        return self.frame.frame_type


@dataclass
class Medium:
    """Frame delivery over a propagation model.

    One :class:`Medium` instance is shared by the whole simulated world
    so every receiver experiences the same radio environment.
    """

    propagation: PropagationModel

    def received_power_dbm(self, frame: Dot11Frame, tx_position: Point,
                           rx_position: Point,
                           rx_antenna_gain_dbi: float) -> float:
        """Antenna-referred received power for ``frame`` at a receiver."""
        frequency = center_frequency_hz(frame.channel)
        loss = self.propagation.path_loss_db(tx_position, rx_position,
                                             frequency)
        return (frame.tx_power_dbm + frame.tx_antenna_gain_dbi
                + rx_antenna_gain_dbi - loss)

    def deliver(self, frame: Dot11Frame, tx_position: Point,
                rx_position: Point, chain: ReceiverChain,
                rx_channel: int,
                rng: np.random.Generator) -> Optional[ReceivedFrame]:
        """Attempt delivery of ``frame`` to a receiver chain.

        Returns the captured frame or ``None`` (below sensitivity, wrong
        channel, or an unlucky decode draw).
        """
        rssi = self.received_power_dbm(frame, tx_position, rx_position,
                                       chain.antenna_gain_dbi)
        snr = chain.snr_db(rssi)
        probability = decode_probability(snr, frame.channel, rx_channel,
                                         chain.nic.snr_min_db)
        if probability <= 0.0:
            return None
        if probability < 1.0 and rng.random() >= probability:
            return None
        return ReceivedFrame(frame=frame, rssi_dbm=rssi, snr_db=snr,
                             rx_channel=rx_channel,
                             rx_timestamp=frame.timestamp)

    def deliver_to_many(
        self,
        frame: Dot11Frame,
        tx_position: Point,
        receivers: Sequence[Tuple[Point, ReceiverChain, int]],
        rng: np.random.Generator,
    ) -> List[Optional[ReceivedFrame]]:
        """Deliver one frame to several receivers; order is preserved."""
        return [self.deliver(frame, tx_position, rx_position, chain,
                             rx_channel, rng)
                for rx_position, chain, rx_channel in receivers]
