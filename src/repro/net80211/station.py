"""Mobile-station scanning behaviour.

The feasibility of the passive attack rests on the observation that
"most mobile devices actively scan for available access points by
sending out probing requests" (paper Section IV-B: >50 % daily, up to
91.61 %).  :class:`ScanProfile` captures per-OS probing habits and
:class:`MobileStation` runs the scan state machine:

* periodic active scans: a burst of broadcast probe requests across the
  scan channels, plus directed probes for each preferred network
  (the implicit identifier that defeats MAC pseudonyms),
* passive devices never probe — until a spoofed deauthentication
  (the *active attack*) knocks them off their association and forces a
  rescan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.net80211.frames import (
    Dot11Frame,
    FrameType,
    probe_request,
)
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.radio.channels import CHANNELS_80211BG


@dataclass(frozen=True)
class ScanProfile:
    """How a device's OS scans for networks.

    ``probes_actively`` — whether the OS sends probe requests at all
    (passive scanners only listen for beacons).
    ``scan_interval_s`` — time between unsolicited scan bursts.
    ``directed_probes`` — whether the burst includes directed probes
    for the preferred-network list.
    ``rescans_after_deauth`` — whether losing an association triggers
    an immediate scan (what the active attack exploits; true for every
    real OS, since reconnection requires discovery).
    """

    name: str
    probes_actively: bool = True
    scan_interval_s: float = 60.0
    directed_probes: bool = True
    rescans_after_deauth: bool = True

    def __post_init__(self) -> None:
        if self.scan_interval_s <= 0.0:
            raise ValueError(
                f"scan interval must be > 0 s, got {self.scan_interval_s}")


#: Ready-made profiles loosely modeled on 2008-era operating systems.
PROFILES = {
    "aggressive": ScanProfile("aggressive", scan_interval_s=15.0),
    "standard": ScanProfile("standard", scan_interval_s=60.0),
    "conservative": ScanProfile("conservative", scan_interval_s=300.0,
                                directed_probes=False),
    "passive": ScanProfile("passive", probes_actively=False,
                           scan_interval_s=60.0),
}


@dataclass
class MobileStation:
    """A WiFi-enabled mobile device."""

    mac: MacAddress
    position: Point
    profile: ScanProfile
    preferred_networks: List[Ssid] = field(default_factory=list)
    tx_power_dbm: float = 15.0
    scan_channels: Sequence[int] = CHANNELS_80211BG
    associated_bssid: Optional[MacAddress] = None
    associated_channel: Optional[int] = None
    #: Associate to a responding AP automatically after a scan (what a
    #: real supplicant does when a preferred network answers).
    auto_associate: bool = False
    #: Interval between data frames while associated (0 = no data
    #: traffic).  Data frames reveal the (mobile, BSS) pair to the
    #: sniffer even when the device never probes.
    data_interval_s: float = 0.0
    #: 802.11w management frame protection: deauthentications without a
    #: valid integrity code (i.e. every spoofed one) are discarded.
    #: The standardized defense against the paper's active attack —
    #: ratified in 2009, the same year as the paper.
    pmf_enabled: bool = False
    _sequence: int = field(default=0, repr=False)
    _next_scan_at: float = field(default=0.0, repr=False)
    _forced_scan: bool = field(default=False, repr=False)
    _next_data_at: float = field(default=0.0, repr=False)

    def next_sequence(self) -> int:
        self._sequence = (self._sequence + 1) & 0xFFF
        return self._sequence

    def move_to(self, position: Point) -> None:
        """Update the device's ground-truth position."""
        self.position = position

    # ------------------------------------------------------------------
    # Scanning state machine
    # ------------------------------------------------------------------

    def schedule_first_scan(self, rng: np.random.Generator) -> None:
        """Randomize the first scan phase so devices don't synchronize."""
        self._next_scan_at = float(
            rng.uniform(0.0, self.profile.scan_interval_s))

    def tick(self, now: float) -> List[Dot11Frame]:
        """Advance to time ``now``; return any frames transmitted.

        A scan burst fires when the scan timer elapses (active scanners
        only) or when a deauthentication forced a rescan (all profiles
        with ``rescans_after_deauth``).
        """
        frames: List[Dot11Frame] = []
        due = (self.profile.probes_actively
               and now >= self._next_scan_at)
        if due or self._forced_scan:
            self._forced_scan = False
            self._next_scan_at = now + self.profile.scan_interval_s
            frames.extend(self._scan_burst(now))
        frames.extend(self._data_traffic(now))
        return frames

    def _scan_burst(self, now: float) -> List[Dot11Frame]:
        frames: List[Dot11Frame] = []
        for channel in self.scan_channels:
            frames.append(probe_request(
                self.mac, channel, now,
                sequence=self.next_sequence(),
                tx_power_dbm=self.tx_power_dbm))
            if self.profile.directed_probes:
                for ssid in self.preferred_networks:
                    frames.append(probe_request(
                        self.mac, channel, now, ssid=ssid,
                        sequence=self.next_sequence(),
                        tx_power_dbm=self.tx_power_dbm))
        return frames

    def _data_traffic(self, now: float) -> List[Dot11Frame]:
        """Periodic data frames to the associated BSS."""
        if (self.data_interval_s <= 0.0
                or self.associated_bssid is None
                or now < self._next_data_at):
            return []
        self._next_data_at = now + self.data_interval_s
        channel = self.associated_channel or 6
        return [Dot11Frame(
            frame_type=FrameType.DATA,
            source=self.mac,
            destination=self.associated_bssid,
            channel=channel,
            timestamp=now,
            bssid=self.associated_bssid,
            sequence=self.next_sequence(),
            tx_power_dbm=self.tx_power_dbm,
        )]

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------

    def handle_frame(self, frame: Dot11Frame, now: float) -> None:
        """React to a received frame (only deauth matters here).

        A deauthentication addressed to this station from its current
        BSS drops the association and — for every realistic profile —
        forces an immediate rescan on the next tick.  This is the hook
        the active attack uses to make silent devices observable.
        """
        if frame.frame_type is not FrameType.DEAUTHENTICATION:
            return
        if frame.destination != self.mac and not frame.destination.is_broadcast:
            return
        if (self.associated_bssid is not None
                and frame.bssid is not None
                and frame.bssid != self.associated_bssid):
            return
        if self.pmf_enabled and frame.elements.get("mic_valid") != "1":
            return  # 802.11w: reject the forged deauthentication
        self.associated_bssid = None
        self.associated_channel = None
        if self.profile.rescans_after_deauth:
            self._forced_scan = True

    def associate(self, bssid: MacAddress,
                  channel: Optional[int] = None) -> None:
        """Record an association with an AP."""
        self.associated_bssid = bssid
        self.associated_channel = channel

    @property
    def is_associated(self) -> bool:
        return self.associated_bssid is not None

    def with_new_pseudonym(self, rng: np.random.Generator) -> "MobileStation":
        """A copy of this station under a fresh randomized MAC.

        Used by the pseudonym-tracking tests: the MAC changes but the
        preferred-network fingerprint stays, which is exactly the
        linkage Pang et al. demonstrated.
        """
        return replace(self, mac=MacAddress.random_pseudonym(rng))
