"""Polygon helpers: signed shoelace area and centroid.

Used by :class:`repro.geometry.region.DiscIntersection` to compute the
straight-edged core of the arc-polygon bounded by disc arcs.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.point import Point


def polygon_area(vertices: Sequence[Point]) -> float:
    """Signed shoelace area (positive for counter-clockwise order)."""
    count = len(vertices)
    if count < 3:
        return 0.0
    total = 0.0
    for i in range(count):
        a = vertices[i]
        b = vertices[(i + 1) % count]
        total += a.x * b.y - b.x * a.y
    return 0.5 * total


def polygon_centroid(vertices: Sequence[Point]) -> Point:
    """Area centroid of a simple polygon.

    Falls back to the vertex mean for degenerate (zero-area) inputs,
    which is what we want for the two-vertex lens case where the
    "polygon" is a chord.
    """
    count = len(vertices)
    if count == 0:
        raise ValueError("centroid of an empty polygon is undefined")
    area = polygon_area(vertices)
    if count < 3 or abs(area) < 1e-30:
        sum_x = sum(v.x for v in vertices)
        sum_y = sum(v.y for v in vertices)
        return Point(sum_x / count, sum_y / count)
    cx = 0.0
    cy = 0.0
    for i in range(count):
        a = vertices[i]
        b = vertices[(i + 1) % count]
        cross = a.x * b.y - b.x * a.y
        cx += (a.x + b.x) * cross
        cy += (a.y + b.y) * cross
    factor = 1.0 / (6.0 * area)
    return Point(cx * factor, cy * factor)
