"""2-D point primitive used throughout the geometry and localization code."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point (planar coordinates, meters)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in hot loops)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def norm(self) -> float:
        """Distance from the origin."""
        return math.hypot(self.x, self.y)

    def angle(self) -> float:
        """Polar angle ``atan2(y, x)`` in radians."""
        return math.atan2(self.y, self.x)

    def rotated(self, radians: float) -> "Point":
        """Return this point rotated about the origin."""
        cos_a = math.cos(radians)
        sin_a = math.sin(radians)
        return Point(self.x * cos_a - self.y * sin_a,
                     self.x * sin_a + self.y * cos_a)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """True when both coordinates match within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol


def mean_point(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    This is the paper's ``AVG(Δ)`` operator (M-Loc line 11).
    """
    total_x = 0.0
    total_y = 0.0
    count = 0
    for point in points:
        total_x += point.x
        total_y += point.y
        count += 1
    if count == 0:
        raise ValueError("mean_point of an empty collection is undefined")
    return Point(total_x / count, total_y / count)
