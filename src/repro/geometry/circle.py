"""Circle primitive, pairwise intersection, and lens area.

These implement the building blocks used by M-Loc (pairwise
intersection points, paper Section III-D) and by Theorem 2/3 (the
lens-area formula, paper equations (21) and (36)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.geometry.point import Point


@dataclass(frozen=True)
class Circle:
    """A circle (or the disc it bounds) with center and radius in meters."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError(f"circle radius must be >= 0, got {self.radius}")

    @property
    def area(self) -> float:
        """Area of the bounded disc."""
        return math.pi * self.radius * self.radius

    def contains(self, point: Point, tol: float = 1e-9) -> bool:
        """True when ``point`` lies in the closed disc (with tolerance)."""
        slack = self.radius + tol
        return point.squared_distance_to(self.center) <= slack * slack

    def on_boundary(self, point: Point, tol: float = 1e-6) -> bool:
        """True when ``point`` lies on the circle within ``tol`` meters."""
        return abs(point.distance_to(self.center) - self.radius) <= tol

    def point_at(self, angle: float) -> Point:
        """Point on the circle at polar ``angle`` (radians) from center."""
        return Point(self.center.x + self.radius * math.cos(angle),
                     self.center.y + self.radius * math.sin(angle))

    def contains_circle(self, other: "Circle", tol: float = 1e-9) -> bool:
        """True when ``other``'s disc is entirely inside this disc."""
        distance = self.center.distance_to(other.center)
        return distance + other.radius <= self.radius + tol


def circle_intersections(a: Circle, b: Circle, tol: float = 1e-12) -> List[Point]:
    """Intersection points of two circles.

    Returns an empty list (disjoint or nested), one point (tangent), or
    two points.  This is step 3 of the paper's M-Loc pseudocode: "Compute
    U as the set of intersected points of the two circles ... U may be
    empty or contains one or two points."
    """
    dx = b.center.x - a.center.x
    dy = b.center.y - a.center.y
    distance = math.hypot(dx, dy)
    if distance <= tol:
        # Concentric circles: either identical (infinite intersection,
        # which we report as no discrete vertices) or disjoint.
        return []
    if distance > a.radius + b.radius + tol:
        return []  # too far apart
    if distance < abs(a.radius - b.radius) - tol:
        return []  # one disc strictly inside the other
    # Distance along the center line from a.center to the chord.
    along = (distance * distance + a.radius * a.radius
             - b.radius * b.radius) / (2.0 * distance)
    # Half chord length; clamp tiny negatives from rounding.
    half_chord_sq = a.radius * a.radius - along * along
    if half_chord_sq < 0.0:
        half_chord_sq = 0.0
    half_chord = math.sqrt(half_chord_sq)
    ux = dx / distance
    uy = dy / distance
    foot = Point(a.center.x + along * ux, a.center.y + along * uy)
    if half_chord <= tol * max(1.0, a.radius + b.radius):
        return [foot]
    offset = Point(-uy * half_chord, ux * half_chord)
    return [Point(foot.x + offset.x, foot.y + offset.y),
            Point(foot.x - offset.x, foot.y - offset.y)]


def lens_area(a: Circle, b: Circle) -> float:
    """Area of the intersection (lens) of two discs.

    Implements the standard two-circle lens formula the paper uses in
    the proofs of Theorems 2 and 3 (equations (21) and (36)), with the
    containment and disjoint cases handled explicitly.
    """
    distance = a.center.distance_to(b.center)
    r1, r2 = a.radius, b.radius
    if distance >= r1 + r2:
        return 0.0
    if distance <= abs(r1 - r2):
        smaller = min(r1, r2)
        return math.pi * smaller * smaller
    # General lens: two circular segments, one from each circle.
    cos1 = (distance * distance + r1 * r1 - r2 * r2) / (2.0 * distance * r1)
    cos2 = (distance * distance + r2 * r2 - r1 * r1) / (2.0 * distance * r2)
    cos1 = min(1.0, max(-1.0, cos1))
    cos2 = min(1.0, max(-1.0, cos2))
    angle1 = math.acos(cos1)
    angle2 = math.acos(cos2)
    triangle_term = 0.5 * math.sqrt(
        max(0.0, (r1 + r2 + distance) * (-distance + r1 + r2)
            * (distance - r1 + r2) * (distance + r1 - r2))
    )
    # Clamp tiny negatives from near-tangent rounding.
    return max(0.0, r1 * r1 * angle1 + r2 * r2 * angle2 - triangle_term)
