"""Uniform spatial hash over planar points.

The AP-Rad linear program and AP-Loc's training-disc placement both
start from "which pairs of points are within ``D`` of each other?"
(D = ``2 * r_max`` for the LP's candidate constraints, ``2 * r`` for
discs that can intersect at all).  The previous implementations
answered it with a dense O(n²) scan / distance matrix; at city scale
(tens of thousands of APs) that matrix alone is gigabytes.

:class:`SpatialGrid` buckets points into square cells of side
``cell_size`` and answers the two queries the attack pipeline needs:

* :meth:`pairs_within` — all index pairs ``(i, j)``, ``i < j``, closer
  than a radius.  Cells are enumerated with a half-neighborhood
  stencil so every pair is produced exactly once, and the candidate
  set is filtered by exact distance, so the result is identical to
  the brute-force scan (including strict-vs-inclusive boundary
  semantics) — only the cost changes: O(n + output) for bounded
  point density instead of O(n²).
* :meth:`query_radius` — indices of points within a radius of a probe
  location.

Cell membership uses ``floor(coordinate / cell_size)`` on int64 keys;
the grid never stores geometry beyond the input coordinate array, so
memory is O(n).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro import obs


class SpatialGrid:
    """A uniform hash grid over an ``(n, 2)`` coordinate array.

    Parameters
    ----------
    coords:
        Planar coordinates, one row per point.  The array is kept by
        reference for exact-distance filtering; do not mutate it.
    cell_size:
        Side of the square cells.  Pick the query radius (or the
        largest one you will ask for) — :meth:`pairs_within` then only
        visits the 3×3 cell neighborhood.
    """

    def __init__(self, coords: np.ndarray, cell_size: float):
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(
                f"coords must have shape (n, 2), got {coords.shape}")
        if not cell_size > 0.0:
            raise ValueError(f"cell_size must be > 0, got {cell_size}")
        self.coords = coords
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], np.ndarray] = {}
        if len(coords):
            keys = np.floor(coords / self.cell_size).astype(np.int64)
            # Group indices by cell via a lexicographic sort: one sort
            # instead of n dict insertions of scalars.
            order = np.lexsort((keys[:, 1], keys[:, 0]))
            sorted_keys = keys[order]
            boundaries = np.nonzero(
                np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1))[0] + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(order)]))
            for start, end in zip(starts, ends):
                cx, cy = sorted_keys[start]
                self._cells[(int(cx), int(cy))] = order[start:end]

    def __len__(self) -> int:
        return len(self.coords)

    @property
    def occupied_cells(self) -> int:
        """How many grid cells hold at least one point."""
        return len(self._cells)

    def pairs_within(self, radius: float, strict: bool = True
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Every pair closer than ``radius``, as index/distance arrays.

        Returns ``(i, j, dist)`` with ``i < j`` elementwise, sorted
        lexicographically by ``(i, j)`` — the same enumeration order as
        the dense upper-triangle scan, so downstream constraint
        ordering is unchanged.  ``strict`` selects ``dist < radius``
        (the LP's never-binding cutoff) versus ``dist <= radius``
        (disc-tangency inclusive).
        """
        if radius < 0.0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        reach = int(np.ceil(radius / self.cell_size)) if radius else 0
        i_parts: List[np.ndarray] = []
        j_parts: List[np.ndarray] = []
        # Half-neighborhood stencil: (0, 0) pairs within a cell, plus
        # lexicographically-positive offsets, so each cell pair is
        # visited exactly once.
        offsets = [(dx, dy)
                   for dx in range(0, reach + 1)
                   for dy in range(-reach, reach + 1)
                   if (dx, dy) > (0, 0)]
        for (cx, cy), members in self._cells.items():
            if len(members) > 1:
                a, b = np.triu_indices(len(members), k=1)
                i_parts.append(members[a])
                j_parts.append(members[b])
            for dx, dy in offsets:
                other = self._cells.get((cx + dx, cy + dy))
                if other is None:
                    continue
                grid_a = np.repeat(members, len(other))
                grid_b = np.tile(other, len(members))
                i_parts.append(grid_a)
                j_parts.append(grid_b)
        registry = obs.current_registry()
        registry.counter("repro.geometry.grid.pair_queries").inc()
        if not i_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0, dtype=np.float64)
        raw_i = np.concatenate(i_parts)
        raw_j = np.concatenate(j_parts)
        # Cross-cell pairs can come out in either index order.
        lo = np.minimum(raw_i, raw_j)
        hi = np.maximum(raw_i, raw_j)
        delta = self.coords[lo] - self.coords[hi]
        dist = np.hypot(delta[:, 0], delta[:, 1])
        keep = dist < radius if strict else dist <= radius
        lo, hi, dist = lo[keep], hi[keep], dist[keep]
        registry.counter("repro.geometry.grid.pairs").inc(len(lo))
        order = np.lexsort((hi, lo))
        return lo[order], hi[order], dist[order]

    def query_radius(self, x: float, y: float, radius: float,
                     strict: bool = False) -> np.ndarray:
        """Indices of points within ``radius`` of ``(x, y)``, ascending."""
        if radius < 0.0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        obs.current_registry().counter(
            "repro.geometry.grid.point_queries").inc()
        if not self._cells:
            return np.empty(0, dtype=np.int64)
        reach = int(np.ceil(radius / self.cell_size)) if radius else 0
        cx = int(np.floor(x / self.cell_size))
        cy = int(np.floor(y / self.cell_size))
        buckets = [
            self._cells[key]
            for dx in range(-reach, reach + 1)
            for dy in range(-reach, reach + 1)
            if (key := (cx + dx, cy + dy)) in self._cells
        ]
        if not buckets:
            return np.empty(0, dtype=np.int64)
        candidates = np.concatenate(buckets)
        delta = self.coords[candidates] - np.array([x, y])
        dist = np.hypot(delta[:, 0], delta[:, 1])
        keep = dist < radius if strict else dist <= radius
        return np.sort(candidates[keep])
