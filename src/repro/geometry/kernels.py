"""Vectorized NumPy kernels for the disc-intersection hot path.

The paper's localization core (M-Loc pseudocode, Theorems 2/3) reduces
to dense small-matrix arithmetic: all pairwise circle-intersection
points of a disc set, an all-candidates × all-discs containment mask,
vertex dedup, and nested-disc detection.  The scalar implementations in
:mod:`repro.geometry.circle` / :mod:`repro.geometry.region` are the
*reference*; these kernels compute the same quantities as array ops and
back the fast path used by :class:`~repro.geometry.region.DiscIntersection`,
``MLoc``'s feasibility bisection, and ``Localizer.locate_batch``.

Planar points ride in complex128 internally (``x + iy``): one complex
array op replaces two float ones, which matters because the per-set
arrays are tiny (``k`` discs, ``k(k-1)/2`` pairs) and NumPy dispatch
overhead — not FLOPs — is the cost.  For the same reason the batch
kernel (:func:`batch_intersection_vertices`) stacks *many* disc sets of
equal ``k`` into ``(B, …)`` arrays so a whole micro-batch amortizes one
dispatch sequence.

Every kernel mirrors its scalar counterpart's arithmetic exactly (same
operation order, same tolerance comparisons, same candidate emission
order), so the two paths agree to floating-point noise — the property
tests in ``tests/test_geometry_kernels.py`` pin agreement at 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.point import Point

#: Default tolerance of :func:`repro.geometry.circle.circle_intersections`.
INTERSECT_TOL = 1e-12


# ----------------------------------------------------------------------
# Array packing / unpacking
# ----------------------------------------------------------------------

def discs_as_arrays(discs: Sequence[Circle]) -> Tuple[np.ndarray, np.ndarray]:
    """Split a disc sequence into a ``(n, 2)`` center array and ``(n,)``
    radius array — the layout the public kernels consume."""
    n = len(discs)
    centers = np.empty((n, 2), dtype=np.float64)
    radii = np.empty(n, dtype=np.float64)
    for index, disc in enumerate(discs):
        center = disc.center
        centers[index, 0] = center.x
        centers[index, 1] = center.y
        radii[index] = disc.radius
    return centers, radii


def points_as_array(points: Sequence[Point]) -> np.ndarray:
    """Pack points into the ``(m, 2)`` layout the kernels consume."""
    return np.array([(p.x, p.y) for p in points],
                    dtype=np.float64).reshape(len(points), 2)


def array_as_points(coords: np.ndarray) -> List[Point]:
    """Unpack an ``(m, 2)`` coordinate array into :class:`Point` objects."""
    return [Point(float(x), float(y)) for x, y in coords]


@lru_cache(maxsize=256)
def _triu_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached upper-triangle pair indices (kernels never mutate them)."""
    return np.triu_indices(n, k=1)


def _as_complex(centers: np.ndarray) -> np.ndarray:
    """``(…, 2)`` float coordinates → ``(…,)`` complex ``x + iy``."""
    return centers[..., 0] + 1j * centers[..., 1]


def _as_coords(z: np.ndarray) -> np.ndarray:
    """``(m,)`` complex points → ``(m, 2)`` float coordinates."""
    return np.column_stack((z.real, z.imag))


# ----------------------------------------------------------------------
# Pairwise circle intersection
# ----------------------------------------------------------------------

def _candidate_points(z_i: np.ndarray, delta: np.ndarray, dist: np.ndarray,
                      r_i: np.ndarray, r_j: np.ndarray,
                      tol: float) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized core of :func:`circle_intersections` over pair arrays.

    All inputs share an arbitrary leading shape (``(P,)`` per-set,
    ``(B, P)`` batched).  Returns ``(…, 2)`` complex candidate points
    and a matching validity mask: disjoint / nested / concentric pairs
    contribute nothing, tangent pairs one point (slot 0), crossing
    pairs two — the same emission rule as the scalar reference.
    """
    separated = dist > tol
    crossing = (separated
                & (dist <= r_i + r_j + tol)
                & (dist >= np.abs(r_i - r_j) - tol))
    safe = np.where(separated, dist, 1.0)
    along = (dist * dist + r_i * r_i - r_j * r_j) / (2.0 * safe)
    half = np.sqrt(np.maximum(r_i * r_i - along * along, 0.0))
    tangent = half <= tol * np.maximum(1.0, r_i + r_j)
    unit = delta / safe
    foot = z_i + along * unit
    # i·unit·half has components (-u_y·h, u_x·h) — the scalar offset.
    offset = 1j * unit * half
    candidates = np.stack((foot + offset, foot - offset), axis=-1)
    candidates[..., 0] = np.where(tangent, foot, candidates[..., 0])
    valid = np.stack((crossing, crossing & ~tangent), axis=-1)
    return candidates, valid


@dataclass
class PairGeometry:
    """Scale-independent pairwise geometry of one disc set.

    Precomputed once, reused across every radius scale M-Loc's
    feasibility bisection probes: center separations never change when
    radii are inflated, so each ``non_empty(scale)`` query is pure
    array arithmetic on these buffers.
    """

    z: np.ndarray         # (n,) disc centers, complex
    radii: np.ndarray     # (n,)
    z_i: np.ndarray       # (P,) first center of each i<j pair
    r_i: np.ndarray       # (P,)
    r_j: np.ndarray       # (P,)
    delta: np.ndarray     # (P,) center_j - center_i, complex
    dist: np.ndarray      # (P,) center separation


def pair_geometry(centers: np.ndarray, radii: np.ndarray) -> PairGeometry:
    """Precompute the upper-triangle pair deltas of a disc set.

    Pairs are ordered lexicographically (``i < j``), matching the
    scalar ``for i: for j in range(i+1, n)`` loop so downstream dedup
    keeps the same representative points.
    """
    z = _as_complex(centers)
    i_idx, j_idx = _triu_indices(len(radii))
    z_i = z[i_idx]
    delta = z[j_idx] - z_i
    return PairGeometry(z=z, radii=radii, z_i=z_i,
                        r_i=radii[i_idx], r_j=radii[j_idx],
                        delta=delta, dist=np.abs(delta))


def pairwise_intersection_candidates(geom: PairGeometry,
                                     scale: float = 1.0,
                                     tol: float = INTERSECT_TOL
                                     ) -> np.ndarray:
    """All pairwise circle-intersection points of the disc set, ``(m, 2)``.

    Emission order matches the scalar pair loop (pair-major, then
    ``foot + offset`` before ``foot - offset``).
    """
    if geom.dist.size == 0:
        return np.empty((0, 2), dtype=np.float64)
    candidates, valid = _candidate_points(
        geom.z_i, geom.delta, geom.dist,
        geom.r_i * scale, geom.r_j * scale, tol)
    return _as_coords(candidates.reshape(-1)[valid.reshape(-1)])


# ----------------------------------------------------------------------
# Containment / nesting
# ----------------------------------------------------------------------

def contains_mask(points: np.ndarray, centers: np.ndarray,
                  radii: np.ndarray, slack: float = 0.0) -> np.ndarray:
    """The all-candidates × all-discs containment mask, ``(m, n)`` bool.

    Entry ``[p, d]`` is True when point ``p`` lies in disc ``d``'s
    closed disc with ``slack`` meters of tolerance — the vectorized
    twin of :meth:`Circle.contains`.
    """
    w = _as_complex(points)[:, None] - _as_complex(centers)[None, :]
    reach = radii + slack
    return w.real ** 2 + w.imag ** 2 <= reach * reach


def contains_all(points: np.ndarray, centers: np.ndarray,
                 radii: np.ndarray, slack: float = 0.0) -> np.ndarray:
    """``(m,)`` bool — which points lie inside *every* disc."""
    if points.size == 0:
        return np.empty(0, dtype=bool)
    return contains_mask(points, centers, radii, slack).all(axis=1)


def _contains_all_complex(candidates: np.ndarray, z: np.ndarray,
                          radii: np.ndarray, slack: float) -> np.ndarray:
    w = candidates[:, None] - z[None, :]
    reach = radii + slack
    return (w.real ** 2 + w.imag ** 2 <= reach * reach).all(axis=1)


def nested_disc_mask(centers: np.ndarray, radii: np.ndarray,
                     slack: float = 0.0) -> np.ndarray:
    """``(n,)`` bool — which discs are contained in all the others.

    Vectorized :meth:`Circle.contains_circle` applied row-wise: disc
    ``c`` is nested when ``dist(c, j) + r_c <= r_j + slack`` for all
    ``j`` (the diagonal is trivially true).
    """
    z = _as_complex(centers)
    dist = np.abs(z[:, None] - z[None, :])
    return (dist + radii[:, None] <= radii[None, :] + slack).all(axis=1)


# ----------------------------------------------------------------------
# Vertex dedup
# ----------------------------------------------------------------------

def dedupe_rows(points: np.ndarray, tol: float) -> np.ndarray:
    """Merge rows closer than ``tol`` in Chebyshev distance, keep-first.

    Same greedy semantics as the scalar ``_dedupe_points`` (a point is
    dropped when within ``tol`` of an already-*kept* point), so chains
    of near-duplicates resolve identically.
    """
    return _as_coords(_dedupe_complex(_as_complex(points), tol))


def _dedupe_complex(z: np.ndarray, tol: float) -> np.ndarray:
    count = len(z)
    if count <= 1:
        return z
    # m here is the handful of surviving region vertices, so the short
    # greedy Python loop is cheaper than any vectorized approximation
    # (which could not reproduce keep-first chain semantics anyway).
    kept: List[complex] = []
    for value in z.tolist():
        close = False
        for existing in kept:
            diff = value - existing
            if abs(diff.real) <= tol and abs(diff.imag) <= tol:
                close = True
                break
        if not close:
            kept.append(value)
    if len(kept) == count:
        return z
    return np.array(kept, dtype=np.complex128)


# ----------------------------------------------------------------------
# Composed per-set and batched vertex kernels
# ----------------------------------------------------------------------

def intersection_vertices(centers: np.ndarray, radii: np.ndarray,
                          contain_slack: float,
                          dedupe_tol: float) -> np.ndarray:
    """The paper's Δ as an ``(m, 2)`` array.

    Composes the kernels exactly as M-Loc's pseudocode does: pairwise
    intersection candidates → keep those inside every disc → merge
    tangency duplicates.
    """
    z = _as_complex(centers)
    i_idx, j_idx = _triu_indices(len(radii))
    z_i = z[i_idx]
    delta = z[j_idx] - z_i
    candidates, valid = _candidate_points(
        z_i, delta, np.abs(delta), radii[i_idx], radii[j_idx],
        INTERSECT_TOL)
    flat = candidates.reshape(-1)[valid.reshape(-1)]
    if flat.size == 0:
        return np.empty((0, 2), dtype=np.float64)
    surviving = flat[_contains_all_complex(flat, z, radii, contain_slack)]
    return _as_coords(_dedupe_complex(surviving, dedupe_tol))


def batch_intersection_vertices(centers: np.ndarray, radii: np.ndarray,
                                tol: float = 1e-9) -> List[np.ndarray]:
    """Δ for a whole batch of ``k``-disc sets in one dispatch sequence.

    Parameters
    ----------
    centers:
        ``(B, k, 2)`` disc centers, one row of ``k`` discs per set.
    radii:
        ``(B, k)`` matching radii.
    tol:
        The per-set :class:`DiscIntersection` tolerance parameter; the
        effective slack is scaled by each set's largest radius exactly
        as the region constructor does.

    Returns one ``(m_b, 2)`` vertex array per set, in input order.
    Candidate generation and the candidates × discs containment mask
    run as single ``(B, P, …)`` array ops; only the final per-set
    gather/dedup (a few vertices each) runs in Python.
    """
    batch, k = radii.shape
    z = _as_complex(centers)                              # (B, k)
    slack = tol * np.maximum(1.0, radii.max(axis=1))      # (B,)
    if k < 2:
        return [np.empty((0, 2), dtype=np.float64)] * batch
    i_idx, j_idx = _triu_indices(k)
    z_i = z[:, i_idx]                                     # (B, P)
    delta = z[:, j_idx] - z_i
    candidates, valid = _candidate_points(
        z_i, delta, np.abs(delta),
        radii[:, i_idx], radii[:, j_idx], INTERSECT_TOL)  # (B, P, 2)
    # Candidates × discs containment, one (B, 2P, k) mask for the batch.
    flat = candidates.reshape(batch, -1)                  # (B, 2P)
    w = flat[:, :, None] - z[:, None, :]
    reach = radii[:, None, :] + slack[:, None, None]
    inside_all = (w.real ** 2 + w.imag ** 2 <= reach * reach).all(axis=2)
    keep = valid.reshape(batch, -1) & inside_all          # (B, 2P)
    dedupe_tol = slack * 10.0
    return [
        _as_coords(_dedupe_complex(flat[b][keep[b]], float(dedupe_tol[b])))
        for b in range(batch)
    ]


def intersection_vertices_pruned(centers: np.ndarray, radii: np.ndarray,
                                 pair_i: np.ndarray, pair_j: np.ndarray,
                                 contain_slack: float,
                                 dedupe_tol: float) -> np.ndarray:
    """Δ from an explicit candidate pair list instead of all pairs.

    The caller supplies the ``i < j`` pairs worth intersecting —
    typically from :class:`repro.geometry.grid.SpatialGrid` restricted
    to pairs within ``r_i + r_j`` — and this computes exactly the
    vertex set :func:`intersection_vertices` would: pairs farther
    apart than the radius sum emit no candidates in the full kernel
    either, so pruning them changes nothing but the cost.  Pairs must
    be in lexicographic ``(i, j)`` order for the keep-first dedup to
    match the all-pairs emission order.
    """
    if len(pair_i) == 0:
        return np.empty((0, 2), dtype=np.float64)
    z = _as_complex(centers)
    z_i = z[pair_i]
    delta = z[pair_j] - z_i
    candidates, valid = _candidate_points(
        z_i, delta, np.abs(delta), radii[pair_i], radii[pair_j],
        INTERSECT_TOL)
    flat = candidates.reshape(-1)[valid.reshape(-1)]
    if flat.size == 0:
        return np.empty((0, 2), dtype=np.float64)
    surviving = flat[_contains_all_complex(flat, z, radii, contain_slack)]
    return _as_coords(_dedupe_complex(surviving, dedupe_tol))


# ----------------------------------------------------------------------
# Feasibility scan (M-Loc radius inflation)
# ----------------------------------------------------------------------

def nonempty_at_scale(geom: PairGeometry, scale: float,
                      base_tol: float = 1e-9) -> bool:
    """Whether the disc set intersects when all radii are scaled.

    The vectorized equivalent of building a ``DiscIntersection`` on
    scaled discs and reading ``is_empty``: non-empty when any pairwise
    candidate survives containment *or* some disc is nested in all
    others (which covers ``k = 1``).  ``base_tol`` reproduces the
    region's radius-scaled tolerance.
    """
    radii_s = geom.radii * scale
    slack = base_tol * max(1.0, float(radii_s.max()))
    if geom.dist.size:
        candidates, valid = _candidate_points(
            geom.z_i, geom.delta, geom.dist,
            geom.r_i * scale, geom.r_j * scale, INTERSECT_TOL)
        flat = candidates.reshape(-1)[valid.reshape(-1)]
        if flat.size and bool(_contains_all_complex(
                flat, geom.z, radii_s, slack).any()):
            return True
    dist = np.abs(geom.z[:, None] - geom.z[None, :])
    nested = (dist + radii_s[:, None] <= radii_s[None, :] + slack)
    return bool(nested.all(axis=1).any())


# ----------------------------------------------------------------------
# Distance matrices
# ----------------------------------------------------------------------

def pairwise_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix of planar coordinates.

    One shot of array math replacing O(n²) scalar ``distance_to``
    calls; shared by AP-Rad's separated-pair scan and its constraint
    assembly.
    """
    z = _as_complex(coords)
    return np.abs(z[:, None] - z[None, :])
