"""Intersection region of ``k`` discs — the paper's "intersected area".

The disc-intersection approach (paper Section III-C) estimates a mobile
device's location as the intersection of the maximum coverage discs of
all APs the device communicated with.  This module computes that region
exactly:

* the *vertex set* Δ — all pairwise circle-intersection points that lie
  inside every disc (M-Loc pseudocode, lines 2–10),
* the exact *area* and *centroid* of the region from its arc-polygon
  boundary (straight-edge shoelace core plus one circular segment per
  boundary arc),
* Monte-Carlo estimators used for validation in the test suite and
  the Theorem 2/3 benches.

The intersection of discs is convex (an intersection of convex sets), so
its boundary vertices can be ordered by angle around any interior point
and each boundary edge is a single circular arc traversed
counter-clockwise around its supporting circle.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import kernels
from repro.geometry.circle import Circle, circle_intersections
from repro.geometry.point import Point, mean_point
from repro.geometry.polygon import polygon_area, polygon_centroid

TWO_PI = 2.0 * math.pi

#: Process-wide default for the NumPy kernel fast path.  The scalar
#: code is the reference implementation; benches and property tests
#: flip this (or pass ``use_kernels`` explicitly) to compare the two.
_KERNEL_DEFAULT = True

#: Below this disc count the scalar loops beat NumPy dispatch overhead
#: (measured crossover is between k=4 and k=5), so the *default* path
#: only engages the kernels from here up.  An explicit
#: ``use_kernels=True`` forces them at any size.
KERNEL_MIN_DISCS = 5


def set_kernel_default(enabled: bool) -> bool:
    """Set the process-wide kernel fast-path default; returns the old one."""
    global _KERNEL_DEFAULT
    previous = _KERNEL_DEFAULT
    _KERNEL_DEFAULT = bool(enabled)
    return previous


def kernel_default() -> bool:
    """Whether new regions use the NumPy kernels by default."""
    return _KERNEL_DEFAULT


class DiscIntersection:
    """The intersection region of one or more discs.

    Parameters
    ----------
    discs:
        The coverage discs to intersect.  At least one is required.
    tol:
        Geometric tolerance in meters, scaled internally by the largest
        radius.  Vertices within ``tol`` of each other are merged and
        membership tests allow a ``tol`` slack, which keeps the exact
        circle-intersection points (that sit on two boundaries) inside
        the region despite floating-point rounding.
    use_kernels:
        Compute the vertex set (and nested-disc detection) with the
        vectorized kernels of :mod:`repro.geometry.kernels` instead of
        the scalar reference loops.  ``None`` defers to the module
        default (see :func:`set_kernel_default`), which only engages
        the kernels from :data:`KERNEL_MIN_DISCS` discs up.  Both paths
        agree to floating-point noise; the scalar path remains the
        reference.
    precomputed_vertices:
        Internal hook for the batched kernel
        (:func:`repro.geometry.kernels.batch_intersection_vertices`):
        a Δ that was already computed for this disc set, adopted
        instead of being recomputed.  Everything else (nested-disc
        detection, arcs, area) proceeds normally.
    """

    def __init__(self, discs: Sequence[Circle], tol: float = 1e-9,
                 use_kernels: Optional[bool] = None,
                 precomputed_vertices: Optional[Sequence[Point]] = None):
        if not discs:
            raise ValueError("DiscIntersection requires at least one disc")
        self.discs: List[Circle] = list(discs)
        max_radius = max(disc.radius for disc in self.discs)
        self._tol = tol * max(1.0, max_radius)
        if use_kernels is None:
            self._use_kernels = (_KERNEL_DEFAULT
                                 and len(self.discs) >= KERNEL_MIN_DISCS)
        else:
            self._use_kernels = bool(use_kernels)
        self._vertices: Optional[List[Point]] = None
        # Boundary arcs as (circle, start_angle, sweep); computed on
        # first use — the M-Loc vertex-centroid hot path never needs
        # them, only area / exact-centroid queries do.
        self._arcs_cache: Optional[List[Tuple[Circle, float, float]]] = None
        # When the region is exactly one disc nested inside all others.
        self._full_disc: Optional[Circle] = None
        self._empty = False
        self._precomputed = (None if precomputed_vertices is None
                             else list(precomputed_vertices))
        self._build()

    def __getstate__(self) -> dict:
        """Pickle without the derived caches.

        Batch workers ship regions back over process boundaries; the
        arc list is recomputable from the vertices on demand and the
        precomputed-vertex input was already consumed by ``_build``, so
        neither belongs in the payload.  The empty arc list (set when
        the region degenerates) is kept — it records a decision, not a
        cache.
        """
        state = dict(self.__dict__)
        if state["_arcs_cache"]:
            state["_arcs_cache"] = None
        state["_precomputed"] = None
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        vertices = self._compute_vertices()
        self._vertices = vertices
        if not vertices:
            self._full_disc = self._find_nested_disc()
            self._empty = self._full_disc is None
            self._arcs_cache = []
            return
        if len(vertices) == 1:
            # Tangency: the region is a single point (or numerically so).
            self._arcs_cache = []

    @property
    def _arcs(self) -> List[Tuple[Circle, float, float]]:
        if self._arcs_cache is None:
            self._arcs_cache = self._compute_arcs(self._vertices or [])
        return self._arcs_cache

    def _compute_vertices(self) -> List[Point]:
        """All pairwise intersection points inside every disc (Δ)."""
        if self._precomputed is not None:
            return self._precomputed
        if self._use_kernels and len(self.discs) > 1:
            return self._compute_vertices_kernel()
        return self._compute_vertices_scalar()

    def _compute_vertices_scalar(self) -> List[Point]:
        """Reference implementation: per-pair loops over Python floats."""
        candidates: List[Point] = []
        count = len(self.discs)
        for i in range(count):
            for j in range(i + 1, count):
                for point in circle_intersections(self.discs[i],
                                                  self.discs[j]):
                    if self._contains_with_tol(point):
                        candidates.append(point)
        return _dedupe_points(candidates, self._tol * 10.0)

    def _compute_vertices_kernel(self) -> List[Point]:
        """Fast path: one shot of array ops via the geometry kernels."""
        centers, radii = kernels.discs_as_arrays(self.discs)
        vertices = kernels.intersection_vertices(
            centers, radii, contain_slack=self._tol,
            dedupe_tol=self._tol * 10.0)
        return kernels.array_as_points(vertices)

    def _contains_with_tol(self, point: Point) -> bool:
        return all(disc.contains(point, self._tol) for disc in self.discs)

    def _find_nested_disc(self) -> Optional[Circle]:
        """Disc contained in all others, if any (region = that disc)."""
        if self._use_kernels and len(self.discs) > 1:
            centers, radii = kernels.discs_as_arrays(self.discs)
            nested = np.nonzero(
                kernels.nested_disc_mask(centers, radii, self._tol))[0]
            if nested.size == 0:
                return None
            # Same pick as the scalar stable sort: smallest radius,
            # earliest original position on ties.
            best = min(nested, key=lambda idx: (radii[idx], idx))
            return self.discs[int(best)]
        for candidate in sorted(self.discs, key=lambda d: d.radius):
            if all(other.contains_circle(candidate, self._tol)
                   for other in self.discs):
                return candidate
        return None

    def _compute_arcs(
        self, vertices: List[Point]
    ) -> List[Tuple[Circle, float, float]]:
        """Boundary arcs between consecutive vertices (CCW order).

        Each arc is returned as ``(circle, start_angle, sweep)`` where
        ``sweep`` in ``(0, 2π)`` is the counter-clockwise angular extent
        around the circle's own center.
        """
        interior = mean_point(vertices)
        ordered = sorted(vertices,
                         key=lambda v: math.atan2(v.y - interior.y,
                                                  v.x - interior.x))
        arcs: List[Tuple[Circle, float, float]] = []
        count = len(ordered)
        boundary_tol = max(self._tol * 10.0, 1e-7)
        for i in range(count):
            start = ordered[i]
            end = ordered[(i + 1) % count]
            arc = self._supporting_arc(start, end, boundary_tol)
            if arc is not None:
                arcs.append(arc)
        return arcs

    def _supporting_arc(
        self, start: Point, end: Point, boundary_tol: float
    ) -> Optional[Tuple[Circle, float, float]]:
        """Find the disc whose boundary forms the region edge start→end."""
        best: Optional[Tuple[Circle, float, float]] = None
        for disc in self.discs:
            if disc.radius <= 0.0:
                continue
            if not (disc.on_boundary(start, boundary_tol)
                    and disc.on_boundary(end, boundary_tol)):
                continue
            angle_start = math.atan2(start.y - disc.center.y,
                                     start.x - disc.center.x)
            angle_end = math.atan2(end.y - disc.center.y,
                                   end.x - disc.center.x)
            sweep = (angle_end - angle_start) % TWO_PI
            if sweep <= 0.0:
                sweep = TWO_PI if start.is_close(end, boundary_tol) else sweep
            midpoint = disc.point_at(angle_start + sweep / 2.0)
            if self._contains_with_tol(midpoint):
                # Prefer the tightest arc when several discs coincide.
                if best is None or sweep < best[2]:
                    best = (disc, angle_start, sweep)
        return best

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the discs have no common point."""
        return self._empty

    @property
    def vertices(self) -> List[Point]:
        """The paper's Δ: pairwise intersection points inside all discs."""
        return list(self._vertices or [])

    def vertex_centroid(self) -> Optional[Point]:
        """``AVG(Δ)`` — the location estimate of the paper's M-Loc.

        Returns ``None`` when Δ is empty (the paper's pseudocode is
        undefined there; callers apply documented fallbacks).
        """
        if not self._vertices:
            return None
        return mean_point(self._vertices)

    def contains(self, point: Point, tol: Optional[float] = None) -> bool:
        """True when ``point`` lies in every disc."""
        slack = self._tol if tol is None else tol
        return all(disc.contains(point, slack) for disc in self.discs)

    @property
    def area(self) -> float:
        """Exact area of the intersection region in square meters."""
        if self._empty:
            return 0.0
        if self._full_disc is not None:
            return self._full_disc.area
        vertices = self._vertices or []
        if len(vertices) < 2:
            return 0.0
        ordered = self._ordered_vertices()
        total = abs(polygon_area(ordered))
        for circle, _, sweep in self._arcs or []:
            total += _segment_area(circle.radius, sweep)
        return total

    def centroid(self) -> Optional[Point]:
        """Exact area centroid of the region (``None`` when empty).

        For a single-point region (tangency) the point itself is
        returned; for a nested-disc region the disc center.
        """
        if self._empty:
            return None
        if self._full_disc is not None:
            return self._full_disc.center
        vertices = self._vertices or []
        if len(vertices) == 1:
            return vertices[0]
        ordered = self._ordered_vertices()
        poly_area = abs(polygon_area(ordered))
        weighted_x = 0.0
        weighted_y = 0.0
        total_area = 0.0
        if poly_area > 0.0:
            core = polygon_centroid(ordered)
            weighted_x += core.x * poly_area
            weighted_y += core.y * poly_area
            total_area += poly_area
        for circle, start_angle, sweep in self._arcs or []:
            seg_area = _segment_area(circle.radius, sweep)
            if seg_area <= 0.0:
                continue
            seg_centroid = _segment_centroid(circle, start_angle, sweep)
            weighted_x += seg_centroid.x * seg_area
            weighted_y += seg_centroid.y * seg_area
            total_area += seg_area
        if total_area <= 0.0:
            # Degenerate sliver: fall back to the vertex mean.
            return mean_point(vertices)
        return Point(weighted_x / total_area, weighted_y / total_area)

    def _ordered_vertices(self) -> List[Point]:
        vertices = self._vertices or []
        if len(vertices) < 3:
            return list(vertices)
        interior = mean_point(vertices)
        return sorted(vertices,
                      key=lambda v: math.atan2(v.y - interior.y,
                                               v.x - interior.x))

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``.

        The box is the intersection of the per-disc boxes, so it bounds
        the region tightly enough for rejection sampling.
        """
        min_x = max(d.center.x - d.radius for d in self.discs)
        max_x = min(d.center.x + d.radius for d in self.discs)
        min_y = max(d.center.y - d.radius for d in self.discs)
        max_y = min(d.center.y + d.radius for d in self.discs)
        return (min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------
    # Monte Carlo validation helpers
    # ------------------------------------------------------------------

    def _sample_mask(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Which samples land inside every disc (zero slack).

        One ``samples × discs`` distance-matrix containment mask instead
        of a per-sample Python ``contains`` loop — these estimators
        dominate the Theorem 2/3 validation benches.
        """
        centers, radii = kernels.discs_as_arrays(self.discs)
        points = np.column_stack((xs, ys))
        return kernels.contains_all(points, centers, radii, slack=0.0)

    def monte_carlo_area(self, rng: np.random.Generator,
                         samples: int = 20000) -> float:
        """Estimate the region area by rejection sampling (validation)."""
        min_x, min_y, max_x, max_y = self.bounding_box()
        if min_x >= max_x or min_y >= max_y:
            return 0.0
        xs = rng.uniform(min_x, max_x, samples)
        ys = rng.uniform(min_y, max_y, samples)
        hits = int(np.count_nonzero(self._sample_mask(xs, ys)))
        return (max_x - min_x) * (max_y - min_y) * hits / samples

    def monte_carlo_centroid(self, rng: np.random.Generator,
                             samples: int = 20000) -> Optional[Point]:
        """Estimate the region centroid by rejection sampling."""
        min_x, min_y, max_x, max_y = self.bounding_box()
        if min_x >= max_x or min_y >= max_y:
            return None
        xs = rng.uniform(min_x, max_x, samples)
        ys = rng.uniform(min_y, max_y, samples)
        inside = self._sample_mask(xs, ys)
        hits = int(np.count_nonzero(inside))
        if hits == 0:
            return None
        return Point(float(xs[inside].sum()) / hits,
                     float(ys[inside].sum()) / hits)


def _segment_area(radius: float, sweep: float) -> float:
    """Area of the circular segment between a chord and its CCW arc."""
    return 0.5 * radius * radius * (sweep - math.sin(sweep))


def _segment_centroid(circle: Circle, start_angle: float,
                      sweep: float) -> Point:
    """Centroid of the circular segment cut by the arc's chord.

    The centroid lies on the bisector of the arc, at distance
    ``4 R sin^3(θ) / (3 (2θ - sin 2θ))`` from the circle center, where
    ``θ = sweep / 2`` is the half-angle.
    """
    half = sweep / 2.0
    denom = sweep - math.sin(sweep)
    if denom <= 0.0:
        return circle.point_at(start_angle + half)
    distance = (4.0 * circle.radius * math.sin(half) ** 3) / (3.0 * denom)
    mid_angle = start_angle + half
    return Point(circle.center.x + distance * math.cos(mid_angle),
                 circle.center.y + distance * math.sin(mid_angle))


def _dedupe_points(points: List[Point], tol: float) -> List[Point]:
    """Merge points closer than ``tol`` (tangency duplicates)."""
    unique: List[Point] = []
    for point in points:
        if not any(point.is_close(existing, tol) for existing in unique):
            unique.append(point)
    return unique
