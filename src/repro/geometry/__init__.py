"""Planar geometry substrate for the disc-intersection localization attack.

The paper's three localization algorithms (M-Loc, AP-Rad, AP-Loc) all
reduce to one geometric primitive: the intersection of ``k`` discs (each
an AP's maximum coverage area).  This package provides:

* :class:`Point` and :class:`Circle` primitives,
* pairwise circle intersection (:func:`circle_intersections`) and lens
  area (:func:`lens_area`),
* :class:`DiscIntersection` — the intersection region of ``k`` discs with
  *exact* area and centroid computed from its arc-polygon boundary, plus
  the paper's vertex set Δ and vertex centroid, and Monte-Carlo
  estimators used for validation,
* polygon helpers (shoelace area / centroid),
* vectorized NumPy kernels (:mod:`repro.geometry.kernels`) backing the
  fast path of :class:`DiscIntersection` and the batch localizers; the
  scalar code above is the reference implementation.

All coordinates are planar (meters in a local ENU tangent plane; see
:mod:`repro.geo`).
"""

from repro.geometry.point import Point
from repro.geometry.circle import (
    Circle,
    circle_intersections,
    lens_area,
)
from repro.geometry.polygon import polygon_area, polygon_centroid
from repro.geometry.region import (
    DiscIntersection,
    kernel_default,
    set_kernel_default,
)
from repro.geometry import kernels
from repro.geometry.grid import SpatialGrid

__all__ = [
    "SpatialGrid",
    "Point",
    "Circle",
    "circle_intersections",
    "lens_area",
    "polygon_area",
    "polygon_centroid",
    "DiscIntersection",
    "kernels",
    "kernel_default",
    "set_kernel_default",
]
