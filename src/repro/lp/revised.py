"""Sparse revised-simplex solver with warm starts.

The dense tableau solver (:mod:`repro.lp.simplex`) carries the whole
``m × (n + m)`` tableau through every pivot — O(m·n) work per iteration
and a from-scratch rebuild per solve.  AP-Rad's streaming re-fits are
the opposite workload: thousands of rows with 2–3 nonzeros each, solved
over and over with only a handful of rows changed.  This module is the
engine built for that shape:

* **Sparse storage** — the constraint matrix lives in CSC form
  (``indptr`` / ``indices`` / ``data`` arrays); the tableau is never
  materialized.  Row slacks make every row an equality, and variable
  bounds are handled directly by the bounded-variable simplex instead
  of being expanded into extra rows.
* **Factorized basis** — only the ``m × m`` basis is factorized (LU via
  LAPACK — ``scipy.linalg.lu_factor`` when scipy is importable, an
  explicit LAPACK-computed inverse otherwise), and each pivot appends a
  product-form eta vector instead of refactorizing.  The basis is
  refactorized — and the basic solution recomputed to wash out drift —
  every :data:`REFACTOR_EVERY` pivots or on a degenerate pivot element.
* **Dantzig pricing with Bland fallback** — steepest reduced cost
  normally, switching to Bland's least-index rule after a pivot budget
  so degenerate instances terminate.
* **Phase 1 without artificials** — a composite infeasibility phase:
  basic variables outside their bounds price with ±1 costs and the
  ratio test stops at the first breakpoint where an infeasible basic
  reaches its violated bound.  Starting from a warm basis this loop
  runs for the *delta*, not the problem size, which is what makes
  incremental AP-Rad re-fits cheap.
* **Warm starts** — :class:`LpState` records the optimal basis in
  solver-independent tags (``("v", var)`` / ``("s", row)``), so a
  caller can append rows/columns to a problem and restart from the
  previous optimum; unknown or clashing tags degrade gracefully to
  that row's slack.

The solver accepts the same problem family as :func:`repro.lp.simplex.
solve_lp` (finite lower bounds; optional upper bounds) and is pinned
against it by the property tests in ``tests/test_lp_revised.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

try:  # scipy is optional; the solver is self-contained without it.
    from scipy.linalg import lu_factor as _lu_factor
    from scipy.linalg import lu_solve as _lu_solve
except ImportError:  # pragma: no cover - exercised on scipy-free hosts
    _lu_factor = None
    _lu_solve = None

#: Reduced-cost optimality tolerance.
DUAL_TOL = 1e-9
#: Primal feasibility tolerance (matches the dense solver's phase-1 cut).
FEAS_TOL = 1e-7
#: Smallest acceptable pivot element before forcing a refactorization.
PIVOT_TOL = 1e-10
#: Pivots between basis refactorizations.
REFACTOR_EVERY = 64

_BASIC = 0
_AT_LOWER = 1
_AT_UPPER = 2


@dataclass(frozen=True)
class LpState:
    """A warm-start snapshot in solver-independent coordinates.

    ``row_basic[i]`` tags the column basic in row ``i`` — ``("v", j)``
    for structural variable ``j`` or ``("s", k)`` for row ``k``'s
    slack.  ``at_upper`` lists the nonbasic tags resting at their upper
    bound (everything else defaults to its lower bound, or the upper
    one when the lower is infinite).  Tags that no longer resolve in a
    grown problem fall back to the row's own slack, so a state taken
    before rows/columns were appended remains a valid (if partially
    cold) starting point.
    """

    row_basic: Tuple[Tuple[str, int], ...]
    at_upper: Tuple[Tuple[str, int], ...] = ()


@dataclass
class RevisedResult:
    """Outcome of a revised-simplex solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray]  # structural variable values
    objective: Optional[float]
    iterations: int = 0
    phase1_iterations: int = 0
    refactorizations: int = 0
    warm_started: bool = False
    state: Optional[LpState] = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


class _Csc:
    """Minimal CSC matrix: just the three arrays and column slicing."""

    __slots__ = ("m", "n", "indptr", "indices", "data")

    def __init__(self, m: int, n: int, indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray):
        self.m = m
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.data = data

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        start, end = self.indptr[j], self.indptr[j + 1]
        return self.indices[start:end], self.data[start:end]

    def transpose_dot(self, y: np.ndarray) -> np.ndarray:
        """``A^T y`` for all columns in one vectorized pass."""
        out = np.zeros(self.n)
        if self.data.size == 0:
            return out
        prod = self.data * y[self.indices]
        starts = self.indptr[:-1]
        nonempty = self.indptr[1:] > starts
        sums = np.add.reduceat(prod, np.minimum(starts, prod.size - 1))
        out[nonempty] = sums[nonempty]
        return out


def _build_csc(constraints: Sequence[Tuple[Dict[int, float], str, float]],
               n: int) -> Tuple[_Csc, np.ndarray, np.ndarray, np.ndarray]:
    """Assemble ``[A | I]`` in CSC plus rhs and slack bound arrays.

    Row ``i``'s slack column is ``n + i`` with coefficient ``+1``;
    its bounds encode the sense: ``<=`` → ``[0, ∞)``, ``>=`` →
    ``(-∞, 0]``, ``==`` → ``[0, 0]``.
    """
    m = len(constraints)
    per_column: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    rhs = np.zeros(m)
    slack_lower = np.zeros(m)
    slack_upper = np.zeros(m)
    for i, (coefficients, sense, value) in enumerate(constraints):
        rhs[i] = value
        for j, coef in coefficients.items():
            if coef != 0.0:
                per_column[j].append((i, coef))
        if sense == "<=":
            slack_lower[i], slack_upper[i] = 0.0, np.inf
        elif sense == ">=":
            slack_lower[i], slack_upper[i] = -np.inf, 0.0
        elif sense == "==":
            slack_lower[i], slack_upper[i] = 0.0, 0.0
        else:
            raise ValueError(f"unknown constraint sense {sense!r}")
    total = n + m
    indptr = np.zeros(total + 1, dtype=np.int64)
    for j in range(n):
        indptr[j + 1] = indptr[j] + len(per_column[j])
    nnz_structural = int(indptr[n])
    indptr[n + 1:] = nnz_structural + np.arange(1, m + 1)
    indices = np.empty(nnz_structural + m, dtype=np.int64)
    data = np.empty(nnz_structural + m)
    cursor = 0
    for j in range(n):
        for row, coef in per_column[j]:
            indices[cursor] = row
            data[cursor] = coef
            cursor += 1
    indices[nnz_structural:] = np.arange(m)
    data[nnz_structural:] = 1.0
    return (_Csc(m, total, indptr, indices, data), rhs,
            slack_lower, slack_upper)


class _SingularBasis(Exception):
    """Raised when the (warm) basis matrix cannot be factorized."""


class _BasisFactor:
    """LU-factorized basis with product-form eta updates.

    ``ftran`` solves ``B x = a`` and ``btran`` solves ``B^T y = c``.
    Each pivot appends one eta vector; the owner refactorizes when the
    eta file grows past :data:`REFACTOR_EVERY` or a pivot is too small.
    """

    def __init__(self, matrix: _Csc, basis: np.ndarray):
        m = matrix.m
        dense = np.zeros((m, m))
        for position, column in enumerate(basis):
            rows, values = matrix.column(int(column))
            dense[rows, position] = values
        if _lu_factor is not None:
            lu, piv = _lu_factor(dense, check_finite=False)
            diag = np.abs(np.diag(lu))
            scale = max(1.0, float(np.abs(dense).max())) if m else 1.0
            if m and diag.min() <= 1e-11 * scale:
                raise _SingularBasis
            self._lu = (lu, piv)
            self._inv = None
        else:
            try:
                inverse = np.linalg.inv(dense)
            except np.linalg.LinAlgError as error:
                raise _SingularBasis from error
            if not np.all(np.isfinite(inverse)):
                raise _SingularBasis
            self._lu = None
            self._inv = inverse
        self._etas: List[Tuple[int, np.ndarray]] = []

    @property
    def eta_count(self) -> int:
        return len(self._etas)

    def _base_solve(self, rhs: np.ndarray, transpose: bool) -> np.ndarray:
        if self._lu is not None:
            return _lu_solve(self._lu, rhs, trans=1 if transpose else 0,
                             check_finite=False)
        inverse = self._inv
        return (inverse.T @ rhs) if transpose else (inverse @ rhs)

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        x = self._base_solve(rhs, transpose=False)
        for position, eta in self._etas:
            pivot_value = x[position]
            if pivot_value != 0.0:
                x[position] = 0.0
                x += eta * pivot_value
        return x

    def btran(self, rhs: np.ndarray) -> np.ndarray:
        y = np.array(rhs, dtype=float, copy=True)
        for position, eta in reversed(self._etas):
            y[position] = float(eta @ y)
        return self._base_solve(y, transpose=True)

    def update(self, position: int, w: np.ndarray) -> bool:
        """Fold in a pivot replacing basis ``position`` (``w = B⁻¹ a_q``).

        Returns False when the pivot element is numerically degenerate
        and the caller must refactorize instead.
        """
        pivot_value = w[position]
        if abs(pivot_value) < PIVOT_TOL:
            return False
        eta = -w / pivot_value
        eta[position] = 1.0 / pivot_value
        self._etas.append((position, eta))
        return True


def solve_revised(
    cost: np.ndarray,
    constraints: Sequence[Tuple[Dict[int, float], str, float]],
    lower: np.ndarray,
    upper: Sequence[Optional[float]],
    maximize: bool = False,
    warm_start: Optional[LpState] = None,
    max_iter: int = 20000,
    bland_after: Optional[int] = None,
) -> RevisedResult:
    """Solve a bounded LP with the sparse revised simplex.

    Parameters mirror the modeling layer: ``cost`` over ``n``
    structural variables, ``constraints`` as ``(coefficients, sense,
    rhs)`` rows with sparse coefficient dicts, finite ``lower`` bounds
    and optional ``upper`` bounds (``None`` = unbounded above).
    ``warm_start`` is an :class:`LpState` from a previous solve of this
    (possibly since-grown) problem.
    """
    c_struct = np.asarray(cost, dtype=float)
    n = c_struct.shape[0]
    if maximize:
        c_struct = -c_struct
    matrix, rhs, slack_lower, slack_upper = _build_csc(constraints, n)
    m = matrix.m
    total = matrix.n

    lo = np.empty(total)
    hi = np.empty(total)
    lo[:n] = np.asarray(lower, dtype=float)
    if not np.all(np.isfinite(lo[:n])):
        raise ValueError(
            "lower bounds must be finite (shift variables if needed)")
    for j in range(n):
        bound = upper[j]
        hi[j] = np.inf if bound is None else float(bound)
    lo[n:] = slack_lower
    hi[n:] = slack_upper
    if np.any(hi < lo - FEAS_TOL):
        return RevisedResult("infeasible", None, None)
    # Degenerate-range guard (upper < lower within tolerance): pin.
    hi = np.maximum(hi, lo)

    c_full = np.zeros(total)
    c_full[:n] = c_struct

    solver = _RevisedSimplex(matrix, rhs, lo, hi, c_full, n,
                             max_iter=max_iter, bland_after=bland_after)
    status = solver.run(warm_start)
    # Register-then-inc so the series exist (at zero) from the first
    # solve, however trivial; a snapshot taken right after always shows
    # them.
    registry = obs.current_registry()
    registry.counter("repro.lp.revised.pivots").inc(solver.iterations)
    registry.counter("repro.lp.revised.refactorizations").inc(
        solver.refactorizations)
    result = RevisedResult(
        status=status,
        x=None,
        objective=None,
        iterations=solver.iterations,
        phase1_iterations=solver.phase1_iterations,
        refactorizations=solver.refactorizations,
        warm_started=solver.warm_started,
        state=None,
    )
    if status == "optimal":
        x_full = solver.solution()
        structural = x_full[:n]
        sign = -1.0 if maximize else 1.0
        result.x = structural
        result.objective = float(sign * (c_struct @ structural))
        result.state = solver.export_state()
    return result


class _RevisedSimplex:
    """One solve's worth of revised-simplex state."""

    def __init__(self, matrix: _Csc, rhs: np.ndarray, lo: np.ndarray,
                 hi: np.ndarray, cost: np.ndarray, n_struct: int,
                 max_iter: int, bland_after: Optional[int]):
        self.matrix = matrix
        self.rhs = rhs
        self.lo = lo
        self.hi = hi
        self.cost = cost
        self.n_struct = n_struct
        self.m = matrix.m
        self.total = matrix.n
        self.max_iter = max_iter
        self.bland_after = (bland_after if bland_after is not None
                            else max(1000, 10 * (self.m + self.total)))
        self.iterations = 0
        self.phase1_iterations = 0
        self.refactorizations = 0
        self.warm_started = False
        # Columns that can never usefully enter: fixed range.
        self.fixed = (self.hi - self.lo) <= 0.0
        self.status = np.empty(self.total, dtype=np.int8)
        self.basis = np.empty(self.m, dtype=np.int64)
        self.x_basic = np.zeros(self.m)
        self.nonbasic_value = np.zeros(self.total)
        self.factor: Optional[_BasisFactor] = None

    # -- setup ---------------------------------------------------------

    def _default_status(self, column: int) -> int:
        return _AT_LOWER if np.isfinite(self.lo[column]) else _AT_UPPER

    def _cold_basis(self) -> None:
        self.basis = np.arange(self.n_struct, self.n_struct + self.m,
                               dtype=np.int64)
        self.status[:] = [self._default_status(j)
                          for j in range(self.total)]
        self.status[self.basis] = _BASIC

    def _warm_basis(self, state: LpState) -> None:
        taken = set()
        chosen = np.full(self.m, -1, dtype=np.int64)
        for row in range(self.m):
            column = -1
            if row < len(state.row_basic):
                kind, index = state.row_basic[row]
                if kind == "v" and 0 <= index < self.n_struct:
                    column = index
                elif kind == "s" and 0 <= index < self.m:
                    column = self.n_struct + index
            if column < 0 or column in taken:
                column = self.n_struct + row
            if column in taken:  # foreign slack claim clashed
                continue
            taken.add(column)
            chosen[row] = column
        for row in range(self.m):  # fill rows whose claim clashed
            if chosen[row] < 0:
                fallback = self.n_struct + row
                if fallback in taken:
                    raise _SingularBasis
                taken.add(fallback)
                chosen[row] = fallback
        self.basis = chosen
        self.status[:] = [self._default_status(j)
                          for j in range(self.total)]
        for kind, index in state.at_upper:
            column = (index if kind == "v"
                      else self.n_struct + index if kind == "s" else -1)
            if (0 <= column < self.total
                    and column not in taken
                    and np.isfinite(self.hi[column])):
                self.status[column] = _AT_UPPER
        self.status[self.basis] = _BASIC

    def _refresh_nonbasic_values(self) -> None:
        at_lower = self.status == _AT_LOWER
        at_upper = self.status == _AT_UPPER
        self.nonbasic_value = np.where(at_lower, self.lo,
                                       np.where(at_upper, self.hi, 0.0))

    def _refactorize(self) -> None:
        self.factor = _BasisFactor(self.matrix, self.basis)
        self.refactorizations += 1
        self._recompute_basics()

    def _recompute_basics(self) -> None:
        residual = self.rhs.copy()
        self._refresh_nonbasic_values()
        nonzero = np.nonzero((self.status != _BASIC)
                             & (self.nonbasic_value != 0.0))[0]
        for column in nonzero:
            rows, values = self.matrix.column(int(column))
            residual[rows] -= values * self.nonbasic_value[column]
        self.x_basic = self.factor.ftran(residual)

    # -- main loop -----------------------------------------------------

    def run(self, warm_start: Optional[LpState]) -> str:
        if self.m == 0:
            return self._solve_unconstrained()
        if warm_start is not None:
            try:
                self._warm_basis(warm_start)
                self._refactorize()
                self.warm_started = True
            except _SingularBasis:
                self.factor = None
        if self.factor is None:
            self._cold_basis()
            try:
                self._refactorize()
            except _SingularBasis:  # pragma: no cover - identity basis
                return "infeasible"
        phase = 1 if self._infeasibility() > FEAS_TOL else 2
        while self.iterations < self.max_iter:
            if phase == 1 and self._infeasibility() <= FEAS_TOL:
                phase = 2
            entering, direction = self._price(phase)
            if entering < 0:
                if phase == 1:
                    return ("infeasible"
                            if self._infeasibility() > FEAS_TOL
                            else "optimal"
                            if self._price(2)[0] < 0
                            else self._continue_phase2())
                return "optimal"
            step = self._step(entering, direction, phase)
            if step == "unbounded":
                return "unbounded"
            self.iterations += 1
            if phase == 1:
                self.phase1_iterations += 1
            if (self.factor.eta_count >= REFACTOR_EVERY
                    or step == "refactor"):
                try:
                    self._refactorize()
                except _SingularBasis:
                    return "infeasible"
        return "iteration_limit"

    def _continue_phase2(self) -> str:
        """Phase 1 hit feasibility exactly at its last pricing; resume."""
        while self.iterations < self.max_iter:
            entering, direction = self._price(2)
            if entering < 0:
                return "optimal"
            step = self._step(entering, direction, 2)
            if step == "unbounded":
                return "unbounded"
            self.iterations += 1
            if (self.factor.eta_count >= REFACTOR_EVERY
                    or step == "refactor"):
                try:
                    self._refactorize()
                except _SingularBasis:
                    return "infeasible"
        return "iteration_limit"

    def _solve_unconstrained(self) -> str:
        finite_needed = (self.cost > 0) & ~np.isfinite(self.lo)
        unbounded = ((self.cost < 0) & ~np.isfinite(self.hi)).any() \
            or finite_needed.any()
        if unbounded:
            return "unbounded"
        self.status[:] = np.where(self.cost >= 0, _AT_LOWER, _AT_UPPER)
        self._refresh_nonbasic_values()
        return "optimal"

    # -- pricing -------------------------------------------------------

    def _infeasibility(self) -> float:
        lo_b = self.lo[self.basis]
        hi_b = self.hi[self.basis]
        below = np.maximum(0.0, lo_b - self.x_basic)
        above = np.maximum(0.0, self.x_basic - hi_b)
        return float(below.sum() + above.sum())

    def _phase1_gradient(self) -> np.ndarray:
        lo_b = self.lo[self.basis]
        hi_b = self.hi[self.basis]
        g = np.zeros(self.m)
        g[self.x_basic < lo_b - FEAS_TOL] = -1.0
        g[self.x_basic > hi_b + FEAS_TOL] = 1.0
        return g

    def _price(self, phase: int) -> Tuple[int, float]:
        """Pick the entering column; returns (column, direction σ)."""
        if phase == 1:
            basic_cost = self._phase1_gradient()
            offset = np.zeros(self.total)
        else:
            basic_cost = self.cost[self.basis]
            offset = self.cost
        y = self.factor.btran(basic_cost)
        reduced = offset - self.matrix.transpose_dot(y)
        at_lower = self.status == _AT_LOWER
        at_upper = self.status == _AT_UPPER
        candidates = ~self.fixed & (
            (at_lower & (reduced < -DUAL_TOL))
            | (at_upper & (reduced > DUAL_TOL)))
        indices = np.nonzero(candidates)[0]
        if indices.size == 0:
            return -1, 0.0
        if self.iterations < self.bland_after:
            scores = np.abs(reduced[indices])
            entering = int(indices[int(np.argmax(scores))])
        else:
            entering = int(indices[0])  # Bland: least index
        direction = 1.0 if self.status[entering] == _AT_LOWER else -1.0
        return entering, direction

    # -- ratio test + pivot --------------------------------------------

    def _step(self, entering: int, direction: float, phase: int) -> str:
        rows, values = self.matrix.column(entering)
        column_dense = np.zeros(self.m)
        column_dense[rows] = values
        w = self.factor.ftran(column_dense)
        delta = -direction * w  # basic-variable velocity per unit step

        lo_b = self.lo[self.basis]
        hi_b = self.hi[self.basis]
        x_b = self.x_basic

        best_t = np.inf
        best_row = -1
        best_bound = 0  # _AT_LOWER / _AT_UPPER the leaving var lands on
        moving = np.nonzero(np.abs(delta) > PIVOT_TOL)[0]
        bland = self.iterations >= self.bland_after
        for i in moving:
            d = delta[i]
            value = x_b[i]
            low, high = lo_b[i], hi_b[i]
            if phase == 1 and value < low - FEAS_TOL:
                # Infeasible below: blocks only when moving up onto lo.
                if d > 0.0:
                    t = (low - value) / d
                    bound = _AT_LOWER
                else:
                    continue
            elif phase == 1 and value > high + FEAS_TOL:
                if d < 0.0:
                    t = (value - high) / (-d)
                    bound = _AT_UPPER
                else:
                    continue
            elif d < 0.0:
                if not np.isfinite(low):
                    continue
                t = (value - low) / (-d)
                bound = _AT_LOWER
            else:
                if not np.isfinite(high):
                    continue
                t = (high - value) / d
                bound = _AT_UPPER
            t = max(t, 0.0)
            if t < best_t - FEAS_TOL:
                best_t, best_row, best_bound = t, int(i), bound
            elif t < best_t + FEAS_TOL and best_row >= 0:
                if bland:
                    if self.basis[i] < self.basis[best_row]:
                        best_t = min(best_t, t)
                        best_row, best_bound = int(i), bound
                elif abs(d) > abs(delta[best_row]):
                    best_t = min(best_t, t)
                    best_row, best_bound = int(i), bound

        bound_span = self.hi[entering] - self.lo[entering]
        if bound_span < best_t and np.isfinite(bound_span):
            # Bound flip: the entering variable crosses its own range
            # before any basic blocks; no basis change.
            self.x_basic = x_b - direction * bound_span * w
            self.status[entering] = (_AT_UPPER if direction > 0
                                     else _AT_LOWER)
            return "ok"
        if best_row < 0:
            if not np.isfinite(best_t):
                return "unbounded"
            return "unbounded"  # pragma: no cover - defensive

        entering_start = (self.lo[entering] if direction > 0
                          else self.hi[entering])
        entering_value = entering_start + direction * best_t
        self.x_basic = x_b - direction * best_t * w
        leaving = int(self.basis[best_row])
        self.status[leaving] = best_bound
        # Snap the leaving variable's stored value onto its bound.
        self.basis[best_row] = entering
        self.status[entering] = _BASIC
        self.x_basic[best_row] = entering_value
        if not self.factor.update(best_row, w):
            return "refactor"
        return "ok"

    # -- extraction ----------------------------------------------------

    def solution(self) -> np.ndarray:
        self._refresh_nonbasic_values()
        x = self.nonbasic_value.copy()
        if self.m:
            x[self.basis] = self.x_basic
            # Clamp basic values onto their bounds within tolerance so
            # downstream consumers see exactly-feasible numbers.
            np.clip(x, self.lo, np.where(np.isfinite(self.hi),
                                         self.hi, np.inf), out=x)
        return x

    def export_state(self) -> LpState:
        row_basic = []
        for column in self.basis:
            column = int(column)
            if column < self.n_struct:
                row_basic.append(("v", column))
            else:
                row_basic.append(("s", column - self.n_struct))
        at_upper = []
        for column in np.nonzero(self.status == _AT_UPPER)[0]:
            column = int(column)
            if column < self.n_struct:
                at_upper.append(("v", column))
            else:
                at_upper.append(("s", column - self.n_struct))
        return LpState(row_basic=tuple(row_basic),
                       at_upper=tuple(at_upper))
