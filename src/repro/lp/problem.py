"""A small LP modeling layer over the simplex solver.

Lets AP-Rad express its radius-estimation program naturally::

    problem = LpProblem(maximize=True)
    radii = [problem.add_variable(f"r_{bssid}", low=0, up=r_max) ...]
    problem.add_constraint({i: 1.0, j: 1.0}, ">=", d_ij)
    problem.set_objective({i: 1.0 for i in range(n)})
    result = problem.solve()

The ``solver`` argument selects the from-scratch dense simplex
(default), the sparse revised simplex (``"revised"`` — supports warm
starts from a previous solve's basis), or ``scipy.optimize.linprog``
(used by the test suite as a cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.faults import InfeasibleError, SolverError, UnboundedError
from repro.lp.revised import LpState, RevisedResult, solve_revised
from repro.lp.simplex import LpResult, solve_lp

_SENSES = ("<=", ">=", "==")


def _check_result(result: LpResult, raise_on_failure: bool) -> LpResult:
    """Optionally promote a non-optimal status to a typed exception."""
    if not raise_on_failure or result.is_optimal:
        return result
    if result.status == "infeasible":
        raise InfeasibleError()
    if result.status == "unbounded":
        raise UnboundedError()
    raise SolverError(f"LP solve failed: {result.status}",
                      status=result.status)


@dataclass
class _Constraint:
    coefficients: Dict[int, float]
    sense: str
    rhs: float
    name: str = ""


@dataclass
class LpProblem:
    """A linear program assembled incrementally."""

    maximize: bool = False
    _names: List[str] = field(default_factory=list)
    _bounds: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    _constraints: List[_Constraint] = field(default_factory=list)
    _objective: Dict[int, float] = field(default_factory=dict)

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def add_variable(self, name: str = "", low: float = 0.0,
                     up: Optional[float] = None) -> int:
        """Add a variable and return its index."""
        if up is not None and up < low:
            raise ValueError(
                f"variable {name!r}: upper bound {up} < lower bound {low}")
        index = len(self._names)
        self._names.append(name or f"x{index}")
        self._bounds.append((low, up))
        return index

    def add_constraint(self, coefficients: Dict[int, float], sense: str,
                       rhs: float, name: str = "") -> None:
        """Add ``sum(coef_i * x_i) <sense> rhs``."""
        if sense not in _SENSES:
            raise ValueError(f"sense must be one of {_SENSES}, got {sense!r}")
        for index in coefficients:
            if not 0 <= index < len(self._names):
                raise IndexError(f"unknown variable index {index}")
        self._constraints.append(
            _Constraint(dict(coefficients), sense, float(rhs), name))

    def set_objective(self, coefficients: Dict[int, float]) -> None:
        """Set the (sparse) objective vector."""
        for index in coefficients:
            if not 0 <= index < len(self._names):
                raise IndexError(f"unknown variable index {index}")
        self._objective = dict(coefficients)

    def set_objective_coefficient(self, index: int, value: float) -> None:
        """Set a single objective coefficient in place."""
        if not 0 <= index < len(self._names):
            raise IndexError(f"unknown variable index {index}")
        self._objective[index] = float(value)

    def set_constraint_rhs(self, index: int, rhs: float) -> None:
        """Retune an existing constraint's right-hand side in place.

        This is the incremental-refit hook: tightening or relaxing a
        row does not invalidate a warm-start basis, so the next
        ``solve(solver="revised", warm_start=...)`` only repairs the
        rows whose rhs actually moved.
        """
        if not 0 <= index < len(self._constraints):
            raise IndexError(f"unknown constraint index {index}")
        self._constraints[index].rhs = float(rhs)

    def _assemble(self):
        n = len(self._names)
        cost = np.zeros(n)
        for index, value in self._objective.items():
            cost[index] = value
        a_ub: List[np.ndarray] = []
        b_ub: List[float] = []
        a_eq: List[np.ndarray] = []
        b_eq: List[float] = []
        for constraint in self._constraints:
            row = np.zeros(n)
            for index, value in constraint.coefficients.items():
                row[index] = value
            if constraint.sense == "<=":
                a_ub.append(row)
                b_ub.append(constraint.rhs)
            elif constraint.sense == ">=":
                a_ub.append(-row)
                b_ub.append(-constraint.rhs)
            else:
                a_eq.append(row)
                b_eq.append(constraint.rhs)
        return cost, a_ub, b_ub, a_eq, b_eq

    def solve(self, solver: str = "simplex", max_iter: int = 20000,
              warm_start: Optional[LpState] = None,
              raise_on_failure: bool = False) -> LpResult:
        """Solve with the chosen backend.

        ``"simplex"`` is the dense reference implementation,
        ``"revised"`` the sparse revised simplex (the only backend that
        honors ``warm_start``), and ``"scipy"`` linprog/HiGHS as an
        external cross-check.

        With ``raise_on_failure=True`` a non-optimal outcome raises the
        typed :class:`~repro.faults.InfeasibleError`,
        :class:`~repro.faults.UnboundedError`, or
        :class:`~repro.faults.SolverError` instead of making every
        caller string-match ``result.status``.
        """
        if solver == "revised":
            return self.solve_revised(max_iter=max_iter,
                                      warm_start=warm_start,
                                      raise_on_failure=raise_on_failure)
        faults.hook("lp.solve")
        if solver == "simplex":
            cost, a_ub, b_ub, a_eq, b_eq = self._assemble()
            return _check_result(
                solve_lp(cost, a_ub or None, b_ub or None,
                         a_eq or None, b_eq or None,
                         bounds=self._bounds, maximize=self.maximize,
                         max_iter=max_iter),
                raise_on_failure)
        if solver == "scipy":
            return _check_result(self._solve_scipy(), raise_on_failure)
        raise ValueError(f"unknown solver {solver!r}")

    def solve_revised(self, max_iter: int = 20000,
                      warm_start: Optional[LpState] = None,
                      raise_on_failure: bool = False,
                      ) -> RevisedResult:
        """Solve with the sparse revised simplex, keeping its richer
        result (warm-start state, phase-1/refactorization counters).
        """
        faults.hook("lp.solve")
        n = len(self._names)
        cost = np.zeros(n)
        for index, value in self._objective.items():
            cost[index] = value
        constraints = [(c.coefficients, c.sense, c.rhs)
                       for c in self._constraints]
        lower = np.array([low for low, _ in self._bounds]) \
            if n else np.zeros(0)
        upper = [up for _, up in self._bounds]
        return _check_result(
            solve_revised(cost, constraints, lower, upper,
                          maximize=self.maximize,
                          warm_start=warm_start, max_iter=max_iter),
            raise_on_failure)

    def _solve_scipy(self) -> LpResult:
        from scipy.optimize import linprog
        from scipy.sparse import csr_matrix

        n = len(self._names)
        cost = np.zeros(n)
        for index, value in self._objective.items():
            cost[index] = value

        # Sparse triplet assembly: AP-Rad instances have thousands of
        # rows with only 2-3 nonzeros each.
        ub_rows: List[int] = []
        ub_cols: List[int] = []
        ub_data: List[float] = []
        b_ub: List[float] = []
        eq_rows: List[int] = []
        eq_cols: List[int] = []
        eq_data: List[float] = []
        b_eq: List[float] = []
        for constraint in self._constraints:
            if constraint.sense == "==":
                row_index = len(b_eq)
                for col, value in constraint.coefficients.items():
                    eq_rows.append(row_index)
                    eq_cols.append(col)
                    eq_data.append(value)
                b_eq.append(constraint.rhs)
            else:
                sign = 1.0 if constraint.sense == "<=" else -1.0
                row_index = len(b_ub)
                for col, value in constraint.coefficients.items():
                    ub_rows.append(row_index)
                    ub_cols.append(col)
                    ub_data.append(sign * value)
                b_ub.append(sign * constraint.rhs)

        a_ub = (csr_matrix((ub_data, (ub_rows, ub_cols)),
                           shape=(len(b_ub), n)) if b_ub else None)
        a_eq = (csr_matrix((eq_data, (eq_rows, eq_cols)),
                           shape=(len(b_eq), n)) if b_eq else None)
        obj_sign = -1.0 if self.maximize else 1.0
        outcome = linprog(
            obj_sign * cost,
            A_ub=a_ub,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=a_eq,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=self._bounds,
            method="highs",
        )
        if outcome.status == 0:
            return LpResult("optimal", outcome.x, float(cost @ outcome.x),
                            iterations=int(getattr(outcome, "nit", 0)))
        if outcome.status == 2:
            return LpResult("infeasible", None, None)
        if outcome.status == 3:
            return LpResult("unbounded", None, None)
        return LpResult("iteration_limit", None, None)

    def value(self, result: LpResult, index: int) -> float:
        """Value of variable ``index`` in an optimal result."""
        if not result.is_optimal or result.x is None:
            raise ValueError("LP result is not optimal")
        return float(result.x[index])
