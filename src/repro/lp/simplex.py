"""Dense two-phase simplex solver.

Solves::

    minimize (or maximize)  c . x
    subject to              A_ub x <= b_ub
                            A_eq x == b_eq
                            lower <= x <= upper

by conversion to standard form (shifted variables, slack/surplus
columns, phase-1 artificials) and a tableau simplex with Dantzig pivot
selection that falls back to Bland's rule after a pivot budget, which
guarantees termination on degenerate problems.

The implementation is deliberately straightforward dense numpy — the
AP-Rad instances it serves have hundreds of variables and a few thousand
constraints, well within dense-tableau territory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

_EPS = 1e-9


@dataclass
class LpResult:
    """Outcome of an LP solve.

    ``refactorizations`` exists on every backend's result so callers
    can read it uniformly; the dense tableau and scipy backends never
    refactorize a basis, so it stays 0 for them.
    """

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray]
    objective: Optional[float]
    iterations: int = 0
    refactorizations: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def solve_lp(
    c: Sequence[float],
    a_ub: Optional[Sequence[Sequence[float]]] = None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq: Optional[Sequence[Sequence[float]]] = None,
    b_eq: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Tuple[float, Optional[float]]]] = None,
    maximize: bool = False,
    max_iter: int = 20000,
) -> LpResult:
    """Solve a bounded LP; see module docstring for the problem form.

    ``bounds`` is a per-variable list of ``(lower, upper)`` where
    ``upper`` may be ``None`` for unbounded above.  Lower bounds must be
    finite (the AP-Rad radii are naturally bounded below by zero).
    """
    cost = np.asarray(c, dtype=float)
    n = cost.shape[0]
    if maximize:
        cost = -cost

    a_ub_m = _as_matrix(a_ub, n)
    b_ub_v = _as_vector(b_ub)
    a_eq_m = _as_matrix(a_eq, n)
    b_eq_v = _as_vector(b_eq)
    if a_ub_m.shape[0] != b_ub_v.shape[0]:
        raise ValueError("a_ub and b_ub row counts differ")
    if a_eq_m.shape[0] != b_eq_v.shape[0]:
        raise ValueError("a_eq and b_eq row counts differ")

    lower, upper = _normalize_bounds(bounds, n)

    # Shift x = x' + lower so that x' >= 0.
    constant = float(cost @ lower)
    b_ub_shift = b_ub_v - a_ub_m @ lower if a_ub_m.size else b_ub_v
    b_eq_shift = b_eq_v - a_eq_m @ lower if a_eq_m.size else b_eq_v

    # Finite upper bounds become extra <= rows.
    extra_rows: List[np.ndarray] = []
    extra_rhs: List[float] = []
    for index in range(n):
        if upper[index] is not None:
            span = upper[index] - lower[index]
            if span < -_EPS:
                return LpResult("infeasible", None, None)
            row = np.zeros(n)
            row[index] = 1.0
            extra_rows.append(row)
            extra_rhs.append(max(0.0, span))
    if extra_rows:
        a_ub_all = np.vstack([a_ub_m, np.array(extra_rows)]) \
            if a_ub_m.size else np.array(extra_rows)
        b_ub_all = np.concatenate([b_ub_shift, np.array(extra_rhs)]) \
            if b_ub_shift.size else np.array(extra_rhs)
    else:
        a_ub_all, b_ub_all = a_ub_m, b_ub_shift

    solution, status, iterations = _two_phase_simplex(
        cost, a_ub_all, b_ub_all, a_eq_m, b_eq_shift, max_iter)
    obs.current_registry().counter("repro.lp.dense.pivots").inc(iterations)
    if status != "optimal":
        return LpResult(status, None, None, iterations=iterations)
    x = solution[:n] + lower
    objective = float(np.asarray(c, dtype=float) @ x)
    return LpResult("optimal", x, objective, iterations=iterations)


def _as_matrix(rows, n: int) -> np.ndarray:
    if rows is None:
        return np.zeros((0, n))
    matrix = np.asarray(rows, dtype=float)
    if matrix.size == 0:
        return np.zeros((0, n))
    if matrix.ndim != 2 or matrix.shape[1] != n:
        raise ValueError(
            f"constraint matrix must have {n} columns, got {matrix.shape}")
    return matrix


def _as_vector(values) -> np.ndarray:
    if values is None:
        return np.zeros(0)
    return np.asarray(values, dtype=float)


def _normalize_bounds(bounds, n: int):
    if bounds is None:
        lower = np.zeros(n)
        upper: List[Optional[float]] = [None] * n
        return lower, upper
    if len(bounds) != n:
        raise ValueError(f"expected {n} bound pairs, got {len(bounds)}")
    lower = np.zeros(n)
    upper: List[Optional[float]] = [None] * n
    for index, (low, high) in enumerate(bounds):
        if low is None or not np.isfinite(low):
            raise ValueError(
                "lower bounds must be finite (shift variables if needed)")
        lower[index] = float(low)
        if high is not None and np.isfinite(high):
            upper[index] = float(high)
    return lower, upper


def _two_phase_simplex(cost, a_ub, b_ub, a_eq, b_eq, max_iter):
    """Standard-form two-phase tableau simplex on shifted variables."""
    n = cost.shape[0]
    num_ub = a_ub.shape[0]
    num_eq = a_eq.shape[0]
    rows = num_ub + num_eq

    if rows == 0:
        # Only nonnegativity: minimum at 0 unless some cost is negative
        # with no upper bound (unbounded).
        if np.any(cost < -_EPS):
            return None, "unbounded", 0
        return np.zeros(n), "optimal", 0

    # Assemble A x (+ slack) = b with b >= 0.
    slack_count = num_ub
    total_structural = n + slack_count
    table = np.zeros((rows, total_structural))
    rhs = np.zeros(rows)
    needs_artificial = np.zeros(rows, dtype=bool)

    for i in range(num_ub):
        row = a_ub[i].copy()
        value = b_ub[i]
        if value < 0.0:
            row = -row
            value = -value
            table[i, :n] = row
            table[i, n + i] = -1.0  # surplus
            needs_artificial[i] = True
        else:
            table[i, :n] = row
            table[i, n + i] = 1.0  # slack
        rhs[i] = value
    for j in range(num_eq):
        i = num_ub + j
        row = a_eq[j].copy()
        value = b_eq[j]
        if value < 0.0:
            row = -row
            value = -value
        table[i, :n] = row
        rhs[i] = value
        needs_artificial[i] = True

    artificial_rows = np.nonzero(needs_artificial)[0]
    num_art = artificial_rows.shape[0]
    full = np.zeros((rows, total_structural + num_art))
    full[:, :total_structural] = table
    basis = np.full(rows, -1, dtype=int)
    for i in range(num_ub):
        if not needs_artificial[i]:
            basis[i] = n + i
    for art_index, row_index in enumerate(artificial_rows):
        column = total_structural + art_index
        full[row_index, column] = 1.0
        basis[row_index] = column

    # ---- Phase 1: minimize sum of artificials ----
    total_iterations = 0
    if num_art > 0:
        phase1_cost = np.zeros(total_structural + num_art)
        phase1_cost[total_structural:] = 1.0
        status, iterations = _run_simplex(
            full, rhs, phase1_cost, basis, max_iter)
        total_iterations += iterations
        if status != "optimal":
            return None, status, total_iterations
        phase1_value = sum(rhs[i] for i in range(rows)
                           if basis[i] >= total_structural)
        if phase1_value > 1e-7:
            return None, "infeasible", total_iterations
        _drive_out_artificials(full, rhs, basis, total_structural)
        # Remove artificial columns entirely.
        full = full[:, :total_structural]

    # ---- Phase 2 ----
    phase2_cost = np.zeros(full.shape[1])
    phase2_cost[:n] = cost
    status, iterations = _run_simplex(
        full, rhs, phase2_cost, basis, max_iter)
    total_iterations += iterations
    if status != "optimal":
        return None, status, total_iterations
    solution = np.zeros(full.shape[1])
    for i in range(rows):
        if 0 <= basis[i] < full.shape[1]:
            solution[basis[i]] = rhs[i]
    return solution[:n], "optimal", total_iterations


def _drive_out_artificials(full, rhs, basis, total_structural) -> None:
    """Pivot basic artificials out (or mark their redundant rows)."""
    rows = full.shape[0]
    for i in range(rows):
        if basis[i] < total_structural:
            continue
        # Find any structural column with a nonzero entry in this row.
        pivot_col = -1
        for j in range(total_structural):
            if abs(full[i, j]) > 1e-7:
                pivot_col = j
                break
        if pivot_col < 0:
            # Redundant row (all-zero): clear it and keep the artificial
            # basic at value zero by zeroing its column reference.
            full[i, :] = 0.0
            rhs[i] = 0.0
            basis[i] = -1
            continue
        _pivot(full, rhs, basis, i, pivot_col)


def _run_simplex(full, rhs, cost, basis, max_iter) -> Tuple[str, int]:
    """Minimize ``cost`` over the current tableau; Dantzig then Bland."""
    rows, cols = full.shape
    bland_after = max(1000, 10 * (rows + cols))
    for iteration in range(max_iter):
        reduced = _reduced_costs(full, cost, basis)
        if iteration < bland_after:
            entering = int(np.argmin(reduced))
            if reduced[entering] >= -_EPS:
                return "optimal", iteration
        else:
            entering = -1
            for j in range(cols):
                if reduced[j] < -_EPS:
                    entering = j
                    break
            if entering < 0:
                return "optimal", iteration
        # Ratio test.
        leaving = -1
        best_ratio = np.inf
        for i in range(rows):
            coef = full[i, entering]
            if coef > _EPS:
                ratio = rhs[i] / coef
                if ratio < best_ratio - _EPS or (
                        abs(ratio - best_ratio) <= _EPS
                        and (leaving < 0 or basis[i] < basis[leaving])):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded", iteration
        _pivot(full, rhs, basis, leaving, entering)
    return "iteration_limit", max_iter


def _reduced_costs(full, cost, basis) -> np.ndarray:
    rows = full.shape[0]
    basic_cost = np.zeros(rows)
    for i in range(rows):
        if basis[i] >= 0:
            basic_cost[i] = cost[basis[i]]
    # y^T = c_B^T B^{-1} is implicit in the tableau form: rows are already
    # B^{-1} A, so reduced cost = c - c_B^T (B^{-1} A).
    return cost - basic_cost @ full


def _pivot(full, rhs, basis, row: int, col: int) -> None:
    pivot_value = full[row, col]
    full[row, :] /= pivot_value
    rhs[row] /= pivot_value
    for i in range(full.shape[0]):
        if i == row:
            continue
        factor = full[i, col]
        if factor != 0.0:
            full[i, :] -= factor * full[row, :]
            rhs[i] -= factor * rhs[row]
            if rhs[i] < 0.0 and rhs[i] > -1e-11:
                rhs[i] = 0.0
    basis[row] = col
