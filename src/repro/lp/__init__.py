"""Linear-programming substrate for the AP-Rad radius estimation.

AP-Rad (paper Section III-C2) estimates every AP's maximum transmission
distance by solving::

    maximize   sum(r_i)
    subject to r_i + r_j >= d_ij   for co-observed AP pairs
               r_i + r_j <  d_ij   for never-co-observed pairs
               0 <= r_i <= r_max

This package provides a from-scratch dense two-phase simplex solver
(:func:`solve_lp`) plus a small modeling layer (:class:`LpProblem`).
The solver is cross-checked against ``scipy.optimize.linprog`` in the
test suite, and :class:`LpProblem` can delegate to scipy for large
instances.
"""

from repro.lp.simplex import LpResult, solve_lp
from repro.lp.problem import LpProblem

__all__ = ["solve_lp", "LpResult", "LpProblem"]
