"""Linear-programming substrate for the AP-Rad radius estimation.

AP-Rad (paper Section III-C2) estimates every AP's maximum transmission
distance by solving::

    maximize   sum(r_i)
    subject to r_i + r_j >= d_ij   for co-observed AP pairs
               r_i + r_j <  d_ij   for never-co-observed pairs
               0 <= r_i <= r_max

This package provides two from-scratch solvers behind one modeling
layer (:class:`LpProblem`):

* :func:`solve_lp` — a dense two-phase tableau simplex, the reference
  implementation;
* :func:`solve_revised` — a sparse revised simplex (CSC constraint
  storage, LU-factorized basis with product-form eta updates) that
  accepts an :class:`LpState` warm start, so streaming AP-Rad re-fits
  restart from the previous optimal basis.

Both are cross-checked against each other and against
``scipy.optimize.linprog`` in the test suite.
"""

from repro.lp.simplex import LpResult, solve_lp
from repro.lp.revised import LpState, RevisedResult, solve_revised
from repro.lp.problem import LpProblem

__all__ = [
    "solve_lp",
    "LpResult",
    "LpProblem",
    "solve_revised",
    "RevisedResult",
    "LpState",
]
