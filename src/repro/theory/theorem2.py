"""Theorem 2: expected intersected area vs. number of communicable APs.

For APs with maximum transmission distance ``r`` uniformly distributed,
a mobile communicable with ``k`` APs has expected intersected area::

    CA = 8 π r² ∫₀¹ y · p(y)^k dy,
    p(y) = (2/π) (cos⁻¹ y − y √(1−y²))

(the paper's equation (20), in the integrable form of its proof,
equations (24)–(27); ``y = x / 2r`` where ``x`` is the distance from the
mobile).  ``p(y)`` is the probability that one uniformly-placed AP is
visible from both the mobile and a point at distance ``2ry``.

Corollary 1: CA decreases monotonically in ``k`` — and hence in the AP
density ``ρ`` via ``k = π r² ρ`` — and, at fixed density, in ``r``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection
from repro.numerics.quadrature import integrate


def single_ap_probability(y: float) -> float:
    """``p(y)``: chance one AP lands in the lens (paper eq. (24)).

    ``y`` is the normalized distance ``x / 2r`` in [0, 1].
    """
    if not 0.0 <= y <= 1.0:
        raise ValueError(f"y must be in [0, 1], got {y}")
    return (2.0 / math.pi) * (math.acos(y) - y * math.sqrt(1.0 - y * y))


def expected_intersected_area(k: int, r: float = 1.0) -> float:
    """``CA(k)`` — the Fig 2 curve (``r = 1`` reproduces the paper's)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if r <= 0.0:
        raise ValueError(f"r must be > 0, got {r}")

    def integrand(y: float) -> float:
        return y * single_ap_probability(y) ** k

    return 8.0 * math.pi * r * r * integrate(integrand, 0.0, 1.0)


def expected_area_at_density(density: float, r: float) -> float:
    """``CA`` at AP density ``ρ`` via ``k = π r² ρ`` (Corollary 1).

    ``k`` is real-valued here; ``p(y)^k`` extends smoothly, matching the
    corollary's monotonicity argument.  This is the Fig 3 curve when
    swept over ``r`` at fixed ``ρ``.
    """
    if density <= 0.0:
        raise ValueError(f"density must be > 0, got {density}")
    if r <= 0.0:
        raise ValueError(f"r must be > 0, got {r}")
    k = math.pi * r * r * density
    if k < 1e-9:
        raise ValueError(f"density*area gives k={k}, too small")

    def integrand(y: float) -> float:
        return y * single_ap_probability(y) ** k

    return 8.0 * math.pi * r * r * integrate(integrand, 0.0, 1.0)


def monte_carlo_intersected_area(k: int, r: float,
                                 rng: np.random.Generator,
                                 trials: int = 200) -> Tuple[float, float]:
    """Monte-Carlo estimate of ``CA(k)``: (mean, standard error).

    Each trial places the mobile at the origin, draws ``k`` APs
    uniformly in the disc of radius ``r`` (they must be communicable),
    and measures the exact area of the intersection of the APs'
    coverage discs.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    areas = np.empty(trials)
    for trial in range(trials):
        # Uniform points in a disc via sqrt radius sampling.
        radii = r * np.sqrt(rng.uniform(0.0, 1.0, k))
        angles = rng.uniform(0.0, 2.0 * math.pi, k)
        discs = [
            Circle(Point(radius * math.cos(angle),
                         radius * math.sin(angle)), r)
            for radius, angle in zip(radii, angles)
        ]
        areas[trial] = DiscIntersection(discs).area
    mean = float(areas.mean())
    stderr = float(areas.std(ddof=1) / math.sqrt(trials)) if trials > 1 else 0.0
    return mean, stderr
