"""Numeric evaluation of the paper's theorems.

* :mod:`repro.theory.theorem1` — the link-budget coverage bound and the
  LNA noise-figure improvement analysis (Section III-A),
* :mod:`repro.theory.theorem2` — expected intersected area vs. number of
  communicable APs (Fig 2) and vs. radius/density (Fig 3, Corollary 1),
* :mod:`repro.theory.theorem3` — effect of an estimated radius R:
  expected area for R >= r (Fig 5) and coverage probability
  ``(R/r)^{2k}`` for R < r (Fig 6),

each with a Monte-Carlo counterpart used to validate the closed-form
integrals in the test suite and benches.
"""

from repro.theory.theorem1 import (
    coverage_improvement_factor,
    lna_noise_figure_improvement_db,
    required_receiver_gain_dbi,
    theorem1_max_distance_m,
)
from repro.theory.theorem2 import (
    expected_intersected_area,
    expected_area_at_density,
    monte_carlo_intersected_area,
    single_ap_probability,
)
from repro.theory.theorem3 import (
    coverage_probability_underestimate,
    expected_area_overestimate,
    lens_area_c12,
    monte_carlo_overestimate,
)

__all__ = [
    "theorem1_max_distance_m",
    "lna_noise_figure_improvement_db",
    "coverage_improvement_factor",
    "required_receiver_gain_dbi",
    "expected_intersected_area",
    "expected_area_at_density",
    "single_ap_probability",
    "monte_carlo_intersected_area",
    "expected_area_overestimate",
    "coverage_probability_underestimate",
    "lens_area_c12",
    "monte_carlo_overestimate",
]
