"""Theorem 1: the coverage bound and the LNA improvement analysis.

The theorem: ``20 log10 D < G_rx - NF_lna - SNR_min + C`` with
``C = P_tx + G_tx - 20 log10(4π/λ) - 10 log10 B + 174``.

Beyond the bound itself (shared with :mod:`repro.radio.link_budget`),
this module quantifies the paper's two design observations:

* adding a high-gain LNA replaces the chain noise figure (NIC NF,
  4–6 dB) with the LNA's (1.5 dB), a 2.5–4.5 dB SNR improvement,
* every 20 dB of link-budget improvement is a 10x coverage radius
  (from the ``20 log10 D`` slope).
"""

from __future__ import annotations

from repro.radio.link_budget import Transmitter, coverage_radius_m


def theorem1_max_distance_m(receiver_gain_dbi: float,
                            noise_figure_db: float, snr_min_db: float,
                            tx_power_dbm: float, tx_gain_dbi: float,
                            frequency_hz: float,
                            bandwidth_hz: float) -> float:
    """The Theorem 1 free-space coverage radius for raw parameters."""
    transmitter = Transmitter(power_dbm=tx_power_dbm,
                              antenna_gain_dbi=tx_gain_dbi,
                              frequency_hz=frequency_hz)
    return coverage_radius_m(receiver_gain_dbi, noise_figure_db,
                             snr_min_db, transmitter, bandwidth_hz)


def lna_noise_figure_improvement_db(nic_noise_figure_db: float,
                                    lna_noise_figure_db: float) -> float:
    """SNR improvement from putting a high-gain LNA before the NIC.

    "Without LNA, the noise figure of the receiver chain is that of the
    WNIC ... the noise figure of the receiver chain with an LNA
    decreases by NF_nic - NF_lna."  For the paper's numbers
    (NIC 4–6 dB, LNA 1.5 dB) this is 2.5–4.5 dB.
    """
    return nic_noise_figure_db - lna_noise_figure_db


def required_receiver_gain_dbi(target_radius_m: float,
                               noise_figure_db: float, snr_min_db: float,
                               tx_power_dbm: float, tx_gain_dbi: float,
                               frequency_hz: float,
                               bandwidth_hz: float) -> float:
    """Invert Theorem 1: the antenna gain needed for a target radius.

    The coverage-planning question an adversary actually asks: "I want
    to cover the whole campus (D meters) — what antenna do I need?"
    Solves ``20 log10 D = G_rx - NF - SNR_min + C`` for ``G_rx``.
    """
    import math

    from repro.radio.link_budget import theorem1_constant_c

    if target_radius_m <= 0.0:
        raise ValueError(
            f"target radius must be > 0 m, got {target_radius_m}")
    transmitter = Transmitter(power_dbm=tx_power_dbm,
                              antenna_gain_dbi=tx_gain_dbi,
                              frequency_hz=frequency_hz)
    c = theorem1_constant_c(transmitter, bandwidth_hz)
    return (20.0 * math.log10(target_radius_m)
            + noise_figure_db + snr_min_db - c)


def coverage_improvement_factor(link_budget_gain_db: float) -> float:
    """Coverage-radius multiplier from a link-budget gain in dB.

    From ``20 log10 D``: radius scales as ``10^(gain/20)``, so the
    2.5–4.5 dB LNA improvement buys a 1.33x–1.68x radius.
    """
    return 10.0 ** (link_budget_gain_db / 20.0)
