"""Theorem 3: the cost of an estimated radius R that differs from r.

Two regimes (paper Section III-C2, Figs 5–6):

* ``R >= r`` (overestimate): the intersection always covers the true
  location but its expected size grows with R::

      CA = π ∫₀^{2R} (A(C12)/(π r²))^k d(x²)

  where ``A(C12)`` is the overlap area of the mobile's true
  communicability disc (radius r) and the candidate point's disc
  (radius R) at separation x — with the containment case
  (``x <= R - r``, overlap = π r²) handled explicitly.

* ``R < r`` (underestimate): the intersection may miss the true
  location entirely; the probability it still covers it is
  ``p = (R/r)^{2k}``, which collapses quickly ("the probability of the
  intersected area covering the real location quickly becomes extremely
  small when k is large") — the paper's argument for preferring
  overestimates.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection
from repro.numerics.quadrature import integrate


def lens_area_c12(x: float, r: float, big_r: float) -> float:
    """Overlap area of discs of radius ``r`` and ``big_r`` at distance ``x``.

    The paper's equation (36), made piecewise-total: full containment
    below ``|R - r|``, zero beyond ``R + r``.
    """
    if x < 0.0:
        raise ValueError(f"distance must be >= 0, got {x}")
    if x >= r + big_r:
        return 0.0
    if x <= abs(big_r - r):
        smaller = min(r, big_r)
        return math.pi * smaller * smaller
    cos_r = (x * x + r * r - big_r * big_r) / (2.0 * x * r)
    cos_big = (x * x + big_r * big_r - r * r) / (2.0 * x * big_r)
    cos_r = min(1.0, max(-1.0, cos_r))
    cos_big = min(1.0, max(-1.0, cos_big))
    root = math.sqrt(max(0.0, ((r + big_r) ** 2 - x * x)
                         * (x * x - (r - big_r) ** 2)))
    return (r * r * math.acos(cos_r)
            + big_r * big_r * math.acos(cos_big)
            - 0.5 * root)


def expected_area_overestimate(k: int, r: float, big_r: float) -> float:
    """Expected intersected area with estimated radius ``R >= r`` (Fig 5).

    ``R = r`` recovers Theorem 2's ``CA(k)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if r <= 0.0 or big_r < r:
        raise ValueError(
            f"need R >= r > 0, got r={r}, R={big_r} "
            "(use coverage_probability_underestimate for R < r)")

    denominator = math.pi * r * r

    def integrand(u: float) -> float:
        # u = x²; Pr{alpha in region} = (A(C12)/πr²)^k.
        return (lens_area_c12(math.sqrt(u), r, big_r) / denominator) ** k

    # Split at the containment kink u = (R - r)² where the integrand
    # stops being identically 1, and integrate in u = x² as the paper
    # writes it (d x²).
    containment_limit = (big_r - r) ** 2
    upper = (big_r + r) ** 2  # integrand is 0 beyond R + r
    tail = integrate(integrand, containment_limit, upper)
    return math.pi * (containment_limit + tail)


def coverage_probability_underestimate(k: int, r: float,
                                       big_r: float) -> float:
    """``p = (R/r)^{2k}`` for ``R < r`` (paper eq. (35), Fig 6)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < big_r <= r:
        raise ValueError(f"need 0 < R <= r, got r={r}, R={big_r}")
    return (big_r / r) ** (2 * k)


def monte_carlo_overestimate(k: int, r: float, big_r: float,
                             rng: np.random.Generator,
                             trials: int = 200) -> Tuple[float, float, float]:
    """Monte-Carlo check of Theorem 3: (mean area, stderr, coverage rate).

    Draws ``k`` communicable APs (uniform in the disc of radius ``r``
    around the mobile at the origin), builds the intersection with the
    *estimated* radius ``R``, and reports the exact region area plus the
    fraction of trials whose region covers the origin.  Valid for any
    ``R > 0`` — with ``R < r`` the coverage rate estimates eq. (35).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    areas = np.empty(trials)
    covered = 0
    origin = Point(0.0, 0.0)
    for trial in range(trials):
        radii = r * np.sqrt(rng.uniform(0.0, 1.0, k))
        angles = rng.uniform(0.0, 2.0 * math.pi, k)
        discs = [
            Circle(Point(radius * math.cos(angle),
                         radius * math.sin(angle)), big_r)
            for radius, angle in zip(radii, angles)
        ]
        region = DiscIntersection(discs)
        areas[trial] = region.area
        if not region.is_empty and region.contains(origin):
            covered += 1
    mean = float(areas.mean())
    stderr = float(areas.std(ddof=1) / math.sqrt(trials)) if trials > 1 else 0.0
    return mean, stderr, covered / trials
