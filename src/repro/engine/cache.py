"""Γ-set memoization for the streaming engine.

On a real campus thousands of devices share identical AP neighborhoods
— everyone in the same lecture hall hears the same APs — so the same
frozen Γ set reaches the localizer over and over.  Localization is a
pure function of (localizer identity, Γ): the disc intersection for a
Γ costs the same whether one device or a thousand ask, so the engine
memoizes it.

The cache key is ``(localizer.cache_key(), frozenset(Γ))``.  The
invariant (see DESIGN.md): **an entry is valid only while the localizer
answers identically for that Γ** — any mutation of the AP knowledge
base (or a re-fit, for AP-Rad) must either change ``cache_key()`` or
be followed by :meth:`GammaCache.invalidate`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Hashable, Optional, Tuple

from repro import obs
from repro.localization.base import LocalizationEstimate
from repro.net80211.mac import MacAddress

#: Distinguishes "cached None" (Γ known unlocatable) from "not cached".
_ABSENT = object()


def _count(event: str, by: int = 1) -> None:
    """Mirror a cache event to ``repro.engine.cache.<event>``."""
    obs.current_registry().counter(f"repro.engine.cache.{event}").inc(by)


class GammaCache:
    """An LRU map from (localizer key, Γ) to a localization estimate.

    ``None`` results are cached too: a Γ with no known APs stays
    unlocatable until the knowledge base changes, and re-discovering
    that is exactly as expensive as a real localization.

    Every event is mirrored to ``repro.engine.cache.*`` counters on the
    currently-routed :class:`~repro.obs.MetricsRegistry` (whatever
    :func:`repro.obs.current_registry` resolves to at event time — the
    engine routes its own registry around each flush).  The plain int
    attributes remain the authoritative per-cache counters.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Optional[LocalizationEstimate]]" = (
            OrderedDict())
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def key_for(localizer_key: str,
                gamma: FrozenSet[MacAddress]) -> Tuple[str, frozenset]:
        return (localizer_key, frozenset(gamma))

    def get(self, localizer_key: str, gamma: FrozenSet[MacAddress]):
        """The cached estimate, or :data:`_ABSENT` on a miss.

        Use :meth:`contains`-free idiom::

            hit = cache.get(key, gamma)
            if hit is not GammaCache.ABSENT: ...
        """
        key = self.key_for(localizer_key, gamma)
        if key in self._entries:
            self.hits += 1
            _count("hit")
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        _count("miss")
        return _ABSENT

    def count_pending_hit(self) -> None:
        """Count a Γ resolved by intra-batch dedup as a memoization hit.

        When a micro-batch contains the same Γ twice, the engine
        computes it once and shares the result before the cache entry
        exists.  That *is* the Γ-set memoization working — the counters
        report it the same way a post-:meth:`put` lookup would.
        """
        self.hits += 1
        _count("hit")

    def put(self, localizer_key: str, gamma: FrozenSet[MacAddress],
            estimate: Optional[LocalizationEstimate]) -> None:
        key = self.key_for(localizer_key, gamma)
        self._entries[key] = estimate
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            evicted += 1
        if evicted:
            _count("eviction", evicted)
        obs.current_registry().gauge("repro.engine.cache.entries").set(
            len(self._entries))

    def invalidate(self) -> None:
        """Drop every entry — call after any AP knowledge-base mutation."""
        self._entries.clear()
        self.invalidations += 1
        _count("invalidation")
        obs.current_registry().gauge("repro.engine.cache.entries").set(0)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


#: Public sentinel for :meth:`GammaCache.get` misses.
GammaCache.ABSENT = _ABSENT
