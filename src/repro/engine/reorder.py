"""Bounded timestamp reordering for streaming ingest paths.

Multi-card captures and multi-producer buses interleave sources, so
records can arrive locally out of order.  :class:`ReorderBuffer` is the
one implementation of the bounded min-heap look-ahead both ingest paths
share: :func:`repro.sniffer.replay.iter_capture` (file replay) and the
per-shard ingest of :mod:`repro.service` (bus delivery).  It restores
exact timestamp order whenever no record is displaced by more than
``capacity`` positions, holds at most ``capacity`` items, and preserves
arrival order among equal timestamps (stable).

``capacity=0`` is an explicit pass-through: items come out exactly as
they went in, with no buffering at all.
"""

from __future__ import annotations

import heapq
from typing import Generic, Iterator, List, Tuple, TypeVar

T = TypeVar("T")


class ReorderBuffer(Generic[T]):
    """A bounded look-ahead that re-sorts a nearly-ordered stream.

    Usage::

        buffer = ReorderBuffer(capacity=256)
        for item in source:
            for ready in buffer.push(item.timestamp, item):
                consume(ready)
        for ready in buffer.drain():
            consume(ready)

    Parameters
    ----------
    capacity:
        Maximum items held; also the maximum displacement (in
        positions) the buffer can correct.  ``0`` disables buffering.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        # (timestamp, arrival index, item): the index makes the sort
        # stable and keeps the item itself out of heap comparisons.
        self._heap: List[Tuple[float, int, T]] = []
        self._arrival = 0

    def push(self, timestamp: float, item: T) -> List[T]:
        """Admit one item; return whatever the admission displaced.

        Eager, not a generator — the admission happens even if the
        caller ignores the result.  With capacity ``0`` the item itself
        is returned immediately; otherwise at most one (the oldest
        buffered) item is released per push once the buffer is full.
        """
        if self.capacity == 0:
            return [item]
        heapq.heappush(self._heap, (timestamp, self._arrival, item))
        self._arrival += 1
        if len(self._heap) > self.capacity:
            return [heapq.heappop(self._heap)[2]]
        return []

    def drain(self) -> Iterator[T]:
        """Release every buffered item in timestamp order."""
        while self._heap:
            yield heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pending(self) -> int:
        """Items currently buffered (0 for a pass-through buffer)."""
        return len(self._heap)
