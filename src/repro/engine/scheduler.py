"""Dirty-set scheduling: which devices need re-localization, and when.

The engine never re-localizes on a timer.  A device enters the dirty
set when its streaming Γ differs from the Γ it was last localized with,
and leaves it when a micro-batch drains it.  Draining in insertion
order keeps latency fair (first-dirtied, first-served) and — because
the order is a pure function of the frame sequence — keeps engine runs
reproducible, which the checkpoint/restore round-trip relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net80211.mac import MacAddress


class MicroBatchScheduler:
    """An insertion-ordered dirty set drained in bounded batches.

    Parameters
    ----------
    batch_size:
        How many devices one :meth:`next_batch` drains, and the
        threshold at which :attr:`ready` reports a batch is due.
    """

    def __init__(self, batch_size: int = 32):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        # dict as an ordered set: key insertion order is drain order.
        self._dirty: Dict[MacAddress, None] = {}

    def mark_dirty(self, mobile: MacAddress) -> bool:
        """Queue a device; True if it was not already queued."""
        if mobile in self._dirty:
            return False
        self._dirty[mobile] = None
        return True

    @property
    def ready(self) -> bool:
        """Whether a full micro-batch is waiting."""
        return len(self._dirty) >= self.batch_size

    def pending(self) -> int:
        return len(self._dirty)

    def next_batch(self, limit: Optional[int] = None) -> List[MacAddress]:
        """Remove and return up to ``limit`` (default batch_size) devices."""
        take = self.batch_size if limit is None else limit
        batch: List[MacAddress] = []
        for mobile in list(self._dirty.keys())[:take]:
            del self._dirty[mobile]
            batch.append(mobile)
        return batch

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def to_list(self) -> List[str]:
        return [str(mobile) for mobile in self._dirty]

    def restore(self, dirty: List[str]) -> None:
        for text in dirty:
            self.mark_dirty(MacAddress.parse(text))
