"""Sink stage: where the engine's estimates flow.

Every flushed estimate is offered to each attached sink.  Sinks bridge
the streaming engine to the existing batch-era consumers: the device
tracker (:class:`TrackerSink` — the engine always owns one), the map
display (:class:`RendererSink`), ad-hoc consumers
(:class:`CallbackSink`), and live dashboards that only want the newest
fix per device (:class:`LatestFixSink`).

Construction is unified behind :func:`make_sink`: callers (the CLI, the
simulation harness) name a sink by spec string — ``"tracker"``,
``"latest"``, ``"renderer:label_devices=false"`` — and supply any
required live objects as keyword context.  The old style of handing a
sink's constructor one positional config dict still works for one
release but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.localization.base import LocalizationEstimate
from repro.net80211.mac import MacAddress
from repro.sniffer.tracker import DeviceTracker


def _warn_dict_config(cls_name: str) -> None:
    warnings.warn(
        f"passing a positional config dict to {cls_name} is deprecated; "
        f"use keyword arguments or make_sink()",
        DeprecationWarning, stacklevel=3)


class EngineSink:
    """Interface: receives every (mobile, timestamp, estimate) flush."""

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Called once when the engine's stream ends (optional)."""


class TrackerSink(EngineSink):
    """Appends every estimate to a :class:`DeviceTracker` track."""

    def __init__(self, tracker: Optional[DeviceTracker] = None):
        if isinstance(tracker, dict):
            _warn_dict_config("TrackerSink")
            tracker = tracker.get("tracker")
        self.tracker = tracker if tracker is not None else DeviceTracker()

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        self.tracker.record(mobile, timestamp, estimate)


class CallbackSink(EngineSink):
    """Forwards every estimate to a user callback."""

    def __init__(self, callback: Callable[
            [MacAddress, float, LocalizationEstimate], None]):
        if isinstance(callback, dict):
            _warn_dict_config("CallbackSink")
            callback = callback["callback"]
        self.callback = callback

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        self.callback(mobile, timestamp, estimate)


class LatestFixSink(EngineSink):
    """Keeps only the newest estimate per device (a live-map feed)."""

    def __init__(self):
        self._latest: Dict[MacAddress,
                           Tuple[float, LocalizationEstimate]] = {}

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        self._latest[mobile] = (timestamp, estimate)

    @property
    def fixes(self) -> Dict[MacAddress, Tuple[float, LocalizationEstimate]]:
        return dict(self._latest)

    def estimates(self) -> Dict[MacAddress, LocalizationEstimate]:
        """The newest estimate per device (display/geojson input shape)."""
        return {mobile: estimate
                for mobile, (_, estimate) in self._latest.items()}


class RendererSink(EngineSink):
    """Plots every estimate on a :class:`repro.display.MapRenderer`."""

    def __init__(self, renderer, label_devices: bool = True):
        if isinstance(renderer, dict):
            _warn_dict_config("RendererSink")
            config = renderer
            renderer = config["renderer"]
            label_devices = bool(config.get("label_devices", label_devices))
        self.renderer = renderer
        self.label_devices = label_devices
        self.emitted = 0

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        label = str(mobile) if self.label_devices else ""
        self.renderer.add_estimate(estimate.position, label=label)
        self.emitted += 1


class NullSink(EngineSink):
    """Counts emissions and discards them.

    The load-test sink: service benchmarks measure engine throughput
    without rendering or tracking overhead polluting the numbers, but
    still assert how many estimates flowed.
    """

    def __init__(self):
        self.emitted = 0
        self.closed = False

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        self.emitted += 1

    def close(self) -> None:
        self.closed = True


class FanoutSink(EngineSink):
    """Composes several sinks into one.

    Accepts any iterable of sinks — list, tuple, generator — and
    snapshots it at construction.
    """

    def __init__(self, sinks: Iterable[EngineSink]):
        self.sinks = list(sinks)

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        for sink in self.sinks:
            sink.emit(mobile, timestamp, estimate)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# Unified construction
# ----------------------------------------------------------------------

#: spec name → (class, context keys the factory forwards when present)
_SINKS = {
    "tracker": (TrackerSink, ("tracker",)),
    "callback": (CallbackSink, ("callback",)),
    "latest": (LatestFixSink, ()),
    "renderer": (RendererSink, ("renderer",)),
    "null": (NullSink, ()),
}


def sink_names() -> Tuple[str, ...]:
    """The spec names :func:`make_sink` accepts, stable order."""
    return tuple(_SINKS)


def make_sink(spec, **context) -> EngineSink:
    """Build a sink from a spec.

    ``spec`` may be:

    * an :class:`EngineSink` instance — returned as-is;
    * an iterable of specs — each built recursively and composed into
      a :class:`FanoutSink`;
    * a string ``name`` or ``name:key=value,...`` (``tracker``,
      ``callback``, ``latest``, ``renderer``), with live objects the
      sink needs — the tracker, the callback, the renderer — supplied
      as keyword ``context``.

    Option values are coerced like localizer specs: ``int`` → ``float``
    → ``bool`` → ``str``.
    """
    if isinstance(spec, EngineSink):
        return spec
    if not isinstance(spec, str) and isinstance(spec, Iterable):
        return FanoutSink(make_sink(part, **context) for part in spec)
    from repro.localization.factory import parse_spec
    name, options = parse_spec(spec)
    try:
        cls, context_keys = _SINKS[name]
    except KeyError:
        known = ", ".join(_SINKS)
        raise ValueError(
            f"unknown sink {name!r}; expected one of: {known}") from None
    kwargs = {key: context[key] for key in context_keys if key in context}
    kwargs.update(options)
    try:
        return cls(**kwargs)
    except (TypeError, KeyError) as error:
        raise ValueError(
            f"bad options for sink {name!r}: {error}") from None
