"""Sink stage: where the engine's estimates flow.

Every flushed estimate is offered to each attached sink.  Sinks bridge
the streaming engine to the existing batch-era consumers: the device
tracker (:class:`TrackerSink` — the engine always owns one), the map
display (:class:`RendererSink`), ad-hoc consumers
(:class:`CallbackSink`), and live dashboards that only want the newest
fix per device (:class:`LatestFixSink`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.localization.base import LocalizationEstimate
from repro.net80211.mac import MacAddress
from repro.sniffer.tracker import DeviceTracker


class EngineSink:
    """Interface: receives every (mobile, timestamp, estimate) flush."""

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Called once when the engine's stream ends (optional)."""


class TrackerSink(EngineSink):
    """Appends every estimate to a :class:`DeviceTracker` track."""

    def __init__(self, tracker: Optional[DeviceTracker] = None):
        self.tracker = tracker if tracker is not None else DeviceTracker()

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        self.tracker.record(mobile, timestamp, estimate)


class CallbackSink(EngineSink):
    """Forwards every estimate to a user callback."""

    def __init__(self, callback: Callable[
            [MacAddress, float, LocalizationEstimate], None]):
        self.callback = callback

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        self.callback(mobile, timestamp, estimate)


class LatestFixSink(EngineSink):
    """Keeps only the newest estimate per device (a live-map feed)."""

    def __init__(self):
        self._latest: Dict[MacAddress,
                           Tuple[float, LocalizationEstimate]] = {}

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        self._latest[mobile] = (timestamp, estimate)

    @property
    def fixes(self) -> Dict[MacAddress, Tuple[float, LocalizationEstimate]]:
        return dict(self._latest)

    def estimates(self) -> Dict[MacAddress, LocalizationEstimate]:
        """The newest estimate per device (display/geojson input shape)."""
        return {mobile: estimate
                for mobile, (_, estimate) in self._latest.items()}


class RendererSink(EngineSink):
    """Plots every estimate on a :class:`repro.display.MapRenderer`."""

    def __init__(self, renderer, label_devices: bool = True):
        self.renderer = renderer
        self.label_devices = label_devices
        self.emitted = 0

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        label = str(mobile) if self.label_devices else ""
        self.renderer.add_estimate(estimate.position, label=label)
        self.emitted += 1


class FanoutSink(EngineSink):
    """Composes several sinks into one."""

    def __init__(self, sinks: List[EngineSink]):
        self.sinks = list(sinks)

    def emit(self, mobile: MacAddress, timestamp: float,
             estimate: LocalizationEstimate) -> None:
        for sink in self.sinks:
            sink.emit(mobile, timestamp, estimate)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
