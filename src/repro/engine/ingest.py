"""Ingest stage: streaming Γ maintenance for the localization engine.

The batch pipeline (:mod:`repro.sniffer.observation`) keeps *every*
observation timestamp so it can answer arbitrary retrospective queries.
A live engine serving millions of devices cannot afford that: it only
needs, per device, the most recent evidence for each AP — enough to
evaluate the sliding-window Γ the next localization will use.

:class:`GammaState` is that bounded structure.  It stores one float per
(mobile, AP) pair — the latest time the pair was proven communicable —
and defines the streaming Γ of a device as the APs heard within
``window_s`` of the device's *own* most recent observation (the same
co-observation semantics as :meth:`ObservationStore.gamma`, evaluated
lazily at the device's frontier rather than at wall-clock "now").

:func:`extract_evidence` mirrors the communicability rules of
:meth:`ObservationStore.ingest` for the frame types that prove a
(mobile, AP) link; frame types that carry no pairwise evidence (probe
requests, beacons) return ``None`` and are handled by the engine's
bookkeeping directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.net80211.frames import FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame


@dataclass(frozen=True)
class Evidence:
    """One proven (mobile, AP) communicability event."""

    mobile: MacAddress
    ap: MacAddress
    timestamp: float


def extract_evidence(received: ReceivedFrame) -> Optional[Evidence]:
    """The (mobile, AP, time) evidence in one captured frame, if any."""
    frame = received.frame
    if frame.frame_type in (FrameType.PROBE_RESPONSE,
                            FrameType.ASSOCIATION_RESPONSE):
        # AP -> mobile: proof the pair can communicate.
        if frame.bssid is None or frame.destination.is_multicast:
            return None
        return Evidence(mobile=frame.destination, ap=frame.bssid,
                        timestamp=received.rx_timestamp)
    if frame.frame_type is FrameType.DATA and frame.bssid is not None:
        mobile = (frame.source if frame.source != frame.bssid
                  else frame.destination)
        if mobile.is_multicast:
            return None
        return Evidence(mobile=mobile, ap=frame.bssid,
                        timestamp=received.rx_timestamp)
    return None


class GammaState:
    """Per-device sliding-window Γ sets, updated one event at a time.

    Memory is O(devices x APs-per-device): only the newest timestamp
    per (mobile, AP) pair is retained.
    """

    def __init__(self, window_s: float = 30.0):
        if window_s <= 0.0:
            raise ValueError(f"window must be > 0 s, got {window_s}")
        self.window_s = window_s
        # mobile -> ap -> latest evidence time
        self._latest_by_ap: Dict[MacAddress, Dict[MacAddress, float]] = {}
        # mobile -> newest evidence time over all APs
        self._frontier: Dict[MacAddress, float] = {}

    def observe(self, evidence: Evidence) -> FrozenSet[MacAddress]:
        """Fold one evidence event in; return the device's current Γ."""
        by_ap = self._latest_by_ap.setdefault(evidence.mobile, {})
        previous = by_ap.get(evidence.ap)
        if previous is None or evidence.timestamp > previous:
            by_ap[evidence.ap] = evidence.timestamp
        frontier = self._frontier.get(evidence.mobile)
        if frontier is None or evidence.timestamp > frontier:
            self._frontier[evidence.mobile] = evidence.timestamp
        return self.gamma(evidence.mobile)

    def gamma(self, mobile: MacAddress) -> FrozenSet[MacAddress]:
        """APs heard within ``window_s`` of the device's newest evidence."""
        by_ap = self._latest_by_ap.get(mobile)
        if not by_ap:
            return frozenset()
        horizon = self._frontier[mobile] - self.window_s
        return frozenset(ap for ap, ts in by_ap.items() if ts >= horizon)

    def last_seen(self, mobile: MacAddress) -> Optional[float]:
        """The newest evidence time for a device (None if never seen)."""
        return self._frontier.get(mobile)

    def devices(self):
        return list(self._latest_by_ap.keys())

    def __len__(self) -> int:
        return len(self._latest_by_ap)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible snapshot of the Γ state."""
        return {
            "window_s": self.window_s,
            "events": {
                str(mobile): {str(ap): ts for ap, ts in by_ap.items()}
                for mobile, by_ap in self._latest_by_ap.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GammaState":
        state = cls(window_s=float(data["window_s"]))
        for mobile_text, by_ap in data.get("events", {}).items():
            mobile = MacAddress.parse(mobile_text)
            parsed = {MacAddress.parse(ap): float(ts)
                      for ap, ts in by_ap.items()}
            state._latest_by_ap[mobile] = parsed
            state._frontier[mobile] = max(parsed.values())
        return state
