"""The streaming localization engine.

Wires the pipeline stages together::

    frames ──> ingest (GammaState, PseudonymLinker)
                 │  Γ changed?
                 v
               dirty-set scheduler ──> micro-batch flush
                                          │  Γ-set memo cache
                                          v
                                       localizer.locate(Γ)
                                          │
                                          v
                                       sinks (tracker, display, ...)

Design points (see DESIGN.md "Streaming engine"):

* **Incremental Γ** — one bounded update per frame; no replaying of
  history.
* **Dirty-set scheduling** — a device is re-localized only when its
  streaming Γ differs from the Γ it was last localized with; estimates
  for an unchanged neighborhood would be identical anyway.
* **Γ-set memoization** — localization is a pure function of
  (localizer identity, Γ); devices sharing an AP neighborhood share one
  disc intersection.  Mutating the AP knowledge base invalidates the
  cache (call :meth:`StreamingEngine.invalidate_cache`, or use a
  localizer whose ``cache_key()`` changes, as AP-Rad's does on re-fit).
* **Micro-batching** — dirty devices drain in configurable batches, so
  ingest latency and localization cost can be traded off explicitly.
* **Checkpoint/restore** — Γ sets, the dirty set, and all tracks
  serialize to JSON; an interrupted run restored from a checkpoint
  finishes with exactly the tracks of an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from repro import faults, obs
from repro.faults import (
    CheckpointError,
    ReproError,
    RetryPolicy,
    WorkerSupervisor,
)
from repro.capture.records import NO_BSSID, FrameBatch, mac_from_int
from repro.engine.cache import GammaCache
from repro.engine.ingest import Evidence, GammaState, extract_evidence
from repro.engine.scheduler import MicroBatchScheduler
from repro.engine.sinks import EngineSink
from repro.engine.stats import EngineStats
from repro.geometry.point import Point
from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.frames import FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.sniffer.tracker import DeviceTracker, PseudonymLinker

PathLike = Union[str, Path]

#: v2 added the ``"metrics"`` registry snapshot; v3 adds the embedded
#: ``"crc32"`` integrity field plus quarantine/failure state.  v1 and
#: v2 checkpoints are still restorable.
CHECKPOINT_VERSION = 3

#: Counter names mirrored into the legacy ``"counters"`` checkpoint
#: block, in its historical key order.
_COUNTER_METRICS = (
    ("frames_ingested", "repro.engine.frames"),
    ("evidence_events", "repro.engine.evidence"),
    ("probe_requests", "repro.engine.probe_requests"),
    ("batches_flushed", "repro.engine.batches"),
    ("estimates_emitted", "repro.engine.estimates"),
    ("unlocatable", "repro.engine.unlocatable"),
    ("refits", "repro.engine.refits"),
)


class StreamingEngine:
    """Event-driven localization over a stream of captured frames.

    Parameters
    ----------
    localizer:
        Any :class:`Localizer`.  It must be ready to ``locate`` before
        the first flush (AP-Rad must be fitted up front).
    window_s:
        Sliding co-observation window for the streaming Γ.
    batch_size:
        Dirty devices per micro-batch; a full batch flushes during
        ingest, stragglers flush on :meth:`flush` / :meth:`run` end.
    cache_size:
        Capacity of the Γ-set memoization cache; ``0`` disables it.
    sinks:
        Extra :class:`EngineSink` consumers beside the built-in tracker.
    workers:
        Process-pool width for batch localization.  ``1`` (default)
        keeps everything in-process; ``N > 1`` fans each micro-batch's
        uncached Γ sets across a lazily created
        ``ProcessPoolExecutor``.  Results are merged in submission
        order either way, so tracks — and checkpoint/resume
        equivalence — are independent of the worker count.
    refit_every:
        Re-fit the localizer's model every N evidence events (``0``
        disables).  Each Γ change is accumulated as a pending
        observation; on schedule the batch is handed to the
        localizer's ``partial_fit`` (AP-Rad's incremental radius LP
        warm-starts from its previous basis), every device is marked
        dirty (new radii can move every estimate), and the fit wall
        time lands in the ``fit`` stage of :class:`EngineStats`.
        Localizers that do not declare ``supports_partial_fit`` ignore
        the schedule.  Until the first re-fit completes, an unfitted
        localizer (``is_fitted`` false) yields no estimates — devices
        flushed early are re-localized after the fit.
    registry:
        The :class:`~repro.obs.MetricsRegistry` this engine reports
        into.  Defaults to a fresh private registry, so concurrent
        engines never share counters; pass
        :func:`repro.obs.default_registry` to publish process-wide.
        While the engine works — ingest, flush, re-fit — its registry
        is routed as :func:`repro.obs.current_registry`, so metrics
        emitted deep in the LP solvers, the spatial grid, and batch
        localization all land here too.
    retry:
        The :class:`~repro.faults.RetryPolicy` wrapped around the
        fallible stages — batch localization, sink emission, and model
        re-fits.  Only :class:`~repro.faults.ReproError` (and the
        policy's configured ``retryable`` types) are retried; anything
        else propagates.  Defaults to 3 attempts with short exponential
        backoff and no jitter, so retried runs stay deterministic.
    quarantine_after:
        After this many consecutive per-device localization failures
        the device is quarantined — dropped from scheduling with the
        failing error recorded — so one poison Γ cannot stall the rest
        of the stream.  ``0`` disables quarantine.
    worker_timeout_s:
        Per-chunk deadline for pool workers (``None`` = wait forever).
        On a timeout or pool breakage the supervisor replaces the pool
        and re-dispatches the chunk, up to its bounded dispatch budget.
    """

    def __init__(self, localizer: Localizer, window_s: float = 30.0,
                 batch_size: int = 32, cache_size: int = 4096,
                 sinks: Sequence[EngineSink] = (), workers: int = 1,
                 refit_every: int = 0,
                 registry: Optional[obs.MetricsRegistry] = None,
                 retry: Optional[RetryPolicy] = None,
                 quarantine_after: int = 3,
                 worker_timeout_s: Optional[float] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if refit_every < 0:
            raise ValueError(
                f"refit_every must be >= 0, got {refit_every}")
        if quarantine_after < 0:
            raise ValueError(
                f"quarantine_after must be >= 0, got {quarantine_after}")
        self.localizer = localizer
        self.workers = workers
        self.refit_every = refit_every
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=0.02, multiplier=2.0, jitter=0.0)
        self.quarantine_after = quarantine_after
        self.worker_timeout_s = worker_timeout_s
        self._executor: Optional[ProcessPoolExecutor] = None
        self._supervisor = WorkerSupervisor(
            timeout_s=worker_timeout_s,
            max_dispatches=3,
            on_failure=self._on_worker_failure,
            current_executor=lambda: self._batch_executor(2),
        ) if workers > 1 else None
        self.gamma_state = GammaState(window_s=window_s)
        self.scheduler = MicroBatchScheduler(batch_size=batch_size)
        self.cache: Optional[GammaCache] = (
            GammaCache(cache_size) if cache_size > 0 else None)
        self.tracker = DeviceTracker()
        self.linker = PseudonymLinker()
        self.sinks: List[EngineSink] = list(sinks)
        self.registry = (registry if registry is not None
                         else obs.MetricsRegistry())
        # Bound instrument handles (hot path: attribute access, no
        # registry lookup).  Binding at init also guarantees the core
        # series appear in every snapshot, even at zero.
        self._c_frames = self.registry.counter("repro.engine.frames")
        self._c_evidence = self.registry.counter("repro.engine.evidence")
        self._c_probes = self.registry.counter(
            "repro.engine.probe_requests")
        self._c_batches = self.registry.counter("repro.engine.batches")
        self._c_estimates = self.registry.counter("repro.engine.estimates")
        self._c_unlocatable = self.registry.counter(
            "repro.engine.unlocatable")
        self._c_refits = self.registry.counter("repro.engine.refits")
        self._g_fit_iterations = self.registry.gauge(
            "repro.engine.fit.iterations")
        self._g_devices = self.registry.gauge("repro.engine.devices.seen")
        self._t_flush = self.registry.timer("repro.engine.flush.duration")
        if self.cache is not None:
            for event in ("hit", "miss", "eviction", "invalidation"):
                self.registry.counter(f"repro.engine.cache.{event}")
            self.registry.gauge("repro.engine.cache.entries")
        # Γ each device was last localized with (dirty = differs now).
        self._last_located: Dict[MacAddress, FrozenSet[MacAddress]] = {}
        self._seen: Set[MacAddress] = set()
        # Consecutive localization failures per device; at
        # ``quarantine_after`` the device moves to the quarantine map
        # (mobile → failing error text) and stops being scheduled.
        self._failures: Dict[MacAddress, int] = {}
        self._quarantine: Dict[MacAddress, str] = {}
        # Re-fit scheduling: Γ snapshots accumulated since the last
        # model fit, handed to localizer.partial_fit on schedule.
        self._pending_refit: List[FrozenSet[MacAddress]] = []
        self._events_since_refit = 0

    # ------------------------------------------------------------------
    # Ingest stage
    # ------------------------------------------------------------------

    def ingest(self, received: ReceivedFrame) -> None:
        """Consume one captured frame; flush if a micro-batch is due."""
        with self._stage("ingest"):
            self._c_frames.inc()
            frame = received.frame
            if frame.frame_type is FrameType.PROBE_REQUEST:
                self._c_probes.inc()
                self._seen.add(frame.source)
                self.linker.ingest(frame)
            else:
                evidence = extract_evidence(received)
                if evidence is not None:
                    self._c_evidence.inc()
                    self._seen.add(evidence.mobile)
                    gamma = self.gamma_state.observe(evidence)
                    if (evidence.mobile not in self._quarantine
                            and gamma != self._last_located.get(
                                evidence.mobile)):
                        self.scheduler.mark_dirty(evidence.mobile)
                    if self.refit_every > 0:
                        if gamma:
                            self._pending_refit.append(gamma)
                        self._events_since_refit += 1
            self._g_devices.set(len(self._seen))
        if (self.refit_every > 0
                and self._events_since_refit >= self.refit_every):
            self._refit()
        while self.scheduler.ready:
            self._flush_batch()

    def ingest_stream(self, stream: Iterable[ReceivedFrame]) -> None:
        """Consume frames without the end-of-stream flush (resumable)."""
        for received in stream:
            self.ingest(received)

    def ingest_batch(self, batch: FrameBatch) -> None:
        """Consume one :class:`~repro.capture.records.FrameBatch`.

        The columnar hot path: frame classification and evidence
        extraction run vectorized over the batch's NumPy columns, and
        only the *interesting* records — probe requests (the pseudonym
        linker needs the full frame) and evidence-bearing frames —
        touch Python objects at all.  Beacons, deauths, and multicast
        traffic never materialize.

        Exactly equivalent to calling :meth:`ingest` per record in row
        order: evidence folds into Γ one event at a time, and the
        refit-schedule and micro-batch-flush checks run after each
        interesting record (they cannot trigger after any other kind),
        so flush interleaving — and therefore tracks and checkpoints —
        match the record-at-a-time path bit for bit.
        """
        records = batch.records
        total = len(records)
        if total == 0:
            return
        with self._stage("ingest"):
            kind = records["kind"]
            frame_types = batch.frame_types
            probe_mask = np.isin(kind, [
                code for code, ft in enumerate(frame_types)
                if ft is FrameType.PROBE_REQUEST])
            resp_mask = np.isin(kind, [
                code for code, ft in enumerate(frame_types)
                if ft in (FrameType.PROBE_RESPONSE,
                          FrameType.ASSOCIATION_RESPONSE)])
            data_mask = np.isin(kind, [
                code for code, ft in enumerate(frame_types)
                if ft is FrameType.DATA])
            src = records["src"]
            dst = records["dst"]
            bssid = records["bssid"]
            rx_ts = records["rx_ts"]
            has_bssid = bssid != np.uint64(NO_BSSID)
            # The evidence mobile: responses prove (destination, bssid);
            # infrastructure data frames prove (non-AP endpoint, bssid).
            mobiles = np.where(resp_mask, dst,
                               np.where(src != bssid, src, dst))
            # 802.11 group bit: bit 40 of the 48-bit address (LSB of
            # the first octet) — multicast mobiles carry no evidence.
            unicast = (mobiles >> np.uint64(40)) & np.uint64(1) == 0
            evidence_mask = (resp_mask | data_mask) & has_bssid & unicast
            self._c_frames.inc(total)
            self._c_probes.inc(int(probe_mask.sum()))
            self._c_evidence.inc(int(evidence_mask.sum()))
            interesting = np.nonzero(probe_mask | evidence_mask)[0]
        for index in interesting:
            with self._stage("ingest"):
                if probe_mask[index]:
                    frame = batch.frame_at(int(index)).frame
                    self._seen.add(frame.source)
                    self.linker.ingest(frame)
                else:
                    mobile = mac_from_int(int(mobiles[index]))
                    evidence = Evidence(
                        mobile=mobile,
                        ap=mac_from_int(int(bssid[index])),
                        timestamp=float(rx_ts[index]))
                    self._seen.add(mobile)
                    gamma = self.gamma_state.observe(evidence)
                    if (mobile not in self._quarantine
                            and gamma != self._last_located.get(mobile)):
                        self.scheduler.mark_dirty(mobile)
                    if self.refit_every > 0:
                        if gamma:
                            self._pending_refit.append(gamma)
                        self._events_since_refit += 1
            if (self.refit_every > 0
                    and self._events_since_refit >= self.refit_every):
                self._refit()
            while self.scheduler.ready:
                self._flush_batch()
        self._g_devices.set(len(self._seen))

    def ingest_batches(self, stream: Iterable[FrameBatch]) -> None:
        """Consume batches without the end-of-stream flush (resumable)."""
        for batch in stream:
            self.ingest_batch(batch)

    def run(self, stream: Iterable[ReceivedFrame]) -> EngineStats:
        """Consume a whole stream, drain every device, close sinks.

        The whole run executes with the engine's registry routed as
        :func:`repro.obs.current_registry`, so instrumentation anywhere
        below — the capture reader, the LP solver inside a re-fit, the
        spatial grid — reports into this engine.
        """
        with obs.use_registry(self.registry), obs.trace("engine.run"):
            self.ingest_stream(stream)
            self.drain()
            for sink in self.sinks:
                sink.close()
            self.close()
        return self.stats()

    def run_batches(self, stream: Iterable[FrameBatch]) -> EngineStats:
        """:meth:`run`, fed by :class:`FrameBatch` slices.

        Pair with :func:`repro.sniffer.replay.iter_capture_batches` for
        the zero-copy columnar replay path; results match :meth:`run`
        over the same records in the same order.
        """
        with obs.use_registry(self.registry), obs.trace("engine.run"):
            self.ingest_batches(stream)
            self.drain()
            for sink in self.sinks:
                sink.close()
            self.close()
        return self.stats()

    def drain(self) -> int:
        """End-of-stream settling: catch-up re-fit, then full flush.

        Exactly what :meth:`run` does when its stream ends, callable on
        its own — the sharded service sends a drain barrier through the
        bus and each shard settles without owning the stream.  Returns
        the estimates emitted by the flush.
        """
        with obs.use_registry(self.registry):
            if self.refit_every > 0 and self._pending_refit:
                # Catch-up fit so end-of-stream evidence (and any
                # devices skipped while the model was unfitted) is not
                # lost.
                self._refit()
            return self.flush()

    def close(self) -> None:
        """Release the worker pool (recreated lazily if flushed again)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def _on_worker_failure(self, index: int, error: BaseException) -> None:
        """Supervisor callback: a chunk timed out / its pool broke.

        The pool is torn down without waiting — a wedged worker would
        otherwise block shutdown — and the supervisor picks up a fresh
        one through ``current_executor`` on re-dispatch.
        """
        self.registry.counter("repro.engine.worker.redispatch",
                              error=type(error).__name__).inc()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Localize + sink stages
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Drain the entire dirty set; returns estimates emitted."""
        emitted = 0
        while self.scheduler.pending():
            emitted += self._flush_batch()
        return emitted

    def _refit(self) -> None:
        """Hand the pending Γ snapshots to the localizer's partial_fit."""
        pending = self._pending_refit
        self._pending_refit = []
        self._events_since_refit = 0
        if not self.localizer.supports_partial_fit or not pending:
            return
        # Evidence ingestion happens before the solve inside
        # partial_fit and is NOT idempotent (AP-Rad's evidence counts
        # accumulate), so a retry after a mid-solve fault must hand the
        # localizer an *empty* batch: the already-absorbed evidence
        # stays, and partial_fit([]) just re-runs the identical solve.
        batches = iter([pending])

        def attempt():
            faults.hook("engine.refit")
            batch = next(batches, [])
            with obs.use_registry(self.registry), \
                    obs.trace("engine.refit", observations=len(pending)), \
                    self._stage("fit"):
                return self.localizer.partial_fit(batch)

        try:
            estimate = self.retry.call(
                attempt, on_retry=self._count_retry("engine.refit"))
        except ReproError as error:
            # The model keeps its previous radii; estimates stay
            # answerable, just stale until the next scheduled re-fit.
            self.registry.counter("repro.engine.refit.failures",
                                  error=type(error).__name__).inc()
            return
        self._c_refits.inc()
        self._g_fit_iterations.set(int(
            getattr(estimate, "solver_iterations", 0)))
        # New radii can move every estimate: every device with a live Γ
        # goes back through localization.  The memo cache keys on
        # localizer.cache_key(), which the re-fit bumped.
        for mobile in self.gamma_state.devices():
            if self.gamma_state.gamma(mobile):
                self.scheduler.mark_dirty(mobile)

    def _localizer_ready(self) -> bool:
        return bool(getattr(self.localizer, "is_fitted", True))

    def _flush_batch(self) -> int:
        batch = self.scheduler.next_batch()
        if not batch:
            return 0
        self._c_batches.inc()
        gammas = [self.gamma_state.gamma(mobile) for mobile in batch]
        if not self._localizer_ready():
            # Model not fitted yet (refit_every engines start cold):
            # nothing can be located.  The batch still clears — the
            # first fit marks every Γ-holding device dirty again.
            for mobile, gamma in zip(batch, gammas):
                self._last_located[mobile] = gamma
            return 0
        with obs.use_registry(self.registry), \
                obs.trace("engine.flush", batch=len(batch)), \
                self._t_flush.time():
            try:
                estimates = self._locate_with_retry(gammas)
            except ReproError as error:
                return self._flush_degraded(batch, gammas, error)
            emitted = 0
            for mobile, gamma, estimate in zip(batch, gammas, estimates):
                self._last_located[mobile] = gamma
                self._failures.pop(mobile, None)
                if estimate is None:
                    self._c_unlocatable.inc()
                    continue
                timestamp = self.gamma_state.last_seen(mobile)
                with self._stage("sink"):
                    self._emit(mobile, timestamp, estimate)
                emitted += 1
        return emitted

    def _locate_with_retry(
        self, gammas: Sequence[FrozenSet[MacAddress]]
    ) -> List[Optional[LocalizationEstimate]]:
        def attempt():
            faults.hook("engine.flush")
            with self._stage("localize"):
                return self._locate_batch_memoized(gammas)

        return self.retry.call(
            attempt, on_retry=self._count_retry("engine.flush"))

    def _flush_degraded(self, batch: Sequence[MacAddress],
                        gammas: Sequence[FrozenSet[MacAddress]],
                        error: ReproError) -> int:
        """Per-device salvage after the batch path exhausted its retries.

        Devices are located one at a time, so the failure isolates to
        whichever Γ actually triggers it; healthy devices still emit.
        A device that keeps failing is re-dispatched until
        :attr:`quarantine_after` consecutive failures quarantine it.
        """
        self.registry.counter("repro.engine.flush.degraded",
                              error=type(error).__name__).inc()
        emitted = 0
        for mobile, gamma in zip(batch, gammas):
            try:
                faults.hook("engine.localize", key=str(mobile))
                with self._stage("localize"):
                    estimate = self.localizer.locate(gamma)
            except ReproError as device_error:
                self._record_failure(mobile, gamma, device_error)
                continue
            self._failures.pop(mobile, None)
            self._last_located[mobile] = gamma
            if estimate is None:
                self._c_unlocatable.inc()
                continue
            timestamp = self.gamma_state.last_seen(mobile)
            with self._stage("sink"):
                self._emit(mobile, timestamp, estimate)
            emitted += 1
        return emitted

    def _record_failure(self, mobile: MacAddress,
                        gamma: FrozenSet[MacAddress],
                        error: BaseException) -> None:
        count = self._failures.get(mobile, 0) + 1
        self._failures[mobile] = count
        self.registry.counter("repro.engine.localize.failures",
                              error=type(error).__name__).inc()
        if self.quarantine_after and count >= self.quarantine_after:
            self._failures.pop(mobile, None)
            self._quarantine[mobile] = f"{type(error).__name__}: {error}"
            self.registry.counter("repro.engine.quarantined").inc()
            self._last_located[mobile] = gamma
        elif self.quarantine_after:
            # Bounded re-dispatch: the flush drain loop keeps retrying
            # this device until it answers or quarantines.
            self.scheduler.mark_dirty(mobile)
        else:
            # Quarantine disabled: retry only when Γ changes again, so
            # a permanently failing device cannot spin the drain loop.
            self._last_located[mobile] = gamma

    def _count_retry(self, site: str):
        """An ``on_retry`` callback counting into the engine registry."""
        counter = self.registry.counter("repro.engine.retries", site=site)

        def on_retry(attempt: int, error: BaseException,
                     delay: float) -> None:
            counter.inc()

        return on_retry

    def quarantined(self) -> Dict[MacAddress, str]:
        """Quarantined devices and the error text that condemned them."""
        return dict(self._quarantine)

    def _locate_batch_memoized(
        self, gammas: Sequence[FrozenSet[MacAddress]]
    ) -> List[Optional[LocalizationEstimate]]:
        """One ``locate_batch`` call for a micro-batch's worth of Γ sets.

        Cache hits are resolved up front; the remaining *distinct* Γ
        sets (duplicates within a batch collapse to one computation)
        go through :meth:`Localizer.locate_batch` in one shot —
        vectorized in-process, or fanned across the worker pool when
        ``workers > 1``.  Merge order is the batch's submission order,
        keeping runs reproducible whatever the worker count.
        """
        results: List[Optional[LocalizationEstimate]] = [None] * len(gammas)
        key = (self.localizer.cache_key() if self.cache is not None
               else None)
        # Insertion-ordered, so the pending list is deterministic.
        pending: Dict[FrozenSet[MacAddress], List[int]] = {}
        for index, gamma in enumerate(gammas):
            if not gamma:
                continue
            if gamma in pending:
                # Intra-batch duplicate: one computation will serve it.
                pending[gamma].append(index)
                if self.cache is not None:
                    self.cache.count_pending_hit()
                continue
            if self.cache is not None:
                cached = self.cache.get(key, gamma)
                if cached is not GammaCache.ABSENT:
                    results[index] = cached
                    continue
            pending[gamma] = [index]
        if not pending:
            return results
        order = list(pending.keys())
        executor = self._batch_executor(len(order))
        estimates = self.localizer.locate_batch(
            order, executor=executor,
            supervisor=self._supervisor if executor is not None else None)
        for gamma, estimate in zip(order, estimates):
            if self.cache is not None:
                self.cache.put(key, gamma, estimate)
            for index in pending[gamma]:
                results[index] = estimate
        return results

    def _batch_executor(self, pending_count: int
                        ) -> Optional[ProcessPoolExecutor]:
        if self.workers <= 1 or pending_count < 2:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def _emit(self, mobile: MacAddress, timestamp: float,
              estimate: LocalizationEstimate) -> None:
        self._c_estimates.inc()
        latest = self.tracker.latest(mobile)
        if latest is not None and timestamp < latest.timestamp:
            # A late, out-of-order burst for an already-tracked device:
            # keep the track monotonic rather than raising mid-stream.
            timestamp = latest.timestamp
        self.tracker.record(mobile, timestamp, estimate)
        for sink in self.sinks:
            def attempt(sink=sink):
                faults.hook("sink.emit", key=str(mobile))
                sink.emit(mobile, timestamp, estimate)

            try:
                self.retry.call(
                    attempt, on_retry=self._count_retry("sink.emit"))
            except Exception as error:
                # A sink is an observer, never the pipeline: drop the
                # emission, count it, keep streaming.  The tracker above
                # already holds the authoritative fix.
                self.registry.counter("repro.engine.sink.failures",
                                      error=type(error).__name__).inc()

    def invalidate_cache(self) -> None:
        """Flush the Γ memoization after an AP knowledge-base mutation."""
        if self.cache is not None:
            self.cache.invalidate()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _stage(self, name: str):
        """Timing context for one pipeline stage (lazy per-stage series)."""
        return self.registry.timer("repro.engine.stage.duration",
                                   stage=name).time()

    def _stage_seconds(self) -> Dict[str, float]:
        """Accumulated seconds per stage, from the registry series."""
        return {
            dict(inst.labels).get("stage", ""): inst.sum
            for inst in self.registry.find("repro.engine.stage.duration")
        }

    def metrics_snapshot(self) -> dict:
        """The engine registry's JSON-compatible snapshot."""
        return self.registry.snapshot()

    def stats(self) -> EngineStats:
        """A consistent snapshot of every pipeline counter.

        A *view* over :attr:`registry` — the registry is the source of
        truth; this projects the core series into the ergonomic
        dataclass the CLI and benches print.
        """
        cache_counters = (self.cache.counters() if self.cache is not None
                          else {})

        def _total(metric: str) -> int:
            return sum(int(inst.value)
                       for inst in self.registry.find(metric))

        return EngineStats(
            frames_ingested=int(self._c_frames.value),
            evidence_events=int(self._c_evidence.value),
            probe_requests=int(self._c_probes.value),
            devices_seen=len(self._seen),
            batches_flushed=int(self._c_batches.value),
            estimates_emitted=int(self._c_estimates.value),
            unlocatable=int(self._c_unlocatable.value),
            cache_enabled=self.cache is not None,
            cache_hits=cache_counters.get("hits", 0),
            cache_misses=cache_counters.get("misses", 0),
            cache_entries=cache_counters.get("entries", 0),
            refits=int(self._c_refits.value),
            last_fit_iterations=int(self._g_fit_iterations.value),
            stage_seconds=self._stage_seconds(),
            retries=_total("repro.engine.retries"),
            sink_failures=_total("repro.engine.sink.failures"),
            quarantined=len(self._quarantine),
            degraded=(_total("repro.engine.flush.degraded")
                      + _total("repro.localization.fallback.degraded")),
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Serialize resumable state (Γ sets, dirty set, tracks) to
        JSON-compatible types.

        Estimate *regions* are not persisted — a restored track carries
        positional fixes (position, algorithm, k) only.  The pseudonym
        linker is rebuilt from the live stream after restore.
        """
        return {
            "engine_checkpoint": CHECKPOINT_VERSION,
            "config": {
                "window_s": self.gamma_state.window_s,
                "batch_size": self.scheduler.batch_size,
                "cache_size": (self.cache.max_entries
                               if self.cache is not None else 0),
                "workers": self.workers,
                "refit_every": self.refit_every,
                "quarantine_after": self.quarantine_after,
                "worker_timeout_s": self.worker_timeout_s,
            },
            "gamma": self.gamma_state.to_dict(),
            "dirty": self.scheduler.to_list(),
            "last_located": {
                str(mobile): sorted(str(ap) for ap in gamma)
                for mobile, gamma in self._last_located.items()
            },
            "seen": sorted(str(mobile) for mobile in self._seen),
            "tracks": {
                str(mobile): [
                    {
                        "ts": point.timestamp,
                        "x": point.estimate.position.x,
                        "y": point.estimate.position.y,
                        "algorithm": point.estimate.algorithm,
                        "k": point.estimate.used_ap_count,
                    }
                    for point in self.tracker.track_of(mobile)
                ]
                for mobile in self.tracker.devices()
            },
            # Legacy (v1) counter block, kept so external consumers of
            # checkpoint JSON keep working; the registry snapshot below
            # is the authoritative cumulative record.
            "counters": dict(
                [(field, int(self.registry.counter(metric).value))
                 for field, metric in _COUNTER_METRICS]
                + [("last_fit_iterations",
                    int(self._g_fit_iterations.value))]
            ),
            "metrics": self.registry.snapshot(),
            # Pending re-fit evidence: the localizer's own model (LP
            # basis, radii) is NOT serialized, so a restored engine
            # must be given a localizer refitted from the same corpus
            # — or simply re-accumulates and refits on schedule.
            "refit": {
                "events_since_refit": self._events_since_refit,
                "pending": [sorted(str(ap) for ap in gamma)
                            for gamma in self._pending_refit],
            },
            "stage_seconds": self._stage_seconds(),
            # v3 fault-tolerance state: a resumed run must not
            # re-admit devices the interrupted run already condemned.
            "quarantine": {str(mobile): reason
                           for mobile, reason in self._quarantine.items()},
            "failure_counts": {str(mobile): count
                               for mobile, count in self._failures.items()},
        }

    def save_checkpoint(self, path: PathLike, keep: int = 1,
                        extra: Optional[dict] = None) -> None:
        """Durably write a v3 checkpoint to ``path``.

        The payload (with an embedded CRC32 over its canonical JSON)
        lands in a temp file first, is fsync'd, and replaces ``path``
        atomically — a crash at any instant leaves either the old
        checkpoint or the new one, never a torn file.  With
        ``keep > 1``, previous generations rotate logrotate-style to
        ``path.1``, ``path.2``, ... so :func:`load_checkpoint_data`
        can fall back past a checkpoint that was corrupted at rest.

        ``extra`` is caller metadata (JSON-serializable) stored under
        the payload's ``"extra"`` key, covered by the CRC, and ignored
        by :meth:`restore` — the sharded service uses it to bind a
        checkpoint to the exact ingest position it covers, atomically
        with the state itself.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        payload = self.checkpoint()
        if extra is not None:
            payload["extra"] = extra
        payload["crc32"] = checkpoint_crc(payload)
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        # The crash-mid-checkpoint injection site: a fault here proves
        # the previous checkpoint at ``path`` survives intact.
        faults.hook("engine.checkpoint", key=str(path))
        if keep > 1 and path.exists():
            for generation in range(keep - 1, 0, -1):
                older = path.with_name(f"{path.name}.{generation}")
                newer = (path if generation == 1 else
                         path.with_name(f"{path.name}.{generation - 1}"))
                if newer.exists():
                    os.replace(newer, older)
        os.replace(tmp, path)

    @classmethod
    def restore(cls, data: dict, localizer: Localizer,
                sinks: Sequence[EngineSink] = (),
                workers: Optional[int] = None) -> "StreamingEngine":
        """Rebuild an engine from :meth:`checkpoint` output.

        The caller supplies the localizer (algorithm state is not
        serialized); it must be configured identically to the original
        for the resumed run to match an uninterrupted one.  ``workers``
        overrides the checkpointed pool width — safe, because worker
        count never affects results, only throughput.
        """
        version = data.get("engine_checkpoint")
        if version not in (1, 2, CHECKPOINT_VERSION):
            raise CheckpointError(
                f"unsupported engine checkpoint version {version!r}")
        stored_crc = data.get("crc32")
        if stored_crc is not None:
            computed = checkpoint_crc(data)
            if int(stored_crc) != computed:
                raise CheckpointError(
                    f"checkpoint CRC mismatch: stored {stored_crc}, "
                    f"computed {computed} — file is corrupt")
        config = data["config"]
        if workers is None:
            workers = int(config.get("workers", 1))
        timeout_s = config.get("worker_timeout_s")
        engine = cls(localizer,
                     window_s=float(config["window_s"]),
                     batch_size=int(config["batch_size"]),
                     cache_size=int(config["cache_size"]),
                     sinks=sinks,
                     workers=workers,
                     refit_every=int(config.get("refit_every", 0)),
                     quarantine_after=int(config.get("quarantine_after", 3)),
                     worker_timeout_s=(float(timeout_s)
                                       if timeout_s is not None else None))
        engine.gamma_state = GammaState.from_dict(data["gamma"])
        engine.scheduler.restore(data.get("dirty", []))
        engine._last_located = {
            MacAddress.parse(mobile): frozenset(
                MacAddress.parse(ap) for ap in gamma)
            for mobile, gamma in data.get("last_located", {}).items()
        }
        engine._seen = {MacAddress.parse(m) for m in data.get("seen", [])}
        for mobile_text, points in data.get("tracks", {}).items():
            mobile = MacAddress.parse(mobile_text)
            for point in points:
                engine.tracker.record(mobile, float(point["ts"]),
                                      LocalizationEstimate(
                                          position=Point(float(point["x"]),
                                                         float(point["y"])),
                                          algorithm=point["algorithm"],
                                          used_ap_count=int(point["k"])))
        metrics = data.get("metrics")
        if metrics is not None:
            # v2: the registry snapshot is the cumulative record —
            # merging it makes resumed totals (counters, histograms,
            # buckets) exactly those of an uninterrupted run.
            engine.registry.merge(metrics)
        else:
            # v1: reconstruct the core counter series from the legacy
            # int block and seed each stage histogram with one
            # observation carrying the accumulated wall time.
            counters = data.get("counters", {})
            for field, metric in _COUNTER_METRICS:
                value = int(counters.get(field, 0))
                if value:
                    engine.registry.counter(metric).inc(value)
            engine._g_fit_iterations.set(
                int(counters.get("last_fit_iterations", 0)))
            for stage, seconds in data.get("stage_seconds", {}).items():
                engine.registry.timer(
                    "repro.engine.stage.duration",
                    stage=stage).observe(float(seconds))
        engine._g_devices.set(len(engine._seen))
        refit = data.get("refit", {})
        engine._events_since_refit = int(
            refit.get("events_since_refit", 0))
        engine._pending_refit = [
            frozenset(MacAddress.parse(ap) for ap in gamma)
            for gamma in refit.get("pending", [])
        ]
        engine._quarantine = {
            MacAddress.parse(mobile): str(reason)
            for mobile, reason in data.get("quarantine", {}).items()
        }
        engine._failures = {
            MacAddress.parse(mobile): int(count)
            for mobile, count in data.get("failure_counts", {}).items()
        }
        return engine

    @classmethod
    def load_checkpoint(cls, path: PathLike, localizer: Localizer,
                        sinks: Sequence[EngineSink] = (),
                        workers: Optional[int] = None,
                        fallback: bool = True) -> "StreamingEngine":
        """Restore from ``path``, falling back through rotations.

        With ``fallback`` (the default), a corrupt or unreadable
        ``path`` does not end the campaign: :func:`load_checkpoint_data`
        walks ``path.1``, ``path.2``, ... and restores the newest
        generation that validates.
        """
        data = load_checkpoint_data(path, fallback=fallback)
        return cls.restore(data, localizer, sinks=sinks, workers=workers)


def checkpoint_crc(payload: dict) -> int:
    """CRC32 over the canonical JSON of everything but ``"crc32"``."""
    canonical = json.dumps(
        {key: value for key, value in payload.items() if key != "crc32"},
        sort_keys=True)
    return zlib.crc32(canonical.encode("utf-8"))


def _validate_checkpoint(path: Path) -> dict:
    """Parse + integrity-check one checkpoint file, raising on any flaw."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"unreadable checkpoint {path}: {error}") from error
    if not isinstance(data, dict):
        raise CheckpointError(
            f"checkpoint {path} is not a JSON object")
    version = data.get("engine_checkpoint")
    if version not in (1, 2, CHECKPOINT_VERSION):
        raise CheckpointError(
            f"unsupported engine checkpoint version {version!r} in {path}")
    stored_crc = data.get("crc32")
    if stored_crc is not None and int(stored_crc) != checkpoint_crc(data):
        raise CheckpointError(
            f"checkpoint CRC mismatch in {path} — file is corrupt")
    return data


def load_checkpoint_data(path: PathLike, fallback: bool = True) -> dict:
    """Read the newest valid checkpoint generation at ``path``.

    Tries ``path`` itself, then — when ``fallback`` is set — each
    rotated generation ``path.1``, ``path.2``, ... in age order,
    returning the first payload that parses and passes its CRC.  When
    every candidate fails, raises :class:`~repro.faults.CheckpointError`
    naming each file tried, so the operator sees the whole story.
    """
    path = Path(path)
    candidates = [path]
    if fallback:
        generation = 1
        while path.with_name(f"{path.name}.{generation}").exists():
            candidates.append(path.with_name(f"{path.name}.{generation}"))
            generation += 1
    problems: List[str] = []
    for candidate in candidates:
        if not candidate.exists():
            problems.append(f"{candidate}: not found")
            continue
        try:
            data = _validate_checkpoint(candidate)
        except CheckpointError as error:
            problems.append(str(error))
            continue
        if candidate is not path:
            obs.current_registry().counter(
                "repro.engine.checkpoint.fallback").inc()
        return data
    raise CheckpointError(
        "no valid checkpoint found; tried: " + "; ".join(problems))
