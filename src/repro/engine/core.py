"""The streaming localization engine.

Wires the pipeline stages together::

    frames ──> ingest (GammaState, PseudonymLinker)
                 │  Γ changed?
                 v
               dirty-set scheduler ──> micro-batch flush
                                          │  Γ-set memo cache
                                          v
                                       localizer.locate(Γ)
                                          │
                                          v
                                       sinks (tracker, display, ...)

Design points (see DESIGN.md "Streaming engine"):

* **Incremental Γ** — one bounded update per frame; no replaying of
  history.
* **Dirty-set scheduling** — a device is re-localized only when its
  streaming Γ differs from the Γ it was last localized with; estimates
  for an unchanged neighborhood would be identical anyway.
* **Γ-set memoization** — localization is a pure function of
  (localizer identity, Γ); devices sharing an AP neighborhood share one
  disc intersection.  Mutating the AP knowledge base invalidates the
  cache (call :meth:`StreamingEngine.invalidate_cache`, or use a
  localizer whose ``cache_key()`` changes, as AP-Rad's does on re-fit).
* **Micro-batching** — dirty devices drain in configurable batches, so
  ingest latency and localization cost can be traded off explicitly.
* **Checkpoint/restore** — Γ sets, the dirty set, and all tracks
  serialize to JSON; an interrupted run restored from a checkpoint
  finishes with exactly the tracks of an uninterrupted one.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Union

from repro import obs
from repro.engine.cache import GammaCache
from repro.engine.ingest import GammaState, extract_evidence
from repro.engine.scheduler import MicroBatchScheduler
from repro.engine.sinks import EngineSink
from repro.engine.stats import EngineStats
from repro.geometry.point import Point
from repro.localization.base import LocalizationEstimate, Localizer
from repro.net80211.frames import FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.sniffer.tracker import DeviceTracker, PseudonymLinker

PathLike = Union[str, Path]

#: v2 added the ``"metrics"`` registry snapshot; v1 checkpoints (ints
#: only) are still restorable.
CHECKPOINT_VERSION = 2

#: Counter names mirrored into the legacy ``"counters"`` checkpoint
#: block, in its historical key order.
_COUNTER_METRICS = (
    ("frames_ingested", "repro.engine.frames"),
    ("evidence_events", "repro.engine.evidence"),
    ("probe_requests", "repro.engine.probe_requests"),
    ("batches_flushed", "repro.engine.batches"),
    ("estimates_emitted", "repro.engine.estimates"),
    ("unlocatable", "repro.engine.unlocatable"),
    ("refits", "repro.engine.refits"),
)


class StreamingEngine:
    """Event-driven localization over a stream of captured frames.

    Parameters
    ----------
    localizer:
        Any :class:`Localizer`.  It must be ready to ``locate`` before
        the first flush (AP-Rad must be fitted up front).
    window_s:
        Sliding co-observation window for the streaming Γ.
    batch_size:
        Dirty devices per micro-batch; a full batch flushes during
        ingest, stragglers flush on :meth:`flush` / :meth:`run` end.
    cache_size:
        Capacity of the Γ-set memoization cache; ``0`` disables it.
    sinks:
        Extra :class:`EngineSink` consumers beside the built-in tracker.
    workers:
        Process-pool width for batch localization.  ``1`` (default)
        keeps everything in-process; ``N > 1`` fans each micro-batch's
        uncached Γ sets across a lazily created
        ``ProcessPoolExecutor``.  Results are merged in submission
        order either way, so tracks — and checkpoint/resume
        equivalence — are independent of the worker count.
    refit_every:
        Re-fit the localizer's model every N evidence events (``0``
        disables).  Each Γ change is accumulated as a pending
        observation; on schedule the batch is handed to the
        localizer's ``partial_fit`` (AP-Rad's incremental radius LP
        warm-starts from its previous basis), every device is marked
        dirty (new radii can move every estimate), and the fit wall
        time lands in the ``fit`` stage of :class:`EngineStats`.
        Localizers that do not declare ``supports_partial_fit`` ignore
        the schedule.  Until the first re-fit completes, an unfitted
        localizer (``is_fitted`` false) yields no estimates — devices
        flushed early are re-localized after the fit.
    registry:
        The :class:`~repro.obs.MetricsRegistry` this engine reports
        into.  Defaults to a fresh private registry, so concurrent
        engines never share counters; pass
        :func:`repro.obs.default_registry` to publish process-wide.
        While the engine works — ingest, flush, re-fit — its registry
        is routed as :func:`repro.obs.current_registry`, so metrics
        emitted deep in the LP solvers, the spatial grid, and batch
        localization all land here too.
    """

    def __init__(self, localizer: Localizer, window_s: float = 30.0,
                 batch_size: int = 32, cache_size: int = 4096,
                 sinks: Sequence[EngineSink] = (), workers: int = 1,
                 refit_every: int = 0,
                 registry: Optional[obs.MetricsRegistry] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if refit_every < 0:
            raise ValueError(
                f"refit_every must be >= 0, got {refit_every}")
        self.localizer = localizer
        self.workers = workers
        self.refit_every = refit_every
        self._executor: Optional[ProcessPoolExecutor] = None
        self.gamma_state = GammaState(window_s=window_s)
        self.scheduler = MicroBatchScheduler(batch_size=batch_size)
        self.cache: Optional[GammaCache] = (
            GammaCache(cache_size) if cache_size > 0 else None)
        self.tracker = DeviceTracker()
        self.linker = PseudonymLinker()
        self.sinks: List[EngineSink] = list(sinks)
        self.registry = (registry if registry is not None
                         else obs.MetricsRegistry())
        # Bound instrument handles (hot path: attribute access, no
        # registry lookup).  Binding at init also guarantees the core
        # series appear in every snapshot, even at zero.
        self._c_frames = self.registry.counter("repro.engine.frames")
        self._c_evidence = self.registry.counter("repro.engine.evidence")
        self._c_probes = self.registry.counter(
            "repro.engine.probe_requests")
        self._c_batches = self.registry.counter("repro.engine.batches")
        self._c_estimates = self.registry.counter("repro.engine.estimates")
        self._c_unlocatable = self.registry.counter(
            "repro.engine.unlocatable")
        self._c_refits = self.registry.counter("repro.engine.refits")
        self._g_fit_iterations = self.registry.gauge(
            "repro.engine.fit.iterations")
        self._g_devices = self.registry.gauge("repro.engine.devices.seen")
        self._t_flush = self.registry.timer("repro.engine.flush.duration")
        if self.cache is not None:
            for event in ("hit", "miss", "eviction", "invalidation"):
                self.registry.counter(f"repro.engine.cache.{event}")
            self.registry.gauge("repro.engine.cache.entries")
        # Γ each device was last localized with (dirty = differs now).
        self._last_located: Dict[MacAddress, FrozenSet[MacAddress]] = {}
        self._seen: Set[MacAddress] = set()
        # Re-fit scheduling: Γ snapshots accumulated since the last
        # model fit, handed to localizer.partial_fit on schedule.
        self._pending_refit: List[FrozenSet[MacAddress]] = []
        self._events_since_refit = 0

    # ------------------------------------------------------------------
    # Ingest stage
    # ------------------------------------------------------------------

    def ingest(self, received: ReceivedFrame) -> None:
        """Consume one captured frame; flush if a micro-batch is due."""
        with self._stage("ingest"):
            self._c_frames.inc()
            frame = received.frame
            if frame.frame_type is FrameType.PROBE_REQUEST:
                self._c_probes.inc()
                self._seen.add(frame.source)
                self.linker.ingest(frame)
            else:
                evidence = extract_evidence(received)
                if evidence is not None:
                    self._c_evidence.inc()
                    self._seen.add(evidence.mobile)
                    gamma = self.gamma_state.observe(evidence)
                    if gamma != self._last_located.get(evidence.mobile):
                        self.scheduler.mark_dirty(evidence.mobile)
                    if self.refit_every > 0:
                        if gamma:
                            self._pending_refit.append(gamma)
                        self._events_since_refit += 1
            self._g_devices.set(len(self._seen))
        if (self.refit_every > 0
                and self._events_since_refit >= self.refit_every):
            self._refit()
        while self.scheduler.ready:
            self._flush_batch()

    def ingest_stream(self, stream: Iterable[ReceivedFrame]) -> None:
        """Consume frames without the end-of-stream flush (resumable)."""
        for received in stream:
            self.ingest(received)

    def run(self, stream: Iterable[ReceivedFrame]) -> EngineStats:
        """Consume a whole stream, drain every device, close sinks.

        The whole run executes with the engine's registry routed as
        :func:`repro.obs.current_registry`, so instrumentation anywhere
        below — the capture reader, the LP solver inside a re-fit, the
        spatial grid — reports into this engine.
        """
        with obs.use_registry(self.registry), obs.trace("engine.run"):
            self.ingest_stream(stream)
            if self.refit_every > 0 and self._pending_refit:
                # Catch-up fit so end-of-stream evidence (and any
                # devices skipped while the model was unfitted) is not
                # lost.
                self._refit()
            self.flush()
            for sink in self.sinks:
                sink.close()
            self.close()
        return self.stats()

    def close(self) -> None:
        """Release the worker pool (recreated lazily if flushed again)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    # ------------------------------------------------------------------
    # Localize + sink stages
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Drain the entire dirty set; returns estimates emitted."""
        emitted = 0
        while self.scheduler.pending():
            emitted += self._flush_batch()
        return emitted

    def _refit(self) -> None:
        """Hand the pending Γ snapshots to the localizer's partial_fit."""
        pending = self._pending_refit
        self._pending_refit = []
        self._events_since_refit = 0
        if not self.localizer.supports_partial_fit or not pending:
            return
        with obs.use_registry(self.registry), \
                obs.trace("engine.refit", observations=len(pending)), \
                self._stage("fit"):
            estimate = self.localizer.partial_fit(pending)
        self._c_refits.inc()
        self._g_fit_iterations.set(int(
            getattr(estimate, "solver_iterations", 0)))
        # New radii can move every estimate: every device with a live Γ
        # goes back through localization.  The memo cache keys on
        # localizer.cache_key(), which the re-fit bumped.
        for mobile in self.gamma_state.devices():
            if self.gamma_state.gamma(mobile):
                self.scheduler.mark_dirty(mobile)

    def _localizer_ready(self) -> bool:
        return bool(getattr(self.localizer, "is_fitted", True))

    def _flush_batch(self) -> int:
        batch = self.scheduler.next_batch()
        if not batch:
            return 0
        self._c_batches.inc()
        gammas = [self.gamma_state.gamma(mobile) for mobile in batch]
        if not self._localizer_ready():
            # Model not fitted yet (refit_every engines start cold):
            # nothing can be located.  The batch still clears — the
            # first fit marks every Γ-holding device dirty again.
            for mobile, gamma in zip(batch, gammas):
                self._last_located[mobile] = gamma
            return 0
        with obs.use_registry(self.registry), \
                obs.trace("engine.flush", batch=len(batch)), \
                self._t_flush.time():
            with self._stage("localize"):
                estimates = self._locate_batch_memoized(gammas)
            emitted = 0
            for mobile, gamma, estimate in zip(batch, gammas, estimates):
                self._last_located[mobile] = gamma
                if estimate is None:
                    self._c_unlocatable.inc()
                    continue
                timestamp = self.gamma_state.last_seen(mobile)
                with self._stage("sink"):
                    self._emit(mobile, timestamp, estimate)
                emitted += 1
        return emitted

    def _locate_batch_memoized(
        self, gammas: Sequence[FrozenSet[MacAddress]]
    ) -> List[Optional[LocalizationEstimate]]:
        """One ``locate_batch`` call for a micro-batch's worth of Γ sets.

        Cache hits are resolved up front; the remaining *distinct* Γ
        sets (duplicates within a batch collapse to one computation)
        go through :meth:`Localizer.locate_batch` in one shot —
        vectorized in-process, or fanned across the worker pool when
        ``workers > 1``.  Merge order is the batch's submission order,
        keeping runs reproducible whatever the worker count.
        """
        results: List[Optional[LocalizationEstimate]] = [None] * len(gammas)
        key = (self.localizer.cache_key() if self.cache is not None
               else None)
        # Insertion-ordered, so the pending list is deterministic.
        pending: Dict[FrozenSet[MacAddress], List[int]] = {}
        for index, gamma in enumerate(gammas):
            if not gamma:
                continue
            if gamma in pending:
                # Intra-batch duplicate: one computation will serve it.
                pending[gamma].append(index)
                if self.cache is not None:
                    self.cache.count_pending_hit()
                continue
            if self.cache is not None:
                cached = self.cache.get(key, gamma)
                if cached is not GammaCache.ABSENT:
                    results[index] = cached
                    continue
            pending[gamma] = [index]
        if not pending:
            return results
        order = list(pending.keys())
        estimates = self.localizer.locate_batch(
            order, executor=self._batch_executor(len(order)))
        for gamma, estimate in zip(order, estimates):
            if self.cache is not None:
                self.cache.put(key, gamma, estimate)
            for index in pending[gamma]:
                results[index] = estimate
        return results

    def _batch_executor(self, pending_count: int
                        ) -> Optional[ProcessPoolExecutor]:
        if self.workers <= 1 or pending_count < 2:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def _emit(self, mobile: MacAddress, timestamp: float,
              estimate: LocalizationEstimate) -> None:
        self._c_estimates.inc()
        latest = self.tracker.latest(mobile)
        if latest is not None and timestamp < latest.timestamp:
            # A late, out-of-order burst for an already-tracked device:
            # keep the track monotonic rather than raising mid-stream.
            timestamp = latest.timestamp
        self.tracker.record(mobile, timestamp, estimate)
        for sink in self.sinks:
            sink.emit(mobile, timestamp, estimate)

    def invalidate_cache(self) -> None:
        """Flush the Γ memoization after an AP knowledge-base mutation."""
        if self.cache is not None:
            self.cache.invalidate()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _stage(self, name: str):
        """Timing context for one pipeline stage (lazy per-stage series)."""
        return self.registry.timer("repro.engine.stage.duration",
                                   stage=name).time()

    def _stage_seconds(self) -> Dict[str, float]:
        """Accumulated seconds per stage, from the registry series."""
        return {
            dict(inst.labels).get("stage", ""): inst.sum
            for inst in self.registry.find("repro.engine.stage.duration")
        }

    def metrics_snapshot(self) -> dict:
        """The engine registry's JSON-compatible snapshot."""
        return self.registry.snapshot()

    def stats(self) -> EngineStats:
        """A consistent snapshot of every pipeline counter.

        A *view* over :attr:`registry` — the registry is the source of
        truth; this projects the core series into the ergonomic
        dataclass the CLI and benches print.
        """
        cache_counters = (self.cache.counters() if self.cache is not None
                          else {})
        return EngineStats(
            frames_ingested=int(self._c_frames.value),
            evidence_events=int(self._c_evidence.value),
            probe_requests=int(self._c_probes.value),
            devices_seen=len(self._seen),
            batches_flushed=int(self._c_batches.value),
            estimates_emitted=int(self._c_estimates.value),
            unlocatable=int(self._c_unlocatable.value),
            cache_enabled=self.cache is not None,
            cache_hits=cache_counters.get("hits", 0),
            cache_misses=cache_counters.get("misses", 0),
            cache_entries=cache_counters.get("entries", 0),
            refits=int(self._c_refits.value),
            last_fit_iterations=int(self._g_fit_iterations.value),
            stage_seconds=self._stage_seconds(),
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Serialize resumable state (Γ sets, dirty set, tracks) to
        JSON-compatible types.

        Estimate *regions* are not persisted — a restored track carries
        positional fixes (position, algorithm, k) only.  The pseudonym
        linker is rebuilt from the live stream after restore.
        """
        return {
            "engine_checkpoint": CHECKPOINT_VERSION,
            "config": {
                "window_s": self.gamma_state.window_s,
                "batch_size": self.scheduler.batch_size,
                "cache_size": (self.cache.max_entries
                               if self.cache is not None else 0),
                "workers": self.workers,
                "refit_every": self.refit_every,
            },
            "gamma": self.gamma_state.to_dict(),
            "dirty": self.scheduler.to_list(),
            "last_located": {
                str(mobile): sorted(str(ap) for ap in gamma)
                for mobile, gamma in self._last_located.items()
            },
            "seen": sorted(str(mobile) for mobile in self._seen),
            "tracks": {
                str(mobile): [
                    {
                        "ts": point.timestamp,
                        "x": point.estimate.position.x,
                        "y": point.estimate.position.y,
                        "algorithm": point.estimate.algorithm,
                        "k": point.estimate.used_ap_count,
                    }
                    for point in self.tracker.track_of(mobile)
                ]
                for mobile in self.tracker.devices()
            },
            # Legacy (v1) counter block, kept so external consumers of
            # checkpoint JSON keep working; the registry snapshot below
            # is the authoritative cumulative record.
            "counters": dict(
                [(field, int(self.registry.counter(metric).value))
                 for field, metric in _COUNTER_METRICS]
                + [("last_fit_iterations",
                    int(self._g_fit_iterations.value))]
            ),
            "metrics": self.registry.snapshot(),
            # Pending re-fit evidence: the localizer's own model (LP
            # basis, radii) is NOT serialized, so a restored engine
            # must be given a localizer refitted from the same corpus
            # — or simply re-accumulates and refits on schedule.
            "refit": {
                "events_since_refit": self._events_since_refit,
                "pending": [sorted(str(ap) for ap in gamma)
                            for gamma in self._pending_refit],
            },
            "stage_seconds": self._stage_seconds(),
        }

    def save_checkpoint(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.checkpoint()),
                              encoding="utf-8")

    @classmethod
    def restore(cls, data: dict, localizer: Localizer,
                sinks: Sequence[EngineSink] = (),
                workers: Optional[int] = None) -> "StreamingEngine":
        """Rebuild an engine from :meth:`checkpoint` output.

        The caller supplies the localizer (algorithm state is not
        serialized); it must be configured identically to the original
        for the resumed run to match an uninterrupted one.  ``workers``
        overrides the checkpointed pool width — safe, because worker
        count never affects results, only throughput.
        """
        version = data.get("engine_checkpoint")
        if version not in (1, CHECKPOINT_VERSION):
            raise ValueError(
                f"unsupported engine checkpoint version {version!r}")
        config = data["config"]
        if workers is None:
            workers = int(config.get("workers", 1))
        engine = cls(localizer,
                     window_s=float(config["window_s"]),
                     batch_size=int(config["batch_size"]),
                     cache_size=int(config["cache_size"]),
                     sinks=sinks,
                     workers=workers,
                     refit_every=int(config.get("refit_every", 0)))
        engine.gamma_state = GammaState.from_dict(data["gamma"])
        engine.scheduler.restore(data.get("dirty", []))
        engine._last_located = {
            MacAddress.parse(mobile): frozenset(
                MacAddress.parse(ap) for ap in gamma)
            for mobile, gamma in data.get("last_located", {}).items()
        }
        engine._seen = {MacAddress.parse(m) for m in data.get("seen", [])}
        for mobile_text, points in data.get("tracks", {}).items():
            mobile = MacAddress.parse(mobile_text)
            for point in points:
                engine.tracker.record(mobile, float(point["ts"]),
                                      LocalizationEstimate(
                                          position=Point(float(point["x"]),
                                                         float(point["y"])),
                                          algorithm=point["algorithm"],
                                          used_ap_count=int(point["k"])))
        metrics = data.get("metrics")
        if metrics is not None:
            # v2: the registry snapshot is the cumulative record —
            # merging it makes resumed totals (counters, histograms,
            # buckets) exactly those of an uninterrupted run.
            engine.registry.merge(metrics)
        else:
            # v1: reconstruct the core counter series from the legacy
            # int block and seed each stage histogram with one
            # observation carrying the accumulated wall time.
            counters = data.get("counters", {})
            for field, metric in _COUNTER_METRICS:
                value = int(counters.get(field, 0))
                if value:
                    engine.registry.counter(metric).inc(value)
            engine._g_fit_iterations.set(
                int(counters.get("last_fit_iterations", 0)))
            for stage, seconds in data.get("stage_seconds", {}).items():
                engine.registry.timer(
                    "repro.engine.stage.duration",
                    stage=stage).observe(float(seconds))
        engine._g_devices.set(len(engine._seen))
        refit = data.get("refit", {})
        engine._events_since_refit = int(
            refit.get("events_since_refit", 0))
        engine._pending_refit = [
            frozenset(MacAddress.parse(ap) for ap in gamma)
            for gamma in refit.get("pending", [])
        ]
        return engine

    @classmethod
    def load_checkpoint(cls, path: PathLike, localizer: Localizer,
                        sinks: Sequence[EngineSink] = (),
                        workers: Optional[int] = None
                        ) -> "StreamingEngine":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.restore(data, localizer, sinks=sinks, workers=workers)
