"""The streaming localization engine (``repro.engine``).

Turns the batch pieces — capture replay, localizers, tracker, display —
into a live pipeline: frames stream in, per-device Γ sets update
incrementally, a dirty-set scheduler re-localizes only devices whose
neighborhood changed (in micro-batches, through a Γ-set memoization
cache), and estimates fan out to pluggable sinks.  See
:mod:`repro.engine.core` for the stage diagram and DESIGN.md for the
memoization invariant.
"""

from repro.engine.cache import GammaCache
from repro.engine.core import (
    StreamingEngine,
    checkpoint_crc,
    load_checkpoint_data,
)
from repro.engine.ingest import Evidence, GammaState, extract_evidence
from repro.engine.reorder import ReorderBuffer
from repro.engine.scheduler import MicroBatchScheduler
from repro.engine.sinks import (
    CallbackSink,
    EngineSink,
    FanoutSink,
    LatestFixSink,
    NullSink,
    RendererSink,
    TrackerSink,
    make_sink,
    sink_names,
)
from repro.engine.stats import EngineStats, PipelineStats, StageTimer

__all__ = [
    "StreamingEngine",
    "checkpoint_crc",
    "load_checkpoint_data",
    "GammaCache",
    "GammaState",
    "Evidence",
    "extract_evidence",
    "MicroBatchScheduler",
    "ReorderBuffer",
    "EngineStats",
    "PipelineStats",
    "StageTimer",
    "EngineSink",
    "TrackerSink",
    "CallbackSink",
    "LatestFixSink",
    "NullSink",
    "RendererSink",
    "FanoutSink",
    "make_sink",
    "sink_names",
]
