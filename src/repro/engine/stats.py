"""Pipeline observability: stage timers and the stats snapshot.

A production engine is judged by its counters — estimates per second,
cache hit rate, where the wall time goes.  :class:`StageTimer`
accumulates per-stage wall time with negligible overhead;
:class:`EngineStats` is the immutable snapshot the engine hands out
(and the CLI / throughput bench print).  Since the ``repro.obs``
subsystem landed, the snapshot is a *view* computed from the engine's
:class:`~repro.obs.MetricsRegistry`; :class:`PipelineStats` remains as
a deprecated alias for one release.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable


class StageTimer:
    """Accumulates wall-clock seconds per named pipeline stage."""

    def __init__(self):
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def seconds(self) -> Dict[str, float]:
        return dict(self._seconds)

    def total(self) -> float:
        return sum(self._seconds.values())

    def restore(self, seconds: Dict[str, float]) -> None:
        self._seconds = {name: float(value)
                         for name, value in seconds.items()}


@dataclass(frozen=True)
class EngineStats:
    """One consistent snapshot of the engine's counters.

    Built by :meth:`StreamingEngine.stats` as a view over the engine's
    metrics registry — the registry is the source of truth, this is the
    ergonomic read side.
    """

    frames_ingested: int = 0
    evidence_events: int = 0
    probe_requests: int = 0
    devices_seen: int = 0
    batches_flushed: int = 0
    estimates_emitted: int = 0
    unlocatable: int = 0
    cache_enabled: bool = True
    cache_hits: int = 0
    cache_misses: int = 0
    cache_entries: int = 0
    refits: int = 0
    last_fit_iterations: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    retries: int = 0
    sink_failures: int = 0
    quarantined: int = 0
    degraded: int = 0

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Combine two disjoint snapshots (e.g. two shards') into one.

        The merge is associative and commutative — counters sum,
        per-stage seconds sum key-wise, ``cache_enabled`` ORs, and
        ``last_fit_iterations`` takes the max — so folding any number
        of shard snapshots together yields the same totals whatever
        the fold order.  ``EngineStats(cache_enabled=False)`` is the
        identity element.
        Derived properties (hit rate, throughput) are recomputed from
        the merged counters, never averaged.
        """
        stage_seconds = dict(self.stage_seconds)
        for name, seconds in other.stage_seconds.items():
            stage_seconds[name] = stage_seconds.get(name, 0.0) + seconds
        return EngineStats(
            frames_ingested=self.frames_ingested + other.frames_ingested,
            evidence_events=self.evidence_events + other.evidence_events,
            probe_requests=self.probe_requests + other.probe_requests,
            devices_seen=self.devices_seen + other.devices_seen,
            batches_flushed=self.batches_flushed + other.batches_flushed,
            estimates_emitted=(self.estimates_emitted
                               + other.estimates_emitted),
            unlocatable=self.unlocatable + other.unlocatable,
            cache_enabled=self.cache_enabled or other.cache_enabled,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            cache_entries=self.cache_entries + other.cache_entries,
            refits=self.refits + other.refits,
            last_fit_iterations=max(self.last_fit_iterations,
                                    other.last_fit_iterations),
            stage_seconds=stage_seconds,
            retries=self.retries + other.retries,
            sink_failures=self.sink_failures + other.sink_failures,
            quarantined=self.quarantined + other.quarantined,
            degraded=self.degraded + other.degraded,
        )

    @classmethod
    def merge_all(cls, snapshots: "Iterable[EngineStats]") -> "EngineStats":
        """Fold any number of snapshots into one (order-independent)."""
        merged = cls(cache_enabled=False)
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def elapsed_s(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def estimates_per_sec(self) -> float:
        elapsed = self.elapsed_s
        return self.estimates_emitted / elapsed if elapsed > 0.0 else 0.0

    def to_dict(self) -> dict:
        """JSON-compatible form (what the throughput bench emits)."""
        return {
            "frames_ingested": self.frames_ingested,
            "evidence_events": self.evidence_events,
            "probe_requests": self.probe_requests,
            "devices_seen": self.devices_seen,
            "batches_flushed": self.batches_flushed,
            "estimates_emitted": self.estimates_emitted,
            "unlocatable": self.unlocatable,
            "cache_enabled": self.cache_enabled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_entries": self.cache_entries,
            "refits": self.refits,
            "last_fit_iterations": self.last_fit_iterations,
            "retries": self.retries,
            "sink_failures": self.sink_failures,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
            "fit_seconds": self.stage_seconds.get("fit", 0.0),
            "stage_seconds": dict(self.stage_seconds),
            "elapsed_s": self.elapsed_s,
            "estimates_per_sec": self.estimates_per_sec,
        }

    def format(self) -> str:
        """The human-readable block ``marauder engine`` prints."""
        lines = [
            "PipelineStats:",
            f"  frames ingested   : {self.frames_ingested}",
            f"  evidence events   : {self.evidence_events}",
            f"  probe requests    : {self.probe_requests}",
            f"  devices seen      : {self.devices_seen}",
            f"  batches flushed   : {self.batches_flushed}",
            f"  estimates emitted : {self.estimates_emitted}",
            f"  unlocatable       : {self.unlocatable}",
        ]
        if self.cache_enabled:
            lines.append(
                f"  cache             : {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"(hit rate {self.cache_hit_rate:.1%}, "
                f"{self.cache_entries} entries)")
        else:
            lines.append("  cache             : disabled")
        if self.refits:
            lines.append(
                f"  re-fits           : {self.refits} "
                f"(last solve {self.last_fit_iterations} iterations)")
        if self.retries:
            lines.append(f"  retries           : {self.retries}")
        if self.sink_failures:
            lines.append(f"  sink failures     : {self.sink_failures}")
        if self.quarantined:
            lines.append(f"  quarantined       : {self.quarantined}")
        if self.degraded:
            lines.append(f"  degraded          : {self.degraded}")
        for name in sorted(self.stage_seconds):
            lines.append(f"  {name + ' time':18s}: "
                         f"{self.stage_seconds[name] * 1e3:.2f} ms")
        lines.append(f"  throughput        : "
                     f"{self.estimates_per_sec:.0f} estimates/s")
        return "\n".join(lines)


class PipelineStats(EngineStats):
    """Deprecated alias of :class:`EngineStats` (one-release shim).

    Instantiating it warns; everything else — fields, properties,
    ``to_dict`` / ``format`` — is inherited unchanged, so existing
    callers keep working while they migrate.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "PipelineStats is deprecated; use EngineStats "
            "(repro.engine.EngineStats) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)
