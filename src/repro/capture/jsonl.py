"""The JSONL capture codec: the original line-per-record format.

This is the tcpdump stand-in the repo has carried since the seed — one
JSON object per line, append-friendly, greppable — now living behind
the :mod:`repro.capture` codec registry as the compatibility format.
The columnar codec (:mod:`repro.capture.columnar`) is the ingest hot
path; JSONL stays the durable interchange format and the lenient
parser of week-long field captures.

The old import site, :mod:`repro.net80211.capture_file`, re-exports
deprecated shims over these classes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro import obs
from repro.capture.records import FrameBatch, encode_frames
from repro.faults import CaptureError
from repro.net80211.frames import Dot11Frame, FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

PathLike = Union[str, Path]

FORMAT_VERSION = 1

#: Records per :meth:`JsonlReader.iter_batches` batch when the caller
#: does not say — sized so the encode cost amortizes without holding a
#: large slice of the capture in memory.
DEFAULT_BATCH_RECORDS = 8192


def frame_to_dict(frame: Dot11Frame) -> dict:
    """Serialize a frame to plain JSON-compatible types."""
    return {
        "type": frame.frame_type.value,
        "src": str(frame.source),
        "dst": str(frame.destination),
        "bssid": str(frame.bssid) if frame.bssid is not None else None,
        "ssid": frame.ssid.name,
        "channel": frame.channel,
        "ts": frame.timestamp,
        "seq": frame.sequence,
        "tx_power_dbm": frame.tx_power_dbm,
        "tx_gain_dbi": frame.tx_antenna_gain_dbi,
        "elements": dict(frame.elements),
    }


def frame_from_dict(data: dict) -> Dot11Frame:
    """Deserialize a frame written by :func:`frame_to_dict`."""
    bssid = data.get("bssid")
    return Dot11Frame(
        frame_type=FrameType(data["type"]),
        source=MacAddress.parse(data["src"]),
        destination=MacAddress.parse(data["dst"]),
        channel=int(data["channel"]),
        timestamp=float(data["ts"]),
        ssid=Ssid(data.get("ssid", "")),
        bssid=MacAddress.parse(bssid) if bssid else None,
        sequence=int(data.get("seq", 0)),
        tx_power_dbm=float(data.get("tx_power_dbm", 15.0)),
        tx_antenna_gain_dbi=float(data.get("tx_gain_dbi", 0.0)),
        elements=dict(data.get("elements", {})),
    )


class JsonlWriter:
    """Append :class:`ReceivedFrame` records to a JSONL capture file."""

    format = "jsonl"

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._handle = self.path.open("a", encoding="utf-8")
        if self.path.stat().st_size == 0:
            header = {"capture_format": FORMAT_VERSION}
            self._handle.write(json.dumps(header) + "\n")

    def write(self, received: ReceivedFrame) -> None:
        record = {
            "frame": frame_to_dict(received.frame),
            "rssi_dbm": received.rssi_dbm,
            "snr_db": received.snr_db,
            "rx_channel": received.rx_channel,
            "rx_ts": received.rx_timestamp,
        }
        self._handle.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JsonlReader:
    """Iterate the records of a JSONL capture file.

    ``strict`` (the default) raises a typed
    :class:`~repro.faults.CaptureError` on the first malformed record —
    right for tests and for captures this codebase wrote itself.  With
    ``strict=False`` malformed *records* are skipped and counted
    (:attr:`skipped`, plus an ``on_skip`` callback per skip), the
    seven-day-tcpdump posture where one truncated line must not void a
    week of traffic.  A bad file *header* (unsupported format version)
    always raises: that is the whole capture, not one record.

    ``device`` restricts iteration to records mentioning one MAC (as
    source, destination, or BSSID).  JSONL has no index, so the filter
    still decodes every record — the columnar codec's per-block bloom
    filters are the fix; here the skip counter
    (``repro.capture.blocks_skipped``) simply never moves.
    """

    format = "jsonl"

    def __init__(self, path: PathLike, strict: bool = True,
                 on_skip: Optional[Callable[[int, str], None]] = None,
                 device: Optional[Union[MacAddress, str]] = None):
        self.path = Path(path)
        self.strict = strict
        self.on_skip = on_skip
        self.device = _normalize_device(device)
        #: Malformed records skipped by the most recent iteration.
        self.skipped = 0

    def __iter__(self) -> Iterator[ReceivedFrame]:
        self.skipped = 0
        registry = obs.current_registry()
        # Bound in both codecs so a metrics scrape always shows the
        # series; only the columnar path can actually skip blocks.
        registry.counter("repro.capture.blocks_skipped")
        filtered = registry.counter("repro.capture.records_filtered")
        device = self.device
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if not isinstance(data, dict):
                        raise CaptureError(
                            f"record is not a JSON object: {line[:60]!r}")
                except ValueError as error:
                    self._skip(line_number, str(error))
                    continue
                if "capture_format" in data:
                    version = data["capture_format"]
                    if version != FORMAT_VERSION:
                        raise CaptureError(
                            f"unsupported capture format {version}")
                    continue
                try:
                    received = ReceivedFrame(
                        frame=frame_from_dict(data["frame"]),
                        rssi_dbm=float(data["rssi_dbm"]),
                        snr_db=float(data["snr_db"]),
                        rx_channel=int(data["rx_channel"]),
                        rx_timestamp=float(data["rx_ts"]),
                    )
                except (KeyError, TypeError, ValueError) as error:
                    self._skip(line_number, f"{type(error).__name__}: {error}")
                    continue
                if device is not None and not _mentions_device(received,
                                                               device):
                    filtered.inc()
                    continue
                yield received

    def iter_batches(self, batch_records: Optional[int] = None,
                     device: Optional[Union[MacAddress, str]] = None,
                     start_ts: Optional[float] = None,
                     end_ts: Optional[float] = None
                     ) -> Iterator[FrameBatch]:
        """Decode the capture into :class:`FrameBatch` chunks.

        JSONL is row-at-a-time on disk, so this still pays the
        per-record JSON decode — it exists so every codec presents the
        same batch-replay surface, letting the engine's columnar ingest
        run over either format.
        """
        if batch_records is None:
            batch_records = DEFAULT_BATCH_RECORDS
        if batch_records < 1:
            raise ValueError(
                f"batch_records must be >= 1, got {batch_records}")
        extra = _normalize_device(device)
        pending = []
        for received in self:
            ts = received.rx_timestamp
            if start_ts is not None and ts < start_ts:
                continue
            if end_ts is not None and ts > end_ts:
                continue
            if extra is not None and not _mentions_device(received, extra):
                continue
            pending.append(received)
            if len(pending) >= batch_records:
                yield FrameBatch(*encode_frames(pending))
                pending = []
        if pending:
            yield FrameBatch(*encode_frames(pending))

    def info(self) -> dict:
        """Scan the whole file for summary statistics (O(records))."""
        records = 0
        t_min: Optional[float] = None
        t_max: Optional[float] = None
        devices = set()
        for received in self:
            records += 1
            ts = received.rx_timestamp
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = ts if t_max is None else max(t_max, ts)
            devices.add(received.frame.source.value)
            devices.add(received.frame.destination.value)
            if received.frame.bssid is not None:
                devices.add(received.frame.bssid.value)
        return {
            "format": self.format,
            "path": str(self.path),
            "file_bytes": self.path.stat().st_size,
            "records": records,
            "skipped": self.skipped,
            "devices": len(devices),
            "time": None if t_min is None else [t_min, t_max],
        }

    def _skip(self, line_number: int, reason: str) -> None:
        if self.strict:
            raise CaptureError(
                f"{self.path}:{line_number}: malformed capture record "
                f"({reason})")
        self.skipped += 1
        if self.on_skip is not None:
            self.on_skip(line_number, reason)


def _normalize_device(device) -> Optional[MacAddress]:
    if device is None:
        return None
    if isinstance(device, MacAddress):
        return device
    if isinstance(device, int):
        return MacAddress(device)
    return MacAddress.parse(str(device))


def _mentions_device(received: ReceivedFrame, device: MacAddress) -> bool:
    frame = received.frame
    return (frame.source == device or frame.destination == device
            or frame.bssid == device)


def sniff_jsonl(path: PathLike) -> bool:
    """True when the file plausibly starts with a JSON object line."""
    with open(path, "rb") as handle:
        head = handle.read(64)
    return head.lstrip()[:1] == b"{"
