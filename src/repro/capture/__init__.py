"""Capture I/O: the codec registry and the columnar capture store.

This package is the single public surface for reading and writing
capture files.  The two built-in codecs are ``"jsonl"`` (the legacy
line-per-record format, append-friendly and lenient) and
``"columnar"`` (memory-mapped NumPy blocks with a time index and
per-block device bloom filters — the ingest hot path).

Typical use::

    from repro.capture import open_capture, make_capture_writer

    with make_capture_writer("walk.cap") as writer:   # columnar
        for received in frames:
            writer.write(received)

    reader = open_capture("walk.cap")                  # format sniffed
    for batch in reader.iter_batches(device="aa:bb:cc:dd:ee:ff"):
        ...                                            # bloom-skipped

The old import site :mod:`repro.net80211.capture_file` survives as
deprecated shims over the JSONL codec.
"""

from repro.capture.bloom import BloomFilter
from repro.capture.columnar import (ColumnarReader, ColumnarWriter,
                                    sniff_columnar)
from repro.capture.compact import compact_captures, convert_capture
from repro.capture.jsonl import (FORMAT_VERSION, JsonlReader, JsonlWriter,
                                 frame_from_dict, frame_to_dict, sniff_jsonl)
from repro.capture.records import (CAPTURE_DTYPE, FRAME_TYPES, NO_BSSID,
                                   FrameBatch, decode_row, encode_frames,
                                   mac_from_int)
from repro.capture.registry import (CaptureCodec, capture_info, codec_names,
                                    get_codec, make_capture_writer,
                                    open_capture, register_codec,
                                    sniff_format)

__all__ = [
    "BloomFilter",
    "CAPTURE_DTYPE",
    "CaptureCodec",
    "ColumnarReader",
    "ColumnarWriter",
    "FORMAT_VERSION",
    "FRAME_TYPES",
    "FrameBatch",
    "JsonlReader",
    "JsonlWriter",
    "NO_BSSID",
    "capture_info",
    "codec_names",
    "compact_captures",
    "convert_capture",
    "decode_row",
    "encode_frames",
    "frame_from_dict",
    "frame_to_dict",
    "get_codec",
    "mac_from_int",
    "make_capture_writer",
    "open_capture",
    "register_codec",
    "sniff_columnar",
    "sniff_format",
    "sniff_jsonl",
]
