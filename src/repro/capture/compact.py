"""Convert and merge captures into sorted columnar blocks.

The compactor is how legacy JSONL field captures enter the columnar
world, and how multi-sniffer captures (one file per channel-hopping
card) merge into one globally time-sorted store.  All sources are
decoded batch-wise, concatenated, stable-sorted by ``rx_ts`` — the
stable sort preserves file/argument order for equal timestamps, the
same tie-break replay's ReorderBuffer applies — and re-blocked through
:meth:`~repro.capture.columnar.ColumnarWriter.write_rows`.

The merge sorts in memory: at the 121-byte record a 1M-record compact
holds ~121 MB of rows, fine for the corpus sizes this repo targets.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.capture.records import CAPTURE_DTYPE, FrameBatch
from repro.capture.registry import make_capture_writer, open_capture

PathLike = Union[str, Path]


def compact_captures(sources: Sequence[PathLike], dst: PathLike,
                     format: str = "columnar", strict: bool = False,
                     **writer_options) -> dict:
    """Merge capture files into one sorted capture at ``dst``.

    Sources may mix formats (sniffed per file).  ``strict`` defaults to
    lenient here — compaction is the recovery path for week-long field
    captures, where malformed records are skipped and counted rather
    than voiding the run.  Returns a report dict.
    """
    if not sources:
        raise ValueError("compact_captures needs at least one source")
    arrays: List[np.ndarray] = []
    aux_parts: List[bytes] = []
    aux_size = 0
    skipped = 0
    for source in sources:
        reader = open_capture(source, strict=strict)
        try:
            for batch in reader.iter_batches():
                rows = np.array(batch.records, dtype=CAPTURE_DTYPE)
                aux = bytes(batch.aux)
                if len(aux):
                    rows["aux_off"][rows["aux_len"] > 0] += aux_size
                    aux_parts.append(aux)
                    aux_size += len(aux)
                arrays.append(rows)
            skipped += getattr(reader, "skipped", 0)
        finally:
            close = getattr(reader, "close", None)
            if close is not None:
                close()
    if arrays:
        merged = np.concatenate(arrays)
    else:
        merged = np.zeros(0, dtype=CAPTURE_DTYPE)
    aux_blob = b"".join(aux_parts)
    order = np.argsort(merged["rx_ts"], kind="stable")
    merged = merged[order]
    report = {
        "sources": [str(Path(s)) for s in sources],
        "records": int(len(merged)),
        "skipped": int(skipped),
        "output": str(Path(dst)),
        "format": format,
    }
    if format == "columnar":
        with make_capture_writer(dst, format="columnar",
                                 **writer_options) as writer:
            writer.write_rows(merged, aux_blob)
        report["blocks"] = len(writer._blocks)
    else:
        batch = FrameBatch(merged, aux_blob)
        with make_capture_writer(dst, format=format,
                                 **writer_options) as writer:
            for received in batch.iter_frames():
                writer.write(received)
    return report


def convert_capture(src: PathLike, dst: PathLike,
                    format: str = "columnar", strict: bool = True,
                    **writer_options) -> dict:
    """Convert one capture file to another format (or re-block it)."""
    return compact_captures([src], dst, format=format, strict=strict,
                            **writer_options)
