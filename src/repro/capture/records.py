"""The columnar record schema: one capture record as a structured row.

The whole columnar store rests on a fixed NumPy structured dtype —
:data:`CAPTURE_DTYPE` — that holds everything a
:class:`~repro.net80211.medium.ReceivedFrame` carries, losslessly:

* MAC addresses are 48-bit integers in ``u8`` columns (``bssid`` uses
  the :data:`NO_BSSID` sentinel, unreachable by any valid address, for
  frames not bound to a BSS);
* every float field is ``f8`` so a JSONL → columnar → JSONL round trip
  reproduces the exact values;
* the SSID lives inline as 32 raw UTF-8 bytes (the 802.11 maximum);
* rare variable-length payload — a non-empty ``elements`` dict, or the
  pathological SSID whose encoding ends in a NUL byte (which fixed
  ``S32`` storage would truncate) — overflows into a per-block *aux*
  blob of JSON, addressed by ``aux_off``/``aux_len``.

:class:`FrameBatch` is the unit of batch replay: a (possibly
memory-mapped, zero-copy) slice of rows plus its aux blob, decodable
per record on demand — the engine's vectorized ingest reads the columns
directly and only materializes :class:`Dot11Frame` objects for the few
records (probe requests) that need one.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults import CaptureError
from repro.net80211.frames import Dot11Frame, FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

#: ``bssid`` column value for frames with no BSS binding.  Any valid
#: MAC is < 2**48, so the all-ones u64 can never collide.
NO_BSSID = (1 << 64) - 1

#: Stable wire order of frame-type codes.  Append-only: the footer of
#: every columnar file records this list by enum value, so old files
#: stay decodable even if the in-memory order ever changes.
FRAME_TYPES: Tuple[FrameType, ...] = (
    FrameType.BEACON,
    FrameType.PROBE_REQUEST,
    FrameType.PROBE_RESPONSE,
    FrameType.DEAUTHENTICATION,
    FrameType.AUTHENTICATION,
    FrameType.ASSOCIATION_REQUEST,
    FrameType.ASSOCIATION_RESPONSE,
    FrameType.DATA,
)

#: FrameType → wire code (row ``kind`` column).
CODE_OF: Dict[FrameType, int] = {
    frame_type: code for code, frame_type in enumerate(FRAME_TYPES)
}

#: One capture record.  Packed (no alignment padding) so the on-disk
#: block size is exactly ``records * CAPTURE_DTYPE.itemsize``.
CAPTURE_DTYPE = np.dtype([
    ("kind", "u1"),         # FRAME_TYPES index
    ("channel", "i2"),      # tx channel
    ("rx_channel", "i2"),
    ("seq", "u4"),          # 802.11 sequence number
    ("src", "u8"),          # MAC as 48-bit int
    ("dst", "u8"),
    ("bssid", "u8"),        # NO_BSSID when unbound
    ("ts", "f8"),           # tx timestamp
    ("rx_ts", "f8"),        # capture timestamp (the replay sort key)
    ("rssi", "f8"),
    ("snr", "f8"),
    ("tx_power", "f8"),     # dBm
    ("tx_gain", "f8"),      # dBi
    ("ssid", "S32"),        # raw UTF-8, 802.11 max length
    ("aux_off", "u4"),      # overflow JSON slice in the block aux blob
    ("aux_len", "u4"),      # 0 = no overflow payload
])

_MAC_CACHE: Dict[int, MacAddress] = {}
_MAC_CACHE_LIMIT = 1 << 20


def mac_from_int(value: int) -> MacAddress:
    """An interned :class:`MacAddress` for a 48-bit integer.

    Decoding a million-record capture constructs the same few thousand
    device addresses over and over; interning makes each one a single
    dict hit after its first appearance (and keeps dict lookups keyed
    by already-hashed identical objects).
    """
    mac = _MAC_CACHE.get(value)
    if mac is None:
        if len(_MAC_CACHE) >= _MAC_CACHE_LIMIT:
            _MAC_CACHE.clear()
        mac = MacAddress(value)
        _MAC_CACHE[value] = mac
    return mac


def encode_frames(frames: Sequence[ReceivedFrame]
                  ) -> Tuple[np.ndarray, bytes]:
    """Pack received frames into (rows, aux blob).

    Row ``aux_off`` offsets are relative to the returned blob — the
    writer stores rows and blob side by side, so offsets are final.
    """
    rows = np.zeros(len(frames), dtype=CAPTURE_DTYPE)
    aux_parts: List[bytes] = []
    aux_size = 0
    for index, received in enumerate(frames):
        frame = received.frame
        row = rows[index]
        row["kind"] = CODE_OF[frame.frame_type]
        row["channel"] = frame.channel
        row["rx_channel"] = received.rx_channel
        row["seq"] = frame.sequence
        row["src"] = frame.source.value
        row["dst"] = frame.destination.value
        row["bssid"] = (NO_BSSID if frame.bssid is None
                        else frame.bssid.value)
        row["ts"] = frame.timestamp
        row["rx_ts"] = received.rx_timestamp
        row["rssi"] = received.rssi_dbm
        row["snr"] = received.snr_db
        row["tx_power"] = frame.tx_power_dbm
        row["tx_gain"] = frame.tx_antenna_gain_dbi
        overflow: Dict[str, object] = {}
        encoded_ssid = frame.ssid.name.encode("utf-8")
        if encoded_ssid.endswith(b"\x00"):
            # NumPy S32 strips trailing NULs on read; keep such an SSID
            # lossless by routing it through the aux blob instead.
            overflow["s"] = frame.ssid.name
            encoded_ssid = b""
        row["ssid"] = encoded_ssid
        if frame.elements:
            overflow["e"] = dict(frame.elements)
        if overflow:
            blob = json.dumps(overflow, sort_keys=True).encode("utf-8")
            row["aux_off"] = aux_size
            row["aux_len"] = len(blob)
            aux_parts.append(blob)
            aux_size += len(blob)
    return rows, b"".join(aux_parts)


def decode_row(row, aux,
               frame_types: Sequence[FrameType] = FRAME_TYPES
               ) -> ReceivedFrame:
    """Rebuild one :class:`ReceivedFrame` from a row + its aux blob.

    Raises :class:`~repro.faults.CaptureError` on any malformed field
    (unknown kind code, undecodable SSID bytes, corrupt aux JSON).
    """
    code = int(row["kind"])
    if not 0 <= code < len(frame_types):
        raise CaptureError(f"unknown frame-type code {code}")
    overflow: Dict[str, object] = {}
    aux_len = int(row["aux_len"])
    if aux_len:
        offset = int(row["aux_off"])
        blob = bytes(aux[offset:offset + aux_len])
        if len(blob) != aux_len:
            raise CaptureError(
                f"aux slice [{offset}:{offset + aux_len}] out of range")
        try:
            overflow = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise CaptureError(f"corrupt aux payload: {error}") from error
        if not isinstance(overflow, dict):
            raise CaptureError(
                f"aux payload is not a JSON object: {blob[:40]!r}")
    ssid_name = overflow.get("s")
    if ssid_name is None:
        try:
            ssid_name = bytes(row["ssid"]).decode("utf-8")
        except UnicodeDecodeError as error:
            raise CaptureError(f"undecodable SSID bytes: {error}") from error
    bssid_value = int(row["bssid"])
    try:
        frame = Dot11Frame(
            frame_type=frame_types[code],
            source=mac_from_int(int(row["src"])),
            destination=mac_from_int(int(row["dst"])),
            channel=int(row["channel"]),
            timestamp=float(row["ts"]),
            ssid=Ssid(str(ssid_name)),
            bssid=(None if bssid_value == NO_BSSID
                   else mac_from_int(bssid_value)),
            sequence=int(row["seq"]),
            tx_power_dbm=float(row["tx_power"]),
            tx_antenna_gain_dbi=float(row["tx_gain"]),
            elements=dict(overflow.get("e", {})),
        )
    except (TypeError, ValueError) as error:
        raise CaptureError(f"malformed capture row: {error}") from error
    return ReceivedFrame(frame=frame,
                         rssi_dbm=float(row["rssi"]),
                         snr_db=float(row["snr"]),
                         rx_channel=int(row["rx_channel"]),
                         rx_timestamp=float(row["rx_ts"]))


class FrameBatch:
    """One replay batch: a row slice plus its aux blob, decoded lazily.

    ``records`` is a structured array over :data:`CAPTURE_DTYPE` — for
    columnar captures it is a zero-copy view straight into the
    memory-mapped file.  Consumers that can work columnar (the engine's
    vectorized ingest, ``locate_batch`` feeders) read the columns;
    consumers that need objects call :meth:`frame_at` or
    :meth:`iter_frames`.
    """

    __slots__ = ("records", "aux", "frame_types")

    def __init__(self, records: np.ndarray, aux=b"",
                 frame_types: Sequence[FrameType] = FRAME_TYPES):
        self.records = records
        self.aux = aux
        self.frame_types = frame_types

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ReceivedFrame]:
        return self.iter_frames()

    @property
    def rx_timestamps(self) -> np.ndarray:
        """The ``rx_ts`` column (a view, no copy)."""
        return self.records["rx_ts"]

    @property
    def t_min(self) -> float:
        return float(self.records["rx_ts"].min())

    @property
    def t_max(self) -> float:
        return float(self.records["rx_ts"].max())

    def frame_at(self, index: int) -> ReceivedFrame:
        """Decode one record to a full :class:`ReceivedFrame`."""
        return decode_row(self.records[index], self.aux, self.frame_types)

    def iter_frames(self, strict: bool = True,
                    on_error: Optional[Callable[[int, str], None]] = None
                    ) -> Iterator[ReceivedFrame]:
        """Materialize every record, in row order.

        ``strict=False`` skips malformed records, reporting each to
        ``on_error(index, reason)`` — the lenient posture of the JSONL
        reader, applied to row decoding.
        """
        for index in range(len(self.records)):
            try:
                yield decode_row(self.records[index], self.aux,
                                 self.frame_types)
            except CaptureError as error:
                if strict:
                    raise CaptureError(
                        f"record {index}: {error}") from error
                if on_error is not None:
                    on_error(index, str(error))

    def filter_device(self, value: int) -> "FrameBatch":
        """Rows where ``value`` appears as src, dst, or bssid (a copy)."""
        records = self.records
        mask = ((records["src"] == value) | (records["dst"] == value)
                | (records["bssid"] == value))
        return FrameBatch(records[mask], self.aux, self.frame_types)
