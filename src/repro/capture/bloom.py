"""Per-block device bloom filters for selective replay.

Each columnar block carries one :class:`BloomFilter` over every device
identifier (src, dst, non-sentinel bssid) appearing in the block.  A
device-filtered replay probes the filter first and skips whole blocks —
never touching their bytes, let alone decoding records — whenever the
filter proves absence.  False positives cost one wasted block scan
(counted as ``repro.capture.bloom.false_positives``); false negatives
are impossible.

Hashing is splitmix64-based double hashing — pure integer arithmetic,
deterministic across processes and NumPy versions, vectorizable for
block construction and cheap scalar for membership probes.  Filters
serialize to hex for the JSON footer index.
"""

from __future__ import annotations

import binascii
from typing import Optional

import numpy as np

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
#: Salt distinguishing the second hash stream from the first.
_SALT = 0xA5A5A5A55A5A5A5A


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a u8 array (wrapping)."""
    z = (values + np.uint64(_SPLITMIX_GAMMA))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_2)
    return z ^ (z >> np.uint64(31))


def _splitmix64_scalar(value: int) -> int:
    z = (value + _SPLITMIX_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_2) & _MASK64
    return z ^ (z >> 31)


class BloomFilter:
    """A fixed-size bloom filter over 64-bit integer keys.

    Parameters
    ----------
    bits:
        Filter width in bits (the byte array is ``ceil(bits / 8)``).
    hashes:
        Probes per key (``k``).  With the default 32768 bits / 4
        hashes, a block with ~4000 distinct devices stays near a 1%
        false-positive rate.
    data:
        Existing filter bytes (deserialization); length must match.
    """

    __slots__ = ("bits", "hashes", "_bytes")

    def __init__(self, bits: int = 32768, hashes: int = 4,
                 data: Optional[bytes] = None):
        if bits < 8:
            raise ValueError(f"bits must be >= 8, got {bits}")
        if hashes < 1:
            raise ValueError(f"hashes must be >= 1, got {hashes}")
        self.bits = bits
        self.hashes = hashes
        size = (bits + 7) // 8
        if data is None:
            self._bytes = np.zeros(size, dtype=np.uint8)
        else:
            raw = np.frombuffer(bytes(data), dtype=np.uint8)
            if len(raw) != size:
                raise ValueError(
                    f"filter data is {len(raw)} bytes, expected {size}")
            self._bytes = raw.copy()

    def add_many(self, values: np.ndarray) -> None:
        """Insert an array of 64-bit keys (vectorized)."""
        if len(values) == 0:
            return
        keys = np.asarray(values, dtype=np.uint64)
        h1 = _splitmix64(keys)
        h2 = _splitmix64(keys ^ np.uint64(_SALT)) | np.uint64(1)
        bits = np.uint64(self.bits)
        for probe in range(self.hashes):
            index = (h1 + np.uint64(probe) * h2) % bits
            np.bitwise_or.at(self._bytes, (index >> np.uint64(3)).astype(
                np.intp), (np.uint8(1) << (index & np.uint64(7)).astype(
                    np.uint8)))

    def add(self, value: int) -> None:
        self.add_many(np.array([value], dtype=np.uint64))

    def __contains__(self, value: int) -> bool:
        h1 = _splitmix64_scalar(int(value))
        h2 = _splitmix64_scalar(int(value) ^ _SALT) | 1
        for probe in range(self.hashes):
            index = (h1 + probe * h2) % self.bits
            if not self._bytes[index >> 3] & (1 << (index & 7)):
                return False
        return True

    def fill_ratio(self) -> float:
        """Fraction of bits set — the saturation diagnostic."""
        set_bits = int(np.unpackbits(self._bytes).sum())
        return set_bits / float(len(self._bytes) * 8)

    def to_hex(self) -> str:
        """Hex serialization for the JSON footer index."""
        return binascii.hexlify(self._bytes.tobytes()).decode("ascii")

    @classmethod
    def from_hex(cls, text: str, bits: int, hashes: int) -> "BloomFilter":
        return cls(bits=bits, hashes=hashes,
                   data=binascii.unhexlify(text))
