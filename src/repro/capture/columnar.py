"""The columnar capture codec: memory-mapped, time-indexed, bloom-skippable.

On-disk layout (``MRDCAP01``)::

    offset 0        magic  b"MRDCAP01"
    ...             block 0 rows   (records * CAPTURE_DTYPE.itemsize bytes)
                    block 0 aux    (variable, may be empty)
                    block 1 rows
                    block 1 aux
                    ...
    ...             footer JSON    (the index, UTF-8)
                    u64 LE         footer length in bytes
                    magic  b"MRDIDX01"

Rows are raw :data:`~repro.capture.records.CAPTURE_DTYPE` bytes — a
reader maps the file and takes ``np.frombuffer`` views straight into
the page cache; no record is ever parsed, copied, or object-ified
until a consumer asks for it.  The footer JSON indexes the blocks::

    {"columnar_version": 1,
     "dtype": [["kind", "|u1"], ...],        # self-describing schema
     "frame_types": ["beacon", ...],          # kind-code table
     "record_bytes": 121, "records": N, "block_records": 65536,
     "globally_sorted": true,
     "bloom": {"bits": 32768, "hashes": 4},
     "blocks": [{"offset": ..., "records": ...,
                 "aux_offset": ..., "aux_bytes": ...,
                 "t_min": ..., "t_max": ..., "sorted": true,
                 "bloom": "<hex>"}, ...]}

Each block's ``t_min``/``t_max`` gates time-windowed replay and its
bloom filter (over every src/dst/bssid in the block) gates
device-filtered replay — both skip whole blocks without touching their
bytes, counted as ``repro.capture.blocks_skipped``.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.capture.bloom import BloomFilter
from repro.capture.records import (CAPTURE_DTYPE, FRAME_TYPES, NO_BSSID,
                                   FrameBatch, encode_frames)
from repro.faults import CaptureError
from repro.net80211.frames import FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame

PathLike = Union[str, Path]

MAGIC = b"MRDCAP01"
FOOTER_MAGIC = b"MRDIDX01"
COLUMNAR_VERSION = 1

#: Default rows per block: ~7.6 MB of rows at the 121-byte record —
#: large enough that footer overhead and per-block Python cost vanish,
#: small enough that a bloom/time skip saves real work.
DEFAULT_BLOCK_RECORDS = 65536
DEFAULT_BLOOM_BITS = 32768
DEFAULT_BLOOM_HASHES = 4


class ColumnarWriter:
    """Write a columnar capture file.

    Unlike :class:`~repro.capture.jsonl.JsonlWriter`, this codec is
    write-once: the footer index lands at close, so there is no append
    mode — extend a capture by compacting it together with new data
    (:func:`repro.capture.compact.compact_captures`).

    ``sort_within_block`` (default) stable-sorts each block by
    ``rx_ts`` before it hits disk, so single-source captures written in
    arrival order come out block-sorted; the footer records per-block
    and global sortedness so readers know whether replay needs a sort.
    """

    format = "columnar"

    def __init__(self, path: PathLike,
                 block_records: int = DEFAULT_BLOCK_RECORDS,
                 bloom_bits: int = DEFAULT_BLOOM_BITS,
                 bloom_hashes: int = DEFAULT_BLOOM_HASHES,
                 sort_within_block: bool = True):
        if block_records < 1:
            raise ValueError(
                f"block_records must be >= 1, got {block_records}")
        self.path = Path(path)
        self.block_records = block_records
        self.bloom_bits = bloom_bits
        self.bloom_hashes = bloom_hashes
        self.sort_within_block = sort_within_block
        self._handle = self.path.open("wb")
        self._handle.write(MAGIC)
        self._offset = len(MAGIC)
        self._pending: List[ReceivedFrame] = []
        self._blocks: List[dict] = []
        self._records = 0
        self._closed = False

    def write(self, received: ReceivedFrame) -> None:
        """Buffer one record; flushes a block when the buffer fills."""
        self._pending.append(received)
        if len(self._pending) >= self.block_records:
            self._flush_pending()

    def write_rows(self, records: np.ndarray, aux: bytes = b"") -> None:
        """Bulk path: append already-encoded rows (the compactor's seam).

        ``records`` must use :data:`CAPTURE_DTYPE`; ``aux_off`` offsets
        must address ``aux``.  Rows are re-chunked into blocks and each
        block's aux slices are rebased into a per-block blob.
        """
        if records.dtype != CAPTURE_DTYPE:
            raise CaptureError(
                f"rows dtype {records.dtype} != capture dtype")
        self._flush_pending()
        for start in range(0, len(records), self.block_records):
            chunk = records[start:start + self.block_records]
            self._write_block(chunk, aux)

    def close(self) -> None:
        if self._closed:
            return
        self._flush_pending()
        self._write_footer()
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        rows, aux = encode_frames(self._pending)
        self._pending = []
        self._write_block(rows, aux)

    def _write_block(self, rows: np.ndarray, aux: bytes) -> None:
        if len(rows) == 0:
            return
        rows, aux = _rebase_aux(rows, aux)
        rx_ts = rows["rx_ts"]
        is_sorted = bool(np.all(rx_ts[:-1] <= rx_ts[1:]))
        if self.sort_within_block and not is_sorted:
            # Stable: records with equal rx_ts keep arrival order, the
            # same tie-break the replay ReorderBuffer uses.
            order = np.argsort(rx_ts, kind="stable")
            rows = rows[order]
            is_sorted = True
        bloom = BloomFilter(bits=self.bloom_bits, hashes=self.bloom_hashes)
        devices = np.unique(np.concatenate([
            rows["src"], rows["dst"],
            rows["bssid"][rows["bssid"] != np.uint64(NO_BSSID)]]))
        bloom.add_many(devices)
        block_bytes = rows.tobytes()
        entry = {
            "offset": self._offset,
            "records": int(len(rows)),
            "aux_offset": self._offset + len(block_bytes),
            "aux_bytes": len(aux),
            "t_min": float(rows["rx_ts"].min()),
            "t_max": float(rows["rx_ts"].max()),
            "sorted": is_sorted,
            "bloom": bloom.to_hex(),
        }
        self._handle.write(block_bytes)
        self._handle.write(aux)
        self._offset += len(block_bytes) + len(aux)
        self._blocks.append(entry)
        self._records += len(rows)

    def _write_footer(self) -> None:
        globally_sorted = all(b["sorted"] for b in self._blocks) and all(
            self._blocks[i]["t_max"] <= self._blocks[i + 1]["t_min"]
            for i in range(len(self._blocks) - 1))
        footer = {
            "columnar_version": COLUMNAR_VERSION,
            "dtype": [list(field) for field in CAPTURE_DTYPE.descr],
            "frame_types": [ft.value for ft in FRAME_TYPES],
            "record_bytes": CAPTURE_DTYPE.itemsize,
            "records": self._records,
            "block_records": self.block_records,
            "globally_sorted": globally_sorted,
            "bloom": {"bits": self.bloom_bits, "hashes": self.bloom_hashes},
            "blocks": self._blocks,
        }
        blob = json.dumps(footer, sort_keys=True).encode("utf-8")
        self._handle.write(blob)
        self._handle.write(struct.pack("<Q", len(blob)))
        self._handle.write(FOOTER_MAGIC)


def _rebase_aux(rows: np.ndarray, aux) -> "tuple[np.ndarray, bytes]":
    """Copy the aux slices ``rows`` references into a fresh dense blob.

    Lets a caller hand any row subset (a compactor merge, a re-chunked
    block) plus the original blob; offsets are rewritten so each block
    carries exactly its own overflow bytes.
    """
    used = rows["aux_len"] > 0
    if not used.any():
        if rows["aux_off"].any():
            rows = rows.copy()
            rows["aux_off"] = 0
        return rows, b""
    rows = rows.copy()
    parts: List[bytes] = []
    position = 0
    for index in np.nonzero(used)[0]:
        offset = int(rows["aux_off"][index])
        length = int(rows["aux_len"][index])
        blob = bytes(aux[offset:offset + length])
        if len(blob) != length:
            raise CaptureError(
                f"aux slice [{offset}:{offset + length}] out of range")
        parts.append(blob)
        rows["aux_off"][index] = position
        position += length
    rows["aux_off"][~used] = 0
    return rows, b"".join(parts)


class ColumnarReader:
    """Memory-mapped reader over a ``MRDCAP01`` capture.

    The file is mapped once at open; every :class:`FrameBatch` this
    reader yields views the map directly (zero copy) unless filtering
    or sorting forces one.  Structural corruption — bad magic,
    truncated footer, index pointing outside the file — always raises
    :class:`~repro.faults.CaptureError`, even with ``strict=False``:
    like a bad JSONL header, it voids the whole capture, not one
    record.  ``strict`` only governs per-record decode errors during
    frame iteration.
    """

    format = "columnar"

    def __init__(self, path: PathLike, strict: bool = True,
                 on_skip: Optional[Callable[[int, str], None]] = None,
                 device: Optional[Union[MacAddress, str, int]] = None):
        self.path = Path(path)
        self.strict = strict
        self.on_skip = on_skip
        self.device = _normalize_device(device)
        #: Malformed records skipped by the most recent iteration.
        self.skipped = 0
        self._file = self.path.open("rb")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except ValueError as error:  # empty file cannot be mapped
            self._file.close()
            raise CaptureError(f"{self.path}: not a capture file "
                               f"({error})") from error
        try:
            self._load_footer()
        except CaptureError:
            self.close()
            raise

    def _load_footer(self) -> None:
        view = self._mmap
        tail = len(FOOTER_MAGIC) + 8
        if len(view) < len(MAGIC) + tail:
            raise CaptureError(f"{self.path}: truncated capture file")
        if view[:len(MAGIC)] != MAGIC:
            raise CaptureError(
                f"{self.path}: bad magic {bytes(view[:len(MAGIC)])!r}")
        if view[-len(FOOTER_MAGIC):] != FOOTER_MAGIC:
            raise CaptureError(f"{self.path}: missing footer "
                               "(capture not closed cleanly?)")
        (footer_len,) = struct.unpack(
            "<Q", view[-tail:-len(FOOTER_MAGIC)])
        footer_end = len(view) - tail
        if footer_len > footer_end - len(MAGIC):
            raise CaptureError(f"{self.path}: footer length {footer_len} "
                               "exceeds file size")
        blob = view[footer_end - footer_len:footer_end]
        try:
            footer = json.loads(bytes(blob).decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise CaptureError(
                f"{self.path}: corrupt footer index: {error}") from error
        version = footer.get("columnar_version")
        if version != COLUMNAR_VERSION:
            raise CaptureError(
                f"{self.path}: unsupported columnar version {version}")
        try:
            self.dtype = np.dtype([tuple(field)
                                   for field in footer["dtype"]])
            self.frame_types = tuple(FrameType(value)
                                     for value in footer["frame_types"])
            self.blocks = footer["blocks"]
            self.records = int(footer["records"])
            self.globally_sorted = bool(footer["globally_sorted"])
            self.bloom_bits = int(footer["bloom"]["bits"])
            self.bloom_hashes = int(footer["bloom"]["hashes"])
            self.block_records = int(footer["block_records"])
        except (KeyError, TypeError, ValueError) as error:
            raise CaptureError(
                f"{self.path}: malformed footer index: {error}") from error
        data_end = footer_end - footer_len
        for number, block in enumerate(self.blocks):
            try:
                end = (block["offset"]
                       + block["records"] * self.dtype.itemsize)
                aux_end = block["aux_offset"] + block["aux_bytes"]
            except (KeyError, TypeError) as error:
                raise CaptureError(f"{self.path}: malformed block "
                                   f"{number}: {error}") from error
            if (block["offset"] < len(MAGIC) or end > data_end
                    or aux_end > data_end):
                raise CaptureError(
                    f"{self.path}: block {number} extends outside file")

    def close(self) -> None:
        # NumPy views handed out earlier keep the map alive; mmap.close
        # raises BufferError while views exist, so tolerate it and let
        # the map die with its last view.
        try:
            self._mmap.close()
        except BufferError:
            pass
        self._file.close()

    def __enter__(self) -> "ColumnarReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def iter_batches(self, batch_records: Optional[int] = None,
                     device: Optional[Union[MacAddress, str, int]] = None,
                     start_ts: Optional[float] = None,
                     end_ts: Optional[float] = None
                     ) -> Iterator[FrameBatch]:
        """Yield zero-copy :class:`FrameBatch` slices in block order.

        ``device`` consults each block's bloom filter before touching
        its bytes; ``start_ts``/``end_ts`` consult the time index.
        Skipped blocks count under ``repro.capture.blocks_skipped``;
        blocks a bloom filter admitted that turn out to hold no
        matching row count under ``repro.capture.bloom.false_positives``
        (the filter can over-admit, never under-admit).
        """
        registry = obs.current_registry()
        skipped_blocks = registry.counter("repro.capture.blocks_skipped")
        read_blocks = registry.counter("repro.capture.blocks_read")
        false_positives = registry.counter(
            "repro.capture.bloom.false_positives")
        filtered = registry.counter("repro.capture.records_filtered")
        batches = registry.counter("repro.capture.batches")
        wanted = _normalize_device(device)
        if wanted is None:
            wanted = self.device
        wanted_value = None if wanted is None else int(wanted.value)
        for block in self.blocks:
            if start_ts is not None and block["t_max"] < start_ts:
                skipped_blocks.inc()
                continue
            if end_ts is not None and block["t_min"] > end_ts:
                skipped_blocks.inc()
                continue
            if wanted_value is not None:
                bloom = BloomFilter.from_hex(block["bloom"],
                                             bits=self.bloom_bits,
                                             hashes=self.bloom_hashes)
                if wanted_value not in bloom:
                    skipped_blocks.inc()
                    continue
            read_blocks.inc()
            rows = np.frombuffer(self._mmap, dtype=self.dtype,
                                 count=block["records"],
                                 offset=block["offset"])
            aux = memoryview(self._mmap)[
                block["aux_offset"]:
                block["aux_offset"] + block["aux_bytes"]]
            if not block.get("sorted", False):
                order = np.argsort(rows["rx_ts"], kind="stable")
                rows = rows[order]
            if start_ts is not None or end_ts is not None:
                mask = np.ones(len(rows), dtype=bool)
                if start_ts is not None:
                    mask &= rows["rx_ts"] >= start_ts
                if end_ts is not None:
                    mask &= rows["rx_ts"] <= end_ts
                if not mask.all():
                    rows = rows[mask]
            if wanted_value is not None:
                value = np.uint64(wanted_value)
                mask = ((rows["src"] == value) | (rows["dst"] == value)
                        | (rows["bssid"] == value))
                kept = int(mask.sum())
                filtered.inc(len(rows) - kept)
                if kept == 0:
                    # The bloom filter admitted the block but no row
                    # matched: a false positive (or every matching row
                    # fell outside the time window).
                    false_positives.inc()
                    continue
                if kept < len(rows):
                    rows = rows[mask]
            if len(rows) == 0:
                continue
            if batch_records is None or batch_records >= len(rows):
                batches.inc()
                yield FrameBatch(rows, aux, self.frame_types)
            else:
                for start in range(0, len(rows), batch_records):
                    batches.inc()
                    yield FrameBatch(rows[start:start + batch_records],
                                     aux, self.frame_types)

    def __iter__(self) -> Iterator[ReceivedFrame]:
        self.skipped = 0
        for batch in self.iter_batches():
            yield from batch.iter_frames(strict=self.strict,
                                         on_error=self._record_skip)

    def _record_skip(self, index: int, reason: str) -> None:
        self.skipped += 1
        if self.on_skip is not None:
            self.on_skip(index, reason)

    def info(self) -> dict:
        """Summary statistics from the footer index (O(blocks))."""
        fills = []
        for block in self.blocks:
            bloom = BloomFilter.from_hex(block["bloom"],
                                         bits=self.bloom_bits,
                                         hashes=self.bloom_hashes)
            fills.append(bloom.fill_ratio())
        times = ([min(b["t_min"] for b in self.blocks),
                  max(b["t_max"] for b in self.blocks)]
                 if self.blocks else None)
        return {
            "format": self.format,
            "path": str(self.path),
            "file_bytes": self.path.stat().st_size,
            "records": self.records,
            "record_bytes": self.dtype.itemsize,
            "blocks": len(self.blocks),
            "block_records": self.block_records,
            "globally_sorted": self.globally_sorted,
            "time": times,
            "aux_bytes": sum(b["aux_bytes"] for b in self.blocks),
            "bloom": {
                "bits": self.bloom_bits,
                "hashes": self.bloom_hashes,
                "mean_fill": (sum(fills) / len(fills)) if fills else 0.0,
            },
        }


def _normalize_device(device) -> Optional[MacAddress]:
    if device is None:
        return None
    if isinstance(device, MacAddress):
        return device
    if isinstance(device, int):
        return MacAddress(device)
    return MacAddress.parse(str(device))


def sniff_columnar(path: PathLike) -> bool:
    """True when the file starts with the columnar magic."""
    with open(path, "rb") as handle:
        return handle.read(len(MAGIC)) == MAGIC
