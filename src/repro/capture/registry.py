"""The capture codec registry: one public seam for capture I/O.

Every in-repo consumer — replay, the engines, the CLI — opens captures
through :func:`open_capture` and writes them through
:func:`make_capture_writer`; neither names a concrete codec class.
:func:`open_capture` sniffs the on-disk format (columnar magic, else a
JSONL-looking first byte, else *assume* JSONL so the legacy lenient
posture — garbage first line, valid records later — still works), and
third-party formats plug in via :func:`register_codec`.

A codec is three callables plus a name:

* ``sniff(path) -> bool`` — cheap format detection from file bytes;
* ``reader(path, strict=..., on_skip=..., device=..., **options)`` —
  an iterable of :class:`~repro.net80211.medium.ReceivedFrame` with a
  ``skipped`` attribute, ideally also ``iter_batches()`` and
  ``info()``;
* ``writer(path, **options)`` — has ``write(received)``/``close()``
  and works as a context manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Tuple, Union

from repro.capture import columnar as _columnar
from repro.capture import jsonl as _jsonl

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CaptureCodec:
    """One registered capture format."""

    name: str
    sniff: Callable[[PathLike], bool]
    reader: Callable[..., object]
    writer: Callable[..., object]
    #: Short human description for ``marauder capture info`` and docs.
    description: str = field(default="", compare=False)


_CODECS: Dict[str, CaptureCodec] = {}

#: The format assumed when nothing sniffs: the legacy JSONL reader's
#: lenient mode must keep accepting files whose first line is garbage.
FALLBACK_FORMAT = "jsonl"


def register_codec(codec: CaptureCodec, replace: bool = False) -> None:
    """Add a codec to the registry.

    Sniffing runs in registration order with the fallback last, so
    register more-specific formats (magic-numbered binaries) before
    loose text formats.
    """
    if not replace and codec.name in _CODECS:
        raise ValueError(f"capture codec {codec.name!r} already "
                         "registered (pass replace=True to override)")
    _CODECS[codec.name] = codec


def codec_names() -> Tuple[str, ...]:
    return tuple(_CODECS)


def get_codec(name: str) -> CaptureCodec:
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown capture format {name!r}; "
            f"registered: {', '.join(_CODECS) or '(none)'}") from None


def sniff_format(path: PathLike) -> str:
    """Detect a capture file's format from its bytes.

    Raises ``OSError`` if the file cannot be read (missing, perms) —
    callers that want a friendly message catch that at the seam.
    Unrecognized content falls back to :data:`FALLBACK_FORMAT`.
    """
    for codec in _CODECS.values():
        if codec.name == FALLBACK_FORMAT:
            continue
        if codec.sniff(path):
            return codec.name
    fallback = _CODECS.get(FALLBACK_FORMAT)
    if fallback is not None and fallback.sniff(path):
        return fallback.name
    return FALLBACK_FORMAT


def open_capture(path: PathLike, format: str = None, **options):
    """Open a capture for reading, sniffing the format by default.

    ``options`` pass through to the codec's reader — ``strict``,
    ``on_skip``, and ``device`` are common to the built-ins.
    """
    name = format if format is not None else sniff_format(path)
    return get_codec(name).reader(path, **options)


def make_capture_writer(path: PathLike, format: str = "columnar",
                        **options):
    """Create a capture writer for the chosen format (columnar default)."""
    return get_codec(format).writer(path, **options)


def capture_info(path: PathLike, format: str = None) -> dict:
    """Summary statistics for a capture in either format."""
    reader = open_capture(path, format=format, strict=False)
    try:
        return reader.info()
    finally:
        close = getattr(reader, "close", None)
        if close is not None:
            close()


def _register_builtins() -> None:
    register_codec(CaptureCodec(
        name="columnar",
        sniff=_columnar.sniff_columnar,
        reader=_columnar.ColumnarReader,
        writer=_columnar.ColumnarWriter,
        description="memory-mapped columnar blocks with time index "
                    "and per-block device bloom filters",
    ), replace=True)
    register_codec(CaptureCodec(
        name="jsonl",
        sniff=_jsonl.sniff_jsonl,
        reader=_jsonl.JsonlReader,
        writer=_jsonl.JsonlWriter,
        description="legacy line-per-record JSON (append-friendly, "
                    "greppable)",
    ), replace=True)


_register_builtins()
