"""Location-privacy defenses — the paper's future-work direction.

The paper closes with: "We expect the results of this paper to
stimulate the implementation of a set of mobile identity camouflaging
protocols to preserve user location privacy in pervasive WiFi
networks."  Its related-work section surveys the candidate mechanisms;
this package implements them against our own attack so their real
effect can be measured:

* :mod:`repro.defenses.pseudonym` — randomized MAC addresses with
  rotation policies (Hu & Wang [31], Singelee & Preneel [33]),
* :mod:`repro.defenses.silent` — random silent periods: the device
  stops transmitting for a random interval around each identifier
  change, breaking trajectory continuity,
* :mod:`repro.defenses.mixzone` — Mix Zones (Beresford & Stajano
  [30]): spatial regions where every device keeps radio silence, so
  identities mix,
* :mod:`repro.defenses.probe_hygiene` — suppressing directed probe
  requests, the implicit identifier (Pang et al. [13]) that otherwise
  defeats pseudonyms,
* :mod:`repro.defenses.evaluation` — trackability metrics: how much of
  a device's trajectory the Marauder's map still recovers under a
  defense.
"""

from repro.defenses.pseudonym import PseudonymPolicy, RotationTrigger
from repro.defenses.silent import SilentPeriodPolicy
from repro.defenses.mixzone import MixZone, MixZoneMap
from repro.defenses.probe_hygiene import ProbeHygiene
from repro.defenses.evaluation import (
    DefendedStation,
    TrackabilityReport,
    evaluate_trackability,
)

__all__ = [
    "PseudonymPolicy",
    "RotationTrigger",
    "SilentPeriodPolicy",
    "MixZone",
    "MixZoneMap",
    "ProbeHygiene",
    "DefendedStation",
    "TrackabilityReport",
    "evaluate_trackability",
]
