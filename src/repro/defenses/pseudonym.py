"""MAC pseudonym rotation policies.

"Hu and Wang [31] present a framework of location privacy using random
identity addresses such as IP and MAC addresses" — the device replaces
its MAC with a fresh locally-administered random address, periodically
or at association boundaries.  The Marauder's map can still track a
rotating device if something else links the pseudonyms (see
:mod:`repro.defenses.probe_hygiene`), which is exactly the Pang et al.
weakness the paper cites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.net80211.mac import MacAddress


class RotationTrigger(enum.Enum):
    """When a new pseudonym is drawn."""

    PERIODIC = "periodic"            # every ``interval_s`` seconds
    PER_ASSOCIATION = "association"  # whenever the device (re)associates
    NEVER = "never"                  # static MAC (no defense)


@dataclass
class PseudonymPolicy:
    """Decides when to rotate and draws fresh pseudonym MACs.

    ``interval_s`` applies to the PERIODIC trigger.  The policy is
    stateful: call :meth:`maybe_rotate` each tick (and
    :meth:`on_association` at association events) and apply the returned
    MAC when one is produced.
    """

    trigger: RotationTrigger = RotationTrigger.PERIODIC
    interval_s: float = 300.0
    _next_rotation_at: float = field(default=0.0, repr=False)
    rotations: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ValueError(
                f"rotation interval must be > 0 s, got {self.interval_s}")
        self._next_rotation_at = self.interval_s

    def maybe_rotate(self, now: float,
                     rng: np.random.Generator) -> Optional[MacAddress]:
        """A fresh pseudonym when the periodic timer fires, else None."""
        if self.trigger is not RotationTrigger.PERIODIC:
            return None
        if now < self._next_rotation_at:
            return None
        self._next_rotation_at = now + self.interval_s
        return self._draw(rng)

    def on_association(self, rng: np.random.Generator
                       ) -> Optional[MacAddress]:
        """A fresh pseudonym at an association boundary, else None."""
        if self.trigger is not RotationTrigger.PER_ASSOCIATION:
            return None
        return self._draw(rng)

    def _draw(self, rng: np.random.Generator) -> MacAddress:
        self.rotations += 1
        return MacAddress.random_pseudonym(rng)
