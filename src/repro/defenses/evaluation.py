"""Trackability evaluation: defenses vs. the digital Marauder's map.

Wraps a :class:`~repro.net80211.station.MobileStation` with the defense
policies (:class:`DefendedStation`) and measures, against a live
sniffing world, how much the attacker still gets:

* how many distinct MACs the device burned,
* how many of them the attacker *links back together* through the
  preferred-network fingerprint (the Pang et al. side channel —
  suppressed by probe hygiene),
* in what fraction of observation windows the device was locatable at
  all, and with what error,
* the cost side: the fraction of time spent radio-silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.defenses.mixzone import MixZoneMap
from repro.defenses.probe_hygiene import ProbeHygiene
from repro.defenses.pseudonym import PseudonymPolicy
from repro.defenses.silent import SilentPeriodPolicy
from repro.geometry.point import Point
from repro.localization.mloc import MLoc
from repro.net80211.frames import Dot11Frame
from repro.net80211.mac import MacAddress
from repro.net80211.station import MobileStation
from repro.numerics.rng import make_rng
from repro.sniffer.tracker import PseudonymLinker


@dataclass
class DefendedStation:
    """A mobile station running identity-camouflage defenses.

    Duck-types the station interface :class:`repro.sim.world.CampusWorld`
    uses (``tick``, ``handle_frame``, ``move_to``,
    ``schedule_first_scan``, ``position``, ``mac``), wrapping an inner
    station and applying, in order: mix-zone silence, silent periods,
    pseudonym rotation, and probe hygiene.
    """

    inner: MobileStation
    pseudonyms: Optional[PseudonymPolicy] = None
    silence: Optional[SilentPeriodPolicy] = None
    mix_zones: Optional[MixZoneMap] = None
    hygiene: Optional[ProbeHygiene] = None
    #: Reset the 802.11 sequence counter on rotation.  A NIC that keeps
    #: counting across MAC changes is linkable by sequence continuity
    #: (:class:`repro.sniffer.tracker.SequenceNumberLinker`).
    reset_sequence: bool = True
    seed: Optional[int] = None
    #: (mac, first-used-at) — the device's true identity timeline.
    identity_history: List[Tuple[MacAddress, float]] = field(
        default_factory=list)
    _rng: np.random.Generator = field(init=False, repr=False)
    _was_in_zone: bool = field(default=False, repr=False)
    _muted_ticks: int = field(default=0, repr=False)
    _total_ticks: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        if self.hygiene is not None:
            self.hygiene.apply_to_station(self.inner)
        self.identity_history.append((self.inner.mac, 0.0))

    # -- station interface -------------------------------------------

    @property
    def mac(self) -> MacAddress:
        return self.inner.mac

    @property
    def position(self) -> Point:
        return self.inner.position

    @property
    def associated_bssid(self):
        return self.inner.associated_bssid

    def schedule_first_scan(self, rng) -> None:
        self.inner.schedule_first_scan(rng)

    def move_to(self, position: Point) -> None:
        self.inner.move_to(position)

    def handle_frame(self, frame: Dot11Frame, now: float) -> None:
        self.inner.handle_frame(frame, now)

    def tick(self, now: float) -> List[Dot11Frame]:
        self._total_ticks += 1
        self._update_mix_zone_state(now)
        if self._is_muted(now):
            self._muted_ticks += 1
            # The scan timer still runs; frames are simply not sent.
            self.inner.tick(now)
            return []
        self._maybe_rotate(now)
        frames = self.inner.tick(now)
        if self.hygiene is not None:
            frames = self.hygiene.filter_burst(frames)
        return frames

    # -- defense mechanics --------------------------------------------

    def _is_muted(self, now: float) -> bool:
        if self.mix_zones is not None and self.mix_zones.in_zone(
                self.inner.position):
            return True
        if self.silence is not None and self.silence.is_silent(now):
            return True
        return False

    def _update_mix_zone_state(self, now: float) -> None:
        if self.mix_zones is None:
            return
        in_zone = self.mix_zones.in_zone(self.inner.position)
        if self._was_in_zone and not in_zone:
            # Exiting a mix zone: fresh identity + optional tail silence.
            self._adopt(MacAddress.random_pseudonym(self._rng), now)
            if self.silence is not None:
                self.silence.begin(now, self._rng)
        self._was_in_zone = in_zone

    def _maybe_rotate(self, now: float) -> None:
        if self.pseudonyms is None:
            return
        fresh = self.pseudonyms.maybe_rotate(now, self._rng)
        if fresh is not None:
            self._adopt(fresh, now)
            if self.silence is not None:
                self.silence.begin(now, self._rng)

    def _adopt(self, mac: MacAddress, now: float) -> None:
        self.inner.mac = mac
        self.inner.associated_bssid = None
        if self.reset_sequence:
            self.inner._sequence = 0
        self.identity_history.append((mac, now))

    # -- costs ----------------------------------------------------------

    @property
    def macs_used(self) -> List[MacAddress]:
        return [mac for mac, _ in self.identity_history]

    @property
    def muted_fraction(self) -> float:
        """Fraction of ticks spent radio-silent (the usability cost)."""
        if self._total_ticks == 0:
            return 0.0
        return self._muted_ticks / self._total_ticks


@dataclass
class TrackabilityReport:
    """What the attacker recovered about one defended device."""

    macs_used: int
    linked_by_attacker: int     # largest fingerprint-linked MAC group
    observed_macs: int          # pseudonyms that produced any evidence
    located_fixes: int          # windows with a localization estimate
    mean_error_m: Optional[float]
    muted_fraction: float

    @property
    def linkage_broken(self) -> bool:
        """True when no two pseudonyms could be linked."""
        return self.linked_by_attacker <= 1


def evaluate_trackability(world, defended: DefendedStation,
                          duration_s: float, truth_db,
                          step_s: float = 1.0,
                          window_s: float = 30.0) -> TrackabilityReport:
    """Run the world and measure the attacker's view of the device.

    ``world`` must contain ``defended`` as a station and carry the
    Marauder's-map sniffer; ``truth_db`` is the attacker's (full) AP
    knowledge used for M-Loc.
    """
    world.sniffer.keep_frames = True
    world.run(duration_s, step_s=step_s)

    device_macs = set(defended.macs_used)

    # Pseudonym linking from every captured probe request.
    linker = PseudonymLinker()
    for received in world.sniffer.captured:
        linker.ingest(received.frame)
    linked = 0
    for group in linker.linked_groups():
        overlap = len(set(group) & device_macs)
        linked = max(linked, overlap)

    # Localization attempts per (pseudonym, window).
    store = world.sniffer.store
    mloc = MLoc(truth_db)
    errors: List[float] = []
    observed_macs = 0
    located = 0
    for mac in device_macs:
        gamma_all = store.gamma(mac)
        if gamma_all:
            observed_macs += 1
        for window in store.windows():
            if window.mobile != mac:
                continue
            estimate = mloc.locate(window.observed)
            if estimate is None:
                continue
            located += 1
            truth = world.truth_at(
                mac, window.window_start + window_s / 2.0,
                tolerance_s=window_s)
            if truth is not None:
                errors.append(estimate.error_to(truth))

    return TrackabilityReport(
        macs_used=len(device_macs),
        linked_by_attacker=linked,
        observed_macs=observed_macs,
        located_fixes=located,
        mean_error_m=(sum(errors) / len(errors)) if errors else None,
        muted_fraction=defended.muted_fraction,
    )
