"""Random silent periods.

Hu & Wang's framework pairs identifier randomization with a "random
silent period in which mobile nodes don't transmit or receive frames":
if a device rotated its MAC but kept transmitting, the attacker could
link old and new identity by trajectory continuity (the new MAC appears
exactly where the old one vanished).  Silence for a random interval
around the rotation decorrelates the hand-off point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SilentPeriodPolicy:
    """Draws and tracks silent intervals.

    ``min_s``/``max_s`` bound the uniform silent duration.  Call
    :meth:`begin` when an identifier changes; :meth:`is_silent` then
    gates all transmissions until the drawn period elapses.
    """

    min_s: float = 10.0
    max_s: float = 60.0
    _silent_until: float = field(default=-1.0, repr=False)
    periods_served: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_s <= self.max_s:
            raise ValueError(
                f"need 0 <= min <= max, got [{self.min_s}, {self.max_s}]")

    def begin(self, now: float, rng: np.random.Generator) -> float:
        """Start a silent period at ``now``; returns its duration."""
        duration = float(rng.uniform(self.min_s, self.max_s))
        self._silent_until = now + duration
        self.periods_served += 1
        return duration

    def is_silent(self, now: float) -> bool:
        """True while the device must hold radio silence."""
        return now < self._silent_until

    @property
    def silent_until(self) -> float:
        return self._silent_until
